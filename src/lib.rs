//! # LORI — Learning-Oriented Reliability Improvement
//!
//! Umbrella crate re-exporting the whole LORI workspace: a cross-layer,
//! learning-oriented reliability toolkit reproducing *"Learning-Oriented
//! Reliability Improvement of Computing Systems From Transistor to
//! Application Level"* (DATE 2023).
//!
//! The layers, bottom-up:
//!
//! - [`core`] — units, probability, RNG, reliability algebra, the Fig.-1
//!   learning-management loop.
//! - [`ml`] — from-scratch classical ML, MLPs, boosting, and tabular RL.
//! - [`hdc`] — hyperdimensional computing (robust brain-inspired inference).
//! - [`circuit`] — transistor aging and self-heating, standard-cell
//!   libraries, netlists, STA, and ML-based characterization (Sec. II).
//! - [`arch`] — pipelined CPU simulation, fault injection, ML vulnerability
//!   prediction, and selective protection (Sec. III).
//! - [`sys`] — multicore OS-level reliability management: DVFS/DPM/mapping
//!   knobs, thermal and lifetime models, RL managers (Sec. IV).
//! - [`ftsched`] — the paper's original Section V evaluation: checkpointing/
//!   rollback-recovery vs. cycle-noise mitigation, the "error rate wall".
//!
//! ```
//! use lori::core::units::{Cycles, Probability};
//! use lori::core::reliability::no_error_probability;
//!
//! # fn main() -> Result<(), lori::core::Error> {
//! let p = Probability::new(1e-6)?;
//! let survive = no_error_probability(p, Cycles(40_000));
//! assert!(survive.value() > 0.95);
//! # Ok(())
//! # }
//! ```

pub use lori_arch as arch;
pub use lori_circuit as circuit;
pub use lori_core as core;
pub use lori_ftsched as ftsched;
pub use lori_hdc as hdc;
pub use lori_ml as ml;
pub use lori_sys as sys;
