#!/usr/bin/env bash
# Telemetry-plane smoke: run exp-fig5 with a live LORI_TELEMETRY endpoint,
# scrape it mid-run, and prove the plane is (a) well-formed, (b) monotone,
# and (c) invisible — the data artifact is byte-identical to a run without
# the endpoint, and the disabled-endpoint tax stays under 2%.
#
# Usage: scripts/telemetry-smoke.sh
# Requires: cargo, python3. Runs from the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

# Enough Monte Carlo runs that the sweep lasts several seconds — the WAL
# fingerprint includes the run count, so neither run resumes stale points.
RUNS="${LORI_SMOKE_RUNS:-200000}"
THREADS="${LORI_THREADS:-2}"

cargo build --release -p lori-bench

echo "== baseline run (no telemetry endpoint)"
rm -rf results-telemetry-off results-telemetry-on
LORI_RUNS="$RUNS" LORI_THREADS="$THREADS" \
  LORI_RESULTS_DIR=results-telemetry-off ./target/release/exp-fig5

echo "== observed run (LORI_TELEMETRY=127.0.0.1:0, scraped mid-run)"
LORI_RUNS="$RUNS" LORI_THREADS="$THREADS" LORI_TELEMETRY=127.0.0.1:0 \
  LORI_RESULTS_DIR=results-telemetry-on ./target/release/exp-fig5 \
  2>telemetry-smoke.stderr &
RUN_PID=$!
trap 'kill "$RUN_PID" 2>/dev/null || true' EXIT

# The harness prints the bound ephemeral port on stderr once the endpoint
# is up: "telemetry: listening on 127.0.0.1:PORT".
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^telemetry: listening on //p' telemetry-smoke.stderr | head -n1)
  [ -n "$ADDR" ] && break
  if ! kill -0 "$RUN_PID" 2>/dev/null; then
    echo "run exited before the telemetry endpoint came up" >&2
    cat telemetry-smoke.stderr >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "telemetry endpoint never announced its address" >&2
  cat telemetry-smoke.stderr >&2
  exit 1
fi
echo "endpoint: $ADDR"

# Two spaced scrapes while the sweep is still running; python asserts the
# output is well-formed and progress moved forward, never backward.
python3 - "$ADDR" <<'PY'
import json, sys, time, urllib.request

addr = sys.argv[1]

def get(path):
    with urllib.request.urlopen(f"http://{addr}{path}", timeout=10) as r:
        assert r.status == 200, f"{path}: HTTP {r.status}"
        return r.read().decode()

def sweep_done(metrics):
    for line in metrics.splitlines():
        if line.startswith('lori_progress_done{phase="lori_sweep"}'):
            return int(line.rsplit(" ", 1)[1])
    raise AssertionError("no lori_progress_done{phase=\"lori_sweep\"} series:\n" + metrics)

def check_metrics(metrics):
    assert "# TYPE lori_uptime_seconds gauge" in metrics, metrics
    assert "# TYPE lori_telemetry_scrapes counter" in metrics, metrics
    for line in metrics.splitlines():
        if line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        assert name.startswith("lori_"), f"unprefixed metric: {line}"
        float(value)  # every sample parses as a number

m1 = get("/metrics")
check_metrics(m1)
s1 = json.loads(get("/status"))
assert s1["run"] == "exp-fig5", s1
assert "cache" in s1 and "fault" in s1 and "progress" in s1, s1
time.sleep(1.0)
m2 = get("/metrics")
check_metrics(m2)
s2 = json.loads(get("/status"))

d1, d2 = sweep_done(m1), sweep_done(m2)
assert 0 <= d1 <= d2, f"progress went backwards: {d1} -> {d2}"
assert s2["scrapes"] > s1["scrapes"], "scrape counter did not advance"
assert s2["uptime_ms"] >= s1["uptime_ms"], "uptime went backwards"
print(f"mid-run scrapes OK: sweep progress {d1} -> {d2}, scrapes {s1['scrapes']} -> {s2['scrapes']}")
PY

wait "$RUN_PID"
trap - EXIT

echo "== bit-identity: telemetry on vs off"
cmp results-telemetry-off/exp-fig5.points.json \
    results-telemetry-on/exp-fig5.points.json
echo "points artifact byte-identical"

echo "== disabled-endpoint overhead gate (<2%)"
LORI_BENCH_SMOKE=1 LORI_RESULTS_DIR="$PWD/results" \
  cargo bench -p lori-bench --bench obs_overhead
python3 - <<'PY'
import json
doc = json.load(open("results/BENCH_obs.json"))
pct = doc["overhead_pct"]
base = doc["baseline"]["wall_s"]
armed = doc["telemetry_disabled"]["wall_s"]
print(f"baseline {base:.6f}s, telemetry-disabled {armed:.6f}s, overhead {pct:+.3f}%")
assert pct < 2.0, f"disabled-endpoint tax {pct:.3f}% exceeds the 2% budget"
PY

echo "telemetry smoke: all checks passed"
