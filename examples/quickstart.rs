//! Quickstart: the paper's Section-V analysis in a dozen lines.
//!
//! Run with: `cargo run --release --example quickstart`

use lori::core::units::Cycles;
use lori::ftsched::checkpoint::CheckpointSystem;
use lori::ftsched::error_model::ErrorModel;
use lori::ftsched::montecarlo::{sweep, SweepConfig};
use lori::ftsched::workload::adpcm_reference_trace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The register-level error model: Eq. (1) and Eq. (2) of the paper.
    let errors = ErrorModel::new(1e-6)?;
    let segment = Cycles(100_000);
    println!(
        "Pr(no error in a {segment}) = {:.6}",
        errors.no_error_probability(segment).value()
    );
    println!(
        "expected rollbacks for that segment: {:.4}",
        errors.expected_rollbacks(segment)
    );

    // The checkpoint/rollback system (100-cycle checkpoints, 48-cycle
    // rollbacks) and its expected cost.
    let cp = CheckpointSystem::default();
    println!(
        "expected cycles incl. recovery: {:.0} (fault-free: {})",
        cp.expected_cycles(segment, &errors),
        cp.fault_free_cycles(segment)
    );

    // A three-point mini version of Fig. 5 / Fig. 6.
    let trace = adpcm_reference_trace();
    let config = SweepConfig {
        runs: 25,
        ..SweepConfig::default()
    };
    println!("\np          rollbacks/seg   DS      DS1.5x  DS2x    WCET");
    for point in sweep(&[1e-7, 3e-6, 3e-5], &trace, &config)? {
        println!(
            "{:<9.0e}  {:<14.3}  {:<6.3}  {:<6.3}  {:<6.3}  {:<6.3}",
            point.p,
            point.avg_rollbacks_per_segment,
            point.hit_rate[0],
            point.hit_rate[1],
            point.hit_rate[2],
            point.hit_rate[3],
        );
    }
    println!("\nThe 'error rate wall' sits between the second and third rows.");
    Ok(())
}
