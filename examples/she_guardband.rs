//! Circuit-level walkthrough (paper Sec. II): characterize a standard-cell
//! library with the golden engine, extract per-instance self-heating with
//! the Fig.-3 delay-slot trick, train the ML characterizer, and compare
//! guardbands.
//!
//! Run with: `cargo run --release --example she_guardband`

use lori::circuit::characterize::{characterize_library, Corner};
use lori::circuit::flow::{run_she_flow, SheFlowConfig};
use lori::circuit::mlchar::{MlCharConfig, MlCharacterizer};
use lori::circuit::netlist::ripple_carry_adder;
use lori::circuit::spicelike::GoldenSimulator;
use lori::circuit::tech::TechParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = GoldenSimulator::new(TechParams::default())?;
    println!("characterizing the 60-cell library (slow golden engine)...");
    let lib = characterize_library(&sim, &Corner::default())?;

    let adder = ripple_carry_adder(&lib, 16)?;
    println!(
        "16-bit ripple-carry adder: {} instances",
        adder.instance_count()
    );

    println!("training ML characterizer on the cells the adder uses...");
    let ml = MlCharacterizer::train_for_netlist(
        &sim,
        &lib,
        &adder,
        &MlCharConfig {
            samples_per_cell: 150,
            ..MlCharConfig::default()
        },
    )?;

    let report = run_she_flow(&sim, &lib, &adder, &ml, &SheFlowConfig::default())?;
    let max_she = report.instance_she_k.iter().copied().fold(0.0f64, f64::max);
    println!("hottest instance self-heating: {max_she:.1} K above chip temperature");
    println!(
        "nominal critical path:       {:8.1} ps",
        report.nominal.max_arrival_ps
    );
    println!(
        "per-instance accurate path:  {:8.1} ps  (guardband {:+.1} ps)",
        report.accurate.max_arrival_ps,
        report.accurate_guardband().margin_ps()
    );
    println!(
        "worst-case corner path:      {:8.1} ps  (guardband {:+.1} ps)",
        report.worst_case.max_arrival_ps,
        report.worst_case_guardband().margin_ps()
    );
    println!(
        "pessimism avoided by the per-instance flow: {:.0} %",
        report.pessimism_reduction() * 100.0
    );
    Ok(())
}
