//! Architecture-level walkthrough (paper Sec. III): run a fault-injection
//! campaign on a real workload, train an SVM to spot vulnerable
//! instructions, and protect only those.
//!
//! Run with: `cargo run --release --example fault_injection_campaign`

use lori::arch::cpu::{CpuConfig, Protection};
use lori::arch::fault::{random_register_campaign, Outcome};
use lori::arch::predict::instruction_sdc_dataset;
use lori::arch::protect::evaluate_protection;
use lori::arch::workload;
use lori::ml::svm::{LinearSvm, SvmConfig};
use lori::ml::traits::Classifier;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = workload::matmul();
    let cfg = CpuConfig::default();

    // 1. Baseline campaign: how vulnerable is the unprotected kernel?
    let campaign = random_register_campaign(&program, &cfg, &Protection::none(), 1000, 1)?;
    println!(
        "unprotected {} ({} trials):",
        program.name,
        campaign.counts.total()
    );
    for outcome in Outcome::ALL {
        println!(
            "  {:<9} {:>6.1} %",
            outcome.label(),
            campaign.counts.fraction(outcome) * 100.0
        );
    }

    // 2. Learn which instructions are SDC-prone and protect only those.
    let ds = instruction_sdc_dataset(&program, &cfg, 16, 0.15, 2)?;
    let selection: Vec<usize> = match LinearSvm::fit(&ds, &SvmConfig::default()) {
        Ok(svm) => (0..program.len())
            .filter(|&i| svm.predict(&ds.features()[i]) == 1)
            .collect(),
        Err(_) => (0..program.len())
            .filter(|&i| ds.class_targets()[i] == 1)
            .collect(),
    };
    println!(
        "\nSVM selected {} of {} instructions for replication",
        selection.len(),
        program.len()
    );

    // 3. Compare the three protection levels.
    for (name, prot) in [
        ("none", Protection::none()),
        (
            "selective",
            Protection::for_instructions(&program, selection.iter().copied())?,
        ),
        ("full DMR", Protection::full(&program)),
    ] {
        let report = evaluate_protection(&program, &cfg, &prot, 600, 3)?;
        println!(
            "{name:<10} slowdown {:>5.1} %   SDC {:>4.1} %   detection {:>5.1} %",
            report.overhead() * 100.0,
            report.sdc_rate() * 100.0,
            report.detection_rate() * 100.0
        );
    }
    Ok(())
}
