//! System-level walkthrough (paper Sec. IV, Fig. 1): train a Q-learning
//! DVFS manager on the multicore reliability simulator and compare it with
//! static governors.
//!
//! Run with: `cargo run --release --example rl_dvfs_manager`

use lori::core::mgmt::{evaluate, train, Agent, Environment, Transition};
use lori::core::Rng;
use lori::ml::rl::{QLearning, RlConfig};
use lori::sys::manager::{DvfsEnvConfig, DvfsEnvironment};
use lori::sys::platform::{CoreKind, Platform};
use lori::sys::sched::{Mapping, SimConfig};
use lori::sys::task::generate_task_set;

struct Static(usize);
impl Agent for Static {
    fn act(&mut self, _s: usize) -> usize {
        self.0
    }
    fn best_action(&self, _s: usize) -> usize {
        self.0
    }
    fn learn(&mut self, _s: usize, _a: usize, _t: &Transition) {}
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::homogeneous(CoreKind::Little, 2)?;
    let mut rng = Rng::from_seed(1);
    let tasks = generate_task_set(6, 0.8, 1.6e6, (10.0, 60.0), &mut rng)?;
    let mapping = Mapping::round_robin(tasks.len(), 2);
    let mut env = DvfsEnvironment::new(
        platform,
        tasks,
        mapping,
        SimConfig::default(),
        DvfsEnvConfig::default(),
    )?;

    println!(
        "state space: {} states (temperature × utilization bins), {} V-f actions",
        env.state_count(),
        env.action_count()
    );

    let mut agent = QLearning::new(env.state_count(), env.action_count(), RlConfig::default())?;
    println!("training the Fig.-1 loop for 120 episodes...");
    let report = train(&mut env, &mut agent, 120, 40);
    println!(
        "episode reward: first-10 mean {:.1} -> last-10 mean {:.1}",
        report.episode_rewards.iter().take(10).sum::<f64>() / 10.0,
        report.recent_mean_reward(10)
    );

    println!("\npolicy comparison (mean episode reward, greedy evaluation):");
    println!(
        "  learned manager : {:8.1}",
        evaluate(&mut env, &agent, 5, 40)
    );
    for level in 0..env.action_count() {
        println!(
            "  static level {}  : {:8.1}",
            level,
            evaluate(&mut env, &Static(level), 5, 40)
        );
    }
    Ok(())
}
