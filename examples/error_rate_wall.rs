//! Locating the "error rate wall" (paper Sec. V-D): bisect the error
//! probability where each mitigation algorithm's deadline hit rate
//! collapses, then see how extra speed headroom moves it.
//!
//! Run with: `cargo run --release --example error_rate_wall`

use lori::ftsched::mitigation::BudgetAlgorithm;
use lori::ftsched::montecarlo::SweepConfig;
use lori::ftsched::wall::{find_wall, wall_sensitivity};
use lori::ftsched::workload::adpcm_reference_trace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = adpcm_reference_trace();
    let config = SweepConfig {
        runs: 30,
        ..SweepConfig::default()
    };

    println!("error-rate wall per algorithm (hit rate crosses 50 %):");
    for alg in BudgetAlgorithm::ALL {
        let wall = find_wall(alg, &trace, &config, 1e-9, 1e-3, 12)?;
        println!("  {:<8} wall at p = {:.2e}", alg.label(), wall);
    }

    println!("\nmoving the wall with speed headroom:");
    for row in wall_sensitivity(&trace, &config, &[1.2, 1.6, 2.4], &[])? {
        println!(
            "  {:<14} DS {:.1e}   WCET {:.1e}",
            row.label, row.wall_p[0], row.wall_p[3]
        );
    }
    Ok(())
}
