//! Offline, vendored stand-in for the `proptest` crate.
//!
//! The crates-io registry is unreachable in this build environment, so this
//! shim implements the subset of the proptest 1.x API the workspace's
//! property tests use: the [`proptest!`] macro, range and tuple strategies,
//! [`collection::vec`], [`any`], [`Strategy::prop_map`], and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case panics with its case index; re-running
//!   is deterministic, so the failure reproduces exactly.
//! - **Deterministic seeding.** Case `i` of every test draws from a
//!   SplitMix64 stream seeded by `i`, so failures are stable across runs and
//!   machines. Set `PROPTEST_CASES` to change the case count (default 64).

use std::env;

/// Number of cases each property runs (env `PROPTEST_CASES`, default 64).
#[must_use]
pub fn cases() -> u64 {
    env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// The deterministic RNG behind every generated value (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream for one test case.
    #[must_use]
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5851_f42d_4c95_7f2d,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / ((1u64 << 53) as f64))
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        // Widening multiply; bias is irrelevant for test-input generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u64) - (*self.start() as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                self.start() + (rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        // Hit the lower endpoint occasionally; the upper stays exclusive.
        if rng.below(32) == 0 {
            return self.start;
        }
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        // Endpoints are interesting edge cases; draw them now and then.
        match rng.below(32) {
            0 => *self.start(),
            1 => *self.end(),
            _ => self.start() + (self.end() - self.start()) * rng.unit_f64(),
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident: $idx:tt),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Values constructible "from anywhere", the shim's `Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over all values of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Runs one property body over [`cases`] deterministic inputs. Used by the
/// [`proptest!`] expansion; not public API of real proptest.
pub fn run_cases(body: impl Fn(&mut TestRng)) {
    for case in 0..cases() {
        let mut rng = TestRng::for_case(case);
        body(&mut rng);
    }
}

/// Property-test entry macro; mirrors proptest's `proptest! { ... }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(|prop_rng__| {
                    $(let $arg = $crate::Strategy::generate(&($strat), prop_rng__);)*
                    $body
                });
            }
        )*
    };
}

/// Asserts a condition inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when the assumption does not hold. Real proptest
/// rejects and redraws; this shim simply moves on to the next case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($arg:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

pub mod prelude {
    //! Everything the property tests import.
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        super::run_cases(|rng| {
            let u = (5u64..10).generate(rng);
            assert!((5..10).contains(&u));
            let f = (0.0f64..2.0).generate(rng);
            assert!((0.0..2.0).contains(&f));
            let fi = (0.0f64..=1.0).generate(rng);
            assert!((0.0..=1.0).contains(&fi));
        });
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        super::run_cases(|rng| {
            let v = super::collection::vec(0u64..4, 2..6).generate(rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        });
    }

    #[test]
    fn prop_map_applies() {
        super::run_cases(|rng| {
            let doubled = (1u64..5).prop_map(|x| x * 2).generate(rng);
            assert!(doubled % 2 == 0 && (2..10).contains(&doubled));
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::TestRng::for_case(3);
        let mut b = super::TestRng::for_case(3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        /// The macro itself compiles and runs with multiple arguments.
        #[test]
        fn macro_smoke(a in 0u64..100, b in 0.0f64..=1.0) {
            prop_assert!(a < 100);
            prop_assert!((0.0..=1.0).contains(&b));
            prop_assert_eq!(a, a);
        }
    }
}
