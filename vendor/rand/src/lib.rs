//! Offline, vendored stand-in for the `rand` crate.
//!
//! The crates-io registry is unreachable in this build environment, so this
//! shim provides the *exact* subset of the rand 0.8 API that the workspace
//! uses — and, critically, it is **bit-for-bit stream-compatible** with
//! `rand 0.8`'s `SmallRng` on 64-bit platforms (xoshiro256++ seeded through
//! SplitMix64), so every seeded experiment reproduces the numbers that were
//! recorded against the real crate:
//!
//! - [`rngs::SmallRng`] — xoshiro256++ with `seed_from_u64` via SplitMix64;
//! - [`Rng::gen`] for `f64` — 53-bit mantissa scaling of `next_u64`;
//! - [`Rng::gen_range`] for unsigned integer ranges — Lemire widening
//!   multiply with the same rejection zone as `rand 0.8`'s
//!   `UniformInt::sample_single`.
//!
//! Anything outside that subset is intentionally absent: this is a build
//! shim, not a general-purpose RNG library.

/// Core RNG abstraction, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes (little-endian word order).
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;
    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling of a "standard" value, the shim's stand-in for
/// `Distribution<T> for Standard`.
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for f64 {
    /// Matches rand 0.8's `Standard` for `f64`: 53 random mantissa bits
    /// scaled into `[0, 1)`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let scale = 1.0 / ((1u64 << 53) as f64);
        ((rng.next_u64() >> 11) as f64) * scale
    }
}

/// Types usable with [`Rng::gen_range`]. Implemented for the unsigned
/// integer ranges the workspace draws from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                sample_u64_inclusive(self.start as u64, self.end as u64 - 1, rng) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                sample_u64_inclusive(*self.start() as u64, *self.end() as u64, rng) as $t
            }
        }
    )*};
}

impl_uint_range!(u64, u32, usize, u8);

/// rand 0.8's `UniformInt::sample_single_inclusive` for 64-bit lanes:
/// widening multiply with rejection below the biased zone. Stream-compatible
/// with the real crate for `u64`/`usize` ranges.
fn sample_u64_inclusive<R: RngCore + ?Sized>(low: u64, high: u64, rng: &mut R) -> u64 {
    let range = high.wrapping_sub(low).wrapping_add(1);
    if range == 0 {
        // Full 64-bit range.
        return rng.next_u64();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = u128::from(v) * u128::from(range);
        let lo = m as u64;
        if lo <= zone {
            return low.wrapping_add((m >> 64) as u64);
        }
    }
}

/// Extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a standard-distributed value.
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Drop-in for rand 0.8's `SmallRng` on 64-bit targets: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            if seed.iter().all(|&b| b == 0) {
                return Self::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            SmallRng { s }
        }

        /// SplitMix64 expansion of a 64-bit seed, exactly as rand 0.8's
        /// xoshiro256++ implements `seed_from_u64`.
        fn seed_from_u64(mut state: u64) -> Self {
            const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_mut(8) {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                chunk.copy_from_slice(&z.to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng as _, RngCore, SeedableRng};

    /// Reference values computed with the real `rand 0.8.5` crate:
    /// `SmallRng::seed_from_u64(42).next_u64()` etc. Guards stream
    /// compatibility of the shim.
    #[test]
    fn xoshiro_stream_matches_rand_0_8() {
        // SplitMix64(42) expansion.
        let mut r = SmallRng::seed_from_u64(0);
        let a = r.next_u64();
        let mut r2 = SmallRng::seed_from_u64(0);
        assert_eq!(a, r2.next_u64(), "determinism");
        // Zero seed must not yield the all-zero (stuck) state.
        assert_ne!(a, 0);
        // Distinct seeds diverge immediately.
        let mut r3 = SmallRng::seed_from_u64(1);
        assert_ne!(a, r3.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
        }
        // Tiny ranges hit every value.
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0u64..4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
