//! Offline, vendored stand-in for the `criterion` crate.
//!
//! The crates-io registry is unreachable in this build environment, so this
//! shim implements the subset of the criterion 0.5 API the workspace's
//! benches use: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple: after a warm-up window, it runs a
//! fixed number of timed samples (each a batch sized to fill the measurement
//! window) and reports the per-iteration mean and median. No plots, no
//! baseline comparison files — results go to stdout, one line per benchmark.

use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark runner configuration and registry.
#[derive(Debug, Clone)]
pub struct Criterion {
    measurement: Duration,
    warm_up: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(1000),
            warm_up: Duration::from_millis(300),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the total measurement window per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, name, &mut f);
        self
    }

    /// Benchmarks `f` with `input`, labeled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.label.clone();
        run_one(self, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A named group of benchmarks sharing the group prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with `input`, labeled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks `f`, labeled by `id` within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion, &label, &mut f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark label, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A label from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    /// Iterations to run in the timed batch.
    batch: u64,
    /// Measured wall time of the batch.
    elapsed: Duration,
}

impl Bencher {
    /// Times `batch` iterations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(config: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: also estimates the per-iteration cost.
    let mut one = Bencher {
        batch: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut last = Duration::from_nanos(1);
    while warm_start.elapsed() < config.warm_up || warm_iters == 0 {
        f(&mut one);
        last = one.elapsed.max(Duration::from_nanos(1));
        warm_iters += 1;
    }

    // Size each sample's batch to fill measurement/sample_size.
    let per_sample = config.measurement.as_secs_f64() / config.sample_size as f64;
    let batch = (per_sample / last.as_secs_f64()).ceil().max(1.0);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let batch = batch as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_secs_f64() * 1e9 / batch as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!(
        "{label:<48} median {:>12} mean {:>12} ({} samples x {batch} iters)",
        fmt_ns(median),
        fmt_ns(mean),
        per_iter_ns.len(),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a group of benchmark functions; both criterion forms accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
            .sample_size(3);
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            });
        });
        assert!(runs > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2))
            .sample_size(2);
        let mut group = c.benchmark_group("g");
        for n in [1u64, 2] {
            group.bench_with_input(BenchmarkId::new("case", n), &n, |b, &n| {
                b.iter(|| black_box(n * 2));
            });
        }
        group.finish();
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("a", 7).label, "a/7");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
