//! The memoization store: a sharded in-process map plus the optional disk
//! tier, behind a single `get_or_compute` entry point.
//!
//! # Determinism contract
//!
//! The store memoizes *pure* functions: the value is fully determined by the
//! canonical key bytes. Under `lori-par`, two workers may race to compute
//! the same key; both compute the *same* bytes, so whichever insert lands is
//! indistinguishable from the other. Results are therefore bit-identical at
//! any `LORI_THREADS`, and with the cache off, cold, or warm.
//!
//! # Collision safety
//!
//! The map is keyed by the 64-bit FNV digest, but every entry stores the
//! full canonical key bytes. On a digest collision with *different* bytes
//! the store recomputes (and does not overwrite the resident entry), so a
//! collision costs performance, never correctness.

use crate::disk::{self, ReadOutcome};
use crate::key::CacheKey;
use crate::CacheMode;
use lori_obs::Counter;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

const SHARDS: usize = 64;

/// Values a [`Cache`] can hold: cloneable, and serializable to a canonical
/// byte form for the disk tier.
///
/// `encode`/`decode` must round-trip exactly; floats should be serialized
/// via `to_bits` so the disk tier is bit-faithful.
pub trait CachePayload: Clone + Send + Sync + 'static {
    /// Appends the canonical byte serialization of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Reconstructs a value from `encode`'s output; `None` if malformed.
    fn decode(bytes: &[u8]) -> Option<Self>;
}

/// A point-in-time view of one cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from memory or disk.
    pub hits: u64,
    /// Lookups that fell through to a recompute.
    pub misses: u64,
    /// Disk entries rejected by validation (then recomputed).
    pub corrupt: u64,
    /// Digest collisions with differing key bytes (recomputed, not stored).
    pub collisions: u64,
    /// Payload bytes written to the disk tier.
    pub bytes: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups; 0 when no lookups were made.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.hits as f64 / total as f64
        }
    }
}

/// One resident entry: the full canonical key bytes (for collision
/// detection on lookup) plus the cached value.
type Entry<V> = (Box<[u8]>, V);

struct Shard<V> {
    map: RwLock<HashMap<u64, Entry<V>>>,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard {
            map: RwLock::new(HashMap::new()),
        }
    }
}

/// A content-addressed memoization cache for one value type.
///
/// Thread-safe: `get_or_compute` takes `&self` and may be called
/// concurrently from `lori-par` workers.
pub struct Cache<V> {
    mode: CacheMode,
    shards: Vec<Shard<V>>,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    collisions: AtomicU64,
    bytes: AtomicU64,
    // Process-global lori-obs counters, registered eagerly so they appear
    // (even at zero) in every run manifest that snapshots the registry.
    obs_hits: Arc<Counter>,
    obs_misses: Arc<Counter>,
    obs_corrupt: Arc<Counter>,
    obs_bytes: Arc<Counter>,
}

impl<V> std::fmt::Debug for Cache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("mode", &self.mode)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl<V> Cache<V> {
    /// Creates a cache operating in `mode`.
    #[must_use]
    pub fn new(mode: CacheMode) -> Self {
        Cache {
            mode,
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            obs_hits: lori_obs::counter("cache.hits"),
            obs_misses: lori_obs::counter("cache.misses"),
            obs_corrupt: lori_obs::counter("cache.corrupt"),
            obs_bytes: lori_obs::counter("cache.bytes"),
        }
    }

    /// The mode this cache was created with.
    #[must_use]
    pub fn mode(&self) -> &CacheMode {
        &self.mode
    }

    /// This cache's own counters (process-global `cache.*` metrics
    /// aggregate across all caches; these are per-instance).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    /// Number of entries resident in the in-process tier.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.read().expect("cache shard poisoned").len())
            .sum()
    }

    /// True when no entries are resident in memory.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[allow(clippy::cast_possible_truncation)]
    fn shard(&self, hash: u64) -> &Shard<V> {
        // High bits: FNV mixes them well, and low bits pick the disk name.
        &self.shards[(hash >> 58) as usize % SHARDS]
    }

    fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.obs_hits.incr(1);
    }

    fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.obs_misses.incr(1);
    }

    fn note_corrupt(&self) {
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        self.obs_corrupt.incr(1);
    }
}

impl<V: CachePayload> Cache<V> {
    /// Returns the cached value for `key`, computing and storing it on a
    /// miss. With [`CacheMode::Off`] this is a plain call to `compute`.
    pub fn get_or_compute(&self, key: &CacheKey, compute: impl FnOnce() -> V) -> V {
        if matches!(self.mode, CacheMode::Off) {
            return compute();
        }

        // Tier 1: in-process map.
        let shard = self.shard(key.hash());
        {
            let map = shard.map.read().expect("cache shard poisoned");
            if let Some((stored_key, value)) = map.get(&key.hash()) {
                if stored_key.as_ref() == key.bytes() {
                    self.record_hit();
                    return value.clone();
                }
                // Digest collision: recompute without touching the entry.
                drop(map);
                self.collisions.fetch_add(1, Ordering::Relaxed);
                self.record_miss();
                return compute();
            }
        }

        // Tier 2: disk.
        if let CacheMode::Disk(dir) = &self.mode {
            match disk::read_entry(dir, key) {
                ReadOutcome::Hit(payload) => {
                    if let Some(value) = V::decode(&payload) {
                        self.record_hit();
                        self.insert_mem(key, value.clone());
                        return value;
                    }
                    // Entry validated but payload would not decode: the
                    // payload schema changed without a key-version bump.
                    // Treat as corrupt and recompute.
                    self.note_corrupt();
                }
                ReadOutcome::Corrupt => self.note_corrupt(),
                ReadOutcome::Miss => {}
            }
        }

        self.record_miss();
        let value = compute();
        self.insert_mem(key, value.clone());
        if let CacheMode::Disk(dir) = &self.mode {
            let mut payload = Vec::new();
            value.encode(&mut payload);
            // A failed write only means the entry stays uncached on disk.
            if let Ok(n) = disk::write_entry(dir, key, &payload) {
                self.bytes.fetch_add(n as u64, Ordering::Relaxed);
                self.obs_bytes.incr(n as u64);
            }
        }
        value
    }

    fn insert_mem(&self, key: &CacheKey, value: V) {
        let shard = self.shard(key.hash());
        let mut map = shard.map.write().expect("cache shard poisoned");
        // Keep the first resident entry on a digest collision; racing
        // same-key inserts store identical values, so either insert wins.
        map.entry(key.hash())
            .or_insert_with(|| (key.bytes().to_vec().into_boxed_slice(), value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyBuilder;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicUsize;

    impl CachePayload for f64 {
        fn encode(&self, out: &mut Vec<u8>) {
            out.extend_from_slice(&self.to_bits().to_le_bytes());
        }
        fn decode(bytes: &[u8]) -> Option<Self> {
            let arr: [u8; 8] = bytes.try_into().ok()?;
            Some(f64::from_bits(u64::from_le_bytes(arr)))
        }
    }

    fn key(x: u64) -> CacheKey {
        let mut b = KeyBuilder::new("store.test", 1);
        b.push_u64(x);
        b.finish()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lori-cache-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn off_mode_always_computes() {
        let cache: Cache<f64> = Cache::new(CacheMode::Off);
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            let v = cache.get_or_compute(&key(1), || {
                calls.fetch_add(1, Ordering::Relaxed);
                42.0
            });
            assert_eq!(v, 42.0);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(cache.stats(), CacheStats::default());
        assert!(cache.is_empty());
    }

    #[test]
    fn mem_mode_computes_once() {
        let cache: Cache<f64> = Cache::new(CacheMode::Mem);
        let calls = AtomicUsize::new(0);
        for _ in 0..5 {
            let v = cache.get_or_compute(&key(7), || {
                calls.fetch_add(1, Ordering::Relaxed);
                1.5
            });
            assert_eq!(v, 1.5);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (4, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_mode_survives_process_restart() {
        let dir = tmp_dir("restart");
        let cold: Cache<f64> = Cache::new(CacheMode::Disk(dir.clone()));
        assert_eq!(cold.get_or_compute(&key(3), || 2.25), 2.25);
        assert_eq!(cold.stats().misses, 1);
        assert!(cold.stats().bytes > 0);

        // A fresh cache over the same directory models a new process.
        let warm: Cache<f64> = Cache::new(CacheMode::Disk(dir.clone()));
        let v = warm.get_or_compute(&key(3), || panic!("must hit disk"));
        assert_eq!(v, 2.25);
        assert_eq!(warm.stats().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_recomputed_and_repaired() {
        let dir = tmp_dir("corrupt");
        let k = key(9);
        {
            let c: Cache<f64> = Cache::new(CacheMode::Disk(dir.clone()));
            c.get_or_compute(&k, || 6.5);
        }
        // Damage the entry on disk.
        let path = crate::disk::entry_path(&dir, k.hash());
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let before = lori_obs::counter("cache.corrupt").get();
        let c: Cache<f64> = Cache::new(CacheMode::Disk(dir.clone()));
        let v = c.get_or_compute(&k, || 6.5);
        assert_eq!(v, 6.5);
        let s = c.stats();
        assert_eq!((s.corrupt, s.misses, s.hits), (1, 1, 0));
        assert_eq!(lori_obs::counter("cache.corrupt").get(), before + 1);

        // The recompute rewrote the entry; a third cache now hits cleanly.
        let c2: Cache<f64> = Cache::new(CacheMode::Disk(dir.clone()));
        assert_eq!(c2.get_or_compute(&k, || panic!("must hit")), 6.5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_bump_invalidates_disk_entries() {
        let dir = tmp_dir("version");
        let mut b = KeyBuilder::new("store.test", 1);
        b.push_u64(11);
        let k_v1 = b.finish();
        let mut b = KeyBuilder::new("store.test", 2);
        b.push_u64(11);
        let k_v2 = b.finish();

        let c: Cache<f64> = Cache::new(CacheMode::Disk(dir.clone()));
        c.get_or_compute(&k_v1, || 1.0);
        // Same logical inputs under a bumped version must recompute.
        let calls = AtomicUsize::new(0);
        c.get_or_compute(&k_v2, || {
            calls.fetch_add(1, Ordering::Relaxed);
            2.0
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache: Arc<Cache<f64>> = Arc::new(Cache::new(CacheMode::Mem));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    (0..100u64)
                        .map(|i| {
                            #[allow(clippy::cast_precision_loss)]
                            let expect = (i % 10) as f64 * 0.5;
                            cache.get_or_compute(&key(i % 10), || expect)
                        })
                        .sum::<f64>()
                })
            })
            .collect();
        let sums: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for s in &sums {
            assert_eq!(*s, sums[0]);
        }
        assert_eq!(cache.len(), 10);
    }
}
