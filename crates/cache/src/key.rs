//! Canonical cache keys.
//!
//! A key is built by appending every input of the memoized function to a
//! byte buffer in a fixed order and a fixed little-endian encoding, then
//! hashing the buffer with FNV-64 ([`lori_fault::fnv64`] — the same
//! fingerprint primitive the WAL uses). The *full* byte buffer is retained
//! alongside the hash so the store can detect hash collisions instead of
//! silently returning a wrong entry.
//!
//! Floats are encoded via [`f64::to_bits`], so two inputs that compare
//! equal but have different bit patterns (`0.0` vs `-0.0`, distinct NaNs)
//! produce *different* keys. That is the conservative direction: a spurious
//! miss costs a recompute, a spurious hit would corrupt results.

use lori_fault::fnv64;

/// A finished content-addressed key: the FNV-64 digest plus the canonical
/// bytes it was computed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    hash: u64,
    bytes: Vec<u8>,
}

impl CacheKey {
    /// The FNV-64 digest of the canonical bytes.
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The canonical byte serialization the digest was computed from.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Incrementally builds a [`CacheKey`] from typed fields.
///
/// The `domain` string and `version` number are the first fields pushed, so
/// bumping the version (when the memoized function's numerics change)
/// invalidates every previously stored entry by changing every hash.
#[derive(Debug, Clone)]
pub struct KeyBuilder {
    bytes: Vec<u8>,
}

impl KeyBuilder {
    /// Starts a key for `domain` at schema `version`.
    #[must_use]
    pub fn new(domain: &str, version: u32) -> Self {
        let mut b = KeyBuilder {
            bytes: Vec::with_capacity(128),
        };
        b.push_str(domain);
        b.bytes.extend_from_slice(&version.to_le_bytes());
        b
    }

    /// Appends a `u64` field.
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an `f64` field by exact bit pattern.
    pub fn push_f64(&mut self, v: f64) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        self
    }

    /// Appends a length-prefixed string field.
    pub fn push_str(&mut self, s: &str) -> &mut Self {
        self.push_bytes(s.as_bytes())
    }

    /// Appends a length-prefixed raw byte field.
    pub fn push_bytes(&mut self, b: &[u8]) -> &mut Self {
        self.bytes
            .extend_from_slice(&(b.len() as u64).to_le_bytes());
        self.bytes.extend_from_slice(b);
        self
    }

    /// Finalizes the key: hashes the accumulated bytes.
    #[must_use]
    pub fn finish(self) -> CacheKey {
        let hash = fnv64(&self.bytes);
        CacheKey {
            hash,
            bytes: self.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(version: u32, x: f64) -> CacheKey {
        let mut b = KeyBuilder::new("test.domain", version);
        b.push_f64(x).push_u64(7).push_str("inv");
        b.finish()
    }

    #[test]
    fn identical_inputs_identical_keys() {
        assert_eq!(key(1, 2.5), key(1, 2.5));
    }

    #[test]
    fn different_inputs_different_keys() {
        let a = key(1, 2.5);
        let b = key(1, 2.5000001);
        assert_ne!(a.hash(), b.hash());
        assert_ne!(a.bytes(), b.bytes());
    }

    #[test]
    fn version_bump_changes_key() {
        assert_ne!(key(1, 2.5).hash(), key(2, 2.5).hash());
    }

    #[test]
    fn negative_zero_is_distinct() {
        assert_ne!(key(1, 0.0).hash(), key(1, -0.0).hash());
    }

    #[test]
    fn length_prefix_prevents_field_smearing() {
        // ("ab", "c") must not collide with ("a", "bc").
        let mut a = KeyBuilder::new("d", 1);
        a.push_str("ab").push_str("c");
        let mut b = KeyBuilder::new("d", 1);
        b.push_str("a").push_str("bc");
        assert_ne!(a.finish().hash(), b.finish().hash());
    }
}
