//! # lori-cache — content-addressed memoization for expensive pure functions
//!
//! The paper's methodology (Sec. II, Fig. 3) hinges on querying the slow
//! golden model as rarely as possible. This crate makes "rarely" a system
//! property instead of a per-call-site discipline: any deterministic,
//! expensive function can be memoized behind a canonical content-addressed
//! key, in memory and optionally on disk across process restarts.
//!
//! Three pieces, all hand-rolled on `std`:
//!
//! 1. **Keys** ([`KeyBuilder`] / [`CacheKey`]): a canonical little-endian
//!    byte serialization of every input (floats by exact bit pattern),
//!    hashed with the same FNV-64 the `lori-fault` WAL uses. The full key
//!    bytes travel with the hash, so digest collisions are detected and
//!    recomputed — never trusted.
//! 2. **Store** ([`Cache`]): a sharded, lock-striped in-process map safe
//!    under `lori-par`, plus an optional disk tier of atomically written,
//!    checksummed one-file-per-entry records. Corrupt, truncated, or
//!    version-mismatched disk entries are detected, counted
//!    (`cache.corrupt`), and recomputed.
//! 3. **Mode** ([`CacheMode`]): selected by the `LORI_CACHE` environment
//!    variable — `off` (every call computes), `mem` (default; in-process
//!    only), `disk` (persist under `results/cache/`), or `disk:<dir>`.
//!
//! Because cached functions are pure, results are bit-identical with the
//! cache off, cold, or warm, at any `LORI_THREADS` — the cache can change
//! wall-clock time only, never bytes.
#![warn(missing_docs)]

mod disk;
mod key;
mod store;

pub use disk::{
    decode_entry, encode_entry, entry_path, read_entry, write_entry, ReadOutcome,
    DISK_FORMAT_VERSION,
};
pub use key::{CacheKey, KeyBuilder};
pub use store::{Cache, CachePayload, CacheStats};

use std::path::PathBuf;
use std::sync::OnceLock;

/// Where memoized values live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheMode {
    /// No caching: every lookup computes.
    Off,
    /// In-process sharded map only (the default).
    Mem,
    /// In-process map plus a persistent checksummed entry-per-file tier.
    Disk(PathBuf),
}

impl CacheMode {
    /// Parses a `LORI_CACHE` value.
    ///
    /// Accepted: `off`/`0`/`false`, `mem`/`on`/`1`/`true`, `disk`
    /// (defaults to `results/cache`), `disk:<dir>`.
    ///
    /// # Errors
    ///
    /// Returns a description of the accepted forms on any other value.
    pub fn parse(s: &str) -> Result<CacheMode, String> {
        let t = s.trim();
        match t.to_ascii_lowercase().as_str() {
            "off" | "0" | "false" => Ok(CacheMode::Off),
            "" | "mem" | "on" | "1" | "true" => Ok(CacheMode::Mem),
            "disk" => Ok(CacheMode::Disk(default_disk_dir())),
            other => {
                if let Some(dir) = other.strip_prefix("disk:") {
                    // Preserve the original (non-lowercased) path text.
                    let raw = &t[t.len() - dir.len()..];
                    if raw.is_empty() {
                        return Err(format!("LORI_CACHE=disk: needs a directory, got {s:?}"));
                    }
                    Ok(CacheMode::Disk(PathBuf::from(raw)))
                } else {
                    Err(format!(
                        "unrecognized LORI_CACHE value {s:?} (want off | mem | disk | disk:<dir>)"
                    ))
                }
            }
        }
    }

    /// Reads `LORI_CACHE` from the environment; unset means [`Mem`].
    /// An unparseable value warns on stderr and falls back to [`Mem`]
    /// (the safe default: deterministic and never stale across runs).
    ///
    /// [`Mem`]: CacheMode::Mem
    #[must_use]
    pub fn from_env() -> CacheMode {
        match std::env::var("LORI_CACHE") {
            Ok(v) => CacheMode::parse(&v).unwrap_or_else(|e| {
                eprintln!("lori-cache: {e}; falling back to mem");
                CacheMode::Mem
            }),
            Err(_) => CacheMode::Mem,
        }
    }

    /// A short human/manifest label: `"off"`, `"mem"`, or `"disk:<dir>"`.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            CacheMode::Off => "off".to_owned(),
            CacheMode::Mem => "mem".to_owned(),
            CacheMode::Disk(dir) => format!("disk:{}", dir.display()),
        }
    }
}

fn default_disk_dir() -> PathBuf {
    // Mirrors lori-bench's results-dir convention without depending on it.
    std::env::var("LORI_RESULTS_DIR")
        .map_or_else(|_| PathBuf::from("results"), PathBuf::from)
        .join("cache")
}

/// The process-wide cache mode, read from `LORI_CACHE` once on first use.
#[must_use]
pub fn global_mode() -> &'static CacheMode {
    static MODE: OnceLock<CacheMode> = OnceLock::new();
    MODE.get_or_init(CacheMode::from_env)
}

/// [`global_mode`] as a manifest-ready label.
#[must_use]
pub fn mode_string() -> String {
    global_mode().label()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_modes() {
        assert_eq!(CacheMode::parse("off").unwrap(), CacheMode::Off);
        assert_eq!(CacheMode::parse("0").unwrap(), CacheMode::Off);
        assert_eq!(CacheMode::parse("mem").unwrap(), CacheMode::Mem);
        assert_eq!(CacheMode::parse("").unwrap(), CacheMode::Mem);
        assert_eq!(CacheMode::parse(" ON ").unwrap(), CacheMode::Mem);
        assert_eq!(
            CacheMode::parse("disk:/tmp/x").unwrap(),
            CacheMode::Disk(PathBuf::from("/tmp/x"))
        );
        assert!(matches!(
            CacheMode::parse("disk").unwrap(),
            CacheMode::Disk(_)
        ));
        assert!(CacheMode::parse("disk:").is_err());
        assert!(CacheMode::parse("bogus").is_err());
    }

    #[test]
    fn disk_path_case_preserved() {
        assert_eq!(
            CacheMode::parse("disk:/Tmp/MiXeD").unwrap(),
            CacheMode::Disk(PathBuf::from("/Tmp/MiXeD"))
        );
    }

    #[test]
    fn labels_round_trip() {
        for s in ["off", "mem", "disk:/tmp/cache-dir"] {
            assert_eq!(CacheMode::parse(s).unwrap().label(), s);
        }
    }
}
