//! The optional disk tier: one checksummed file per cache entry.
//!
//! Entry layout (all integers little-endian):
//!
//! ```text
//! magic    : 8 bytes  "LORICACH"
//! version  : u32      on-disk format version
//! key hash : u64      FNV-64 of the canonical key bytes (also the filename)
//! key len  : u32      followed by the canonical key bytes
//! pay len  : u32      followed by the encoded payload bytes
//! checksum : u64      FNV-64 over everything above
//! ```
//!
//! Files are written atomically ([`lori_fault::atomic_write`]: temp sibling
//! then rename) so a crash mid-write leaves either the old entry or none. A
//! reader verifies size, magic, format version, checksum, and that the
//! stored key bytes equal the queried key; any mismatch is reported as
//! [`ReadOutcome::Corrupt`] and the caller recomputes — a damaged entry is
//! never trusted.

use crate::key::CacheKey;
use lori_fault::{atomic_write, fnv64};
use std::io;
use std::path::{Path, PathBuf};

/// On-disk format version; bump when the entry layout changes.
pub const DISK_FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"LORICACH";

/// Result of probing the disk tier for a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// No entry file exists for this key.
    Miss,
    /// An entry file exists but failed validation (truncated, bad magic,
    /// wrong format version, checksum mismatch, or key-byte mismatch).
    Corrupt,
    /// A valid entry; the encoded payload bytes.
    Hit(Vec<u8>),
}

/// Path of the entry file for `hash` under `dir`.
#[must_use]
pub fn entry_path(dir: &Path, hash: u64) -> PathBuf {
    dir.join(format!("{hash:016x}.lc"))
}

/// Serializes one entry to its on-disk byte layout.
#[must_use]
pub fn encode_entry(key: &CacheKey, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(40 + key.bytes().len() + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&DISK_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.hash().to_le_bytes());
    out.extend_from_slice(&(key.bytes().len() as u32).to_le_bytes());
    out.extend_from_slice(key.bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validates an entry's bytes against `key`; returns the payload if sound.
#[must_use]
pub fn decode_entry(bytes: &[u8], key: &CacheKey) -> ReadOutcome {
    // Fixed overhead: magic + version + hash + two lengths + checksum.
    const FIXED: usize = 8 + 4 + 8 + 4 + 4 + 8;
    if bytes.len() < FIXED {
        return ReadOutcome::Corrupt;
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored_sum = u64::from_le_bytes(sum_bytes.try_into().expect("8-byte tail"));
    if fnv64(body) != stored_sum {
        return ReadOutcome::Corrupt;
    }
    if &body[..8] != MAGIC {
        return ReadOutcome::Corrupt;
    }
    let version = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes"));
    if version != DISK_FORMAT_VERSION {
        return ReadOutcome::Corrupt;
    }
    let hash = u64::from_le_bytes(body[12..20].try_into().expect("8 bytes"));
    if hash != key.hash() {
        return ReadOutcome::Corrupt;
    }
    let key_len = u32::from_le_bytes(body[20..24].try_into().expect("4 bytes")) as usize;
    let key_end = 24usize.saturating_add(key_len);
    if key_end + 4 > body.len() {
        return ReadOutcome::Corrupt;
    }
    if &body[24..key_end] != key.bytes() {
        return ReadOutcome::Corrupt;
    }
    let pay_len =
        u32::from_le_bytes(body[key_end..key_end + 4].try_into().expect("4 bytes")) as usize;
    let pay_start = key_end + 4;
    if pay_start.checked_add(pay_len) != Some(body.len()) {
        return ReadOutcome::Corrupt;
    }
    ReadOutcome::Hit(body[pay_start..].to_vec())
}

/// Probes the disk tier for `key` under `dir`.
#[must_use]
pub fn read_entry(dir: &Path, key: &CacheKey) -> ReadOutcome {
    let path = entry_path(dir, key.hash());
    match std::fs::read(&path) {
        Ok(bytes) => decode_entry(&bytes, key),
        Err(e) if e.kind() == io::ErrorKind::NotFound => ReadOutcome::Miss,
        Err(_) => ReadOutcome::Corrupt,
    }
}

/// Writes `payload` for `key` under `dir` atomically.
///
/// Returns the number of bytes written, or the I/O error. Callers treat a
/// failed write as a non-event: the entry simply stays uncached.
pub fn write_entry(dir: &Path, key: &CacheKey, payload: &[u8]) -> io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    let bytes = encode_entry(key, payload);
    atomic_write(entry_path(dir, key.hash()), &bytes)?;
    Ok(bytes.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyBuilder;

    fn key() -> CacheKey {
        let mut b = KeyBuilder::new("disk.test", 1);
        b.push_f64(1.25).push_u64(3);
        b.finish()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lori-cache-disk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip() {
        let dir = tmp_dir("roundtrip");
        let k = key();
        assert_eq!(read_entry(&dir, &k), ReadOutcome::Miss);
        write_entry(&dir, &k, b"payload-bytes").unwrap();
        assert_eq!(
            read_entry(&dir, &k),
            ReadOutcome::Hit(b"payload-bytes".to_vec())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_byte_detected() {
        let dir = tmp_dir("corrupt");
        let k = key();
        write_entry(&dir, &k, b"payload").unwrap();
        let path = entry_path(&dir, k.hash());
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_entry(&dir, &k), ReadOutcome::Corrupt);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_detected() {
        let dir = tmp_dir("trunc");
        let k = key();
        write_entry(&dir, &k, b"payload").unwrap();
        let path = entry_path(&dir, k.hash());
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert_eq!(read_entry(&dir, &k), ReadOutcome::Corrupt);
        // Even an empty file must not panic.
        std::fs::write(&path, b"").unwrap();
        assert_eq!(read_entry(&dir, &k), ReadOutcome::Corrupt);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn format_version_mismatch_detected() {
        let dir = tmp_dir("version");
        let k = key();
        write_entry(&dir, &k, b"payload").unwrap();
        let path = entry_path(&dir, k.hash());
        // Rewrite the entry with a bumped format version and a *valid*
        // checksum, so the version check itself is what rejects it.
        let bytes = std::fs::read(&path).unwrap();
        let mut body = bytes[..bytes.len() - 8].to_vec();
        body[8..12].copy_from_slice(&(DISK_FORMAT_VERSION + 1).to_le_bytes());
        let sum = fnv64(&body);
        body.extend_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &body).unwrap();
        assert_eq!(read_entry(&dir, &k), ReadOutcome::Corrupt);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_detected() {
        let dir = tmp_dir("keymismatch");
        let k = key();
        write_entry(&dir, &k, b"payload").unwrap();
        let mut other = KeyBuilder::new("disk.test", 1);
        other.push_f64(9.75).push_u64(3);
        let other = other.finish();
        // Force the other key's file onto this hash slot to simulate a
        // hash collision on disk.
        let bytes = std::fs::read(entry_path(&dir, k.hash())).unwrap();
        assert_eq!(decode_entry(&bytes, &other), ReadOutcome::Corrupt);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
