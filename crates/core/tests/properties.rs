//! Property-based tests for the core reliability algebra.

use lori_core::lifetime::Lifetime;
use lori_core::reliability::{availability, no_error_probability, Block};
use lori_core::stats::Running;
use lori_core::units::{Cycles, Probability, Seconds};
use lori_core::Rng;
use proptest::prelude::*;

proptest! {
    /// Eq. (1) always yields a valid probability, monotone in both arguments.
    #[test]
    fn eq1_in_range(p in 0.0f64..=1.0, nc in 0u64..10_000_000) {
        let p = Probability::new(p).unwrap();
        let r = no_error_probability(p, Cycles(nc));
        prop_assert!((0.0..=1.0).contains(&r.value()));
    }

    /// More cycles can only lower (or keep) the no-error probability.
    #[test]
    fn eq1_monotone_in_cycles(p in 1e-9f64..=0.1, nc in 1u64..1_000_000) {
        let p = Probability::new(p).unwrap();
        let r1 = no_error_probability(p, Cycles(nc));
        let r2 = no_error_probability(p, Cycles(nc * 2));
        prop_assert!(r2.value() <= r1.value() + 1e-15);
    }

    /// Higher per-cycle error probability can only lower the no-error probability.
    #[test]
    fn eq1_monotone_in_p(p in 1e-9f64..=0.05, nc in 1u64..100_000) {
        let lo = Probability::new(p).unwrap();
        let hi = Probability::new((p * 2.0).min(1.0)).unwrap();
        let r_lo = no_error_probability(lo, Cycles(nc));
        let r_hi = no_error_probability(hi, Cycles(nc));
        prop_assert!(r_hi.value() <= r_lo.value() + 1e-15);
    }

    /// Probability constructor accepts exactly [0, 1].
    #[test]
    fn probability_domain(v in -10.0f64..10.0) {
        let ok = Probability::new(v).is_ok();
        prop_assert_eq!(ok, (0.0..=1.0).contains(&v));
    }

    /// Independent union/intersection stay within bounds and ordering.
    #[test]
    fn probability_combinators(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let pa = Probability::new(a).unwrap();
        let pb = Probability::new(b).unwrap();
        let u = pa.union_independent(pb).value();
        let i = pa.intersect_independent(pb).value();
        prop_assert!(i <= a + 1e-15 && i <= b + 1e-15);
        prop_assert!(u + 1e-15 >= a && u + 1e-15 >= b);
        prop_assert!((0.0..=1.0).contains(&u) && (0.0..=1.0).contains(&i));
    }

    /// Series reliability is a lower bound of every component; parallel is an
    /// upper bound of every component.
    #[test]
    fn series_parallel_bounds(r1 in 0.01f64..2.0, r2 in 0.01f64..2.0, t in 0.0f64..20.0) {
        let a = Lifetime::exponential(r1).unwrap();
        let b = Lifetime::exponential(r2).unwrap();
        let t = Seconds(t);
        let series = Block::Series(vec![Block::Component(a), Block::Component(b)]);
        let parallel = Block::Parallel(vec![Block::Component(a), Block::Component(b)]);
        let ra = a.reliability(t).value();
        let rb = b.reliability(t).value();
        let rs = series.reliability(t).value();
        let rp = parallel.reliability(t).value();
        prop_assert!(rs <= ra.min(rb) + 1e-12);
        prop_assert!(rp + 1e-12 >= ra.max(rb));
    }

    /// Weibull reliability is monotone decreasing in t.
    #[test]
    fn weibull_monotone(scale in 0.1f64..100.0, shape in 0.2f64..5.0,
                        t1 in 0.0f64..50.0, dt in 0.0f64..50.0) {
        let w = Lifetime::weibull(scale, shape).unwrap();
        let r1 = w.reliability(Seconds(t1)).value();
        let r2 = w.reliability(Seconds(t1 + dt)).value();
        prop_assert!(r2 <= r1 + 1e-12);
    }

    /// Availability is within [0, 1] and increases with MTTF.
    #[test]
    fn availability_bounds(mttf in 0.001f64..1e6, mttr in 0.001f64..1e6) {
        let a = availability(Seconds(mttf), Seconds(mttr)).unwrap().value();
        prop_assert!((0.0..=1.0).contains(&a));
        let a2 = availability(Seconds(mttf * 2.0), Seconds(mttr)).unwrap().value();
        prop_assert!(a2 + 1e-15 >= a);
    }

    /// Welford accumulator agrees with the naive batch computation.
    #[test]
    fn running_matches_naive(xs in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
        let r: Running = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((r.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((r.variance() - var).abs() < 1e-5 * (1.0 + var));
    }

    /// Geometric sampler support and determinism per seed.
    #[test]
    fn geometric_deterministic(seed in 0u64..1000, q in 0.001f64..1.0) {
        let mut a = Rng::from_seed(seed);
        let mut b = Rng::from_seed(seed);
        prop_assert_eq!(a.geometric(q), b.geometric(q));
    }
}
