//! Reliability algebra: the paper's Eq. (1), MTTF/MWTF metrics, and
//! series/parallel system composition.

use crate::error::Error;
use crate::lifetime::Lifetime;
use crate::units::{Cycles, Fit, Probability, Seconds};

/// Eq. (1) of the paper: the probability that *no* cycle in an interval of
/// `n_c` cycles is erroneous, when each cycle is independently erroneous with
/// probability `p`:
///
/// `Pr(N_e = 0) = (1 - p)^n_c`
///
/// ```
/// use lori_core::units::{Probability, Cycles};
/// use lori_core::reliability::no_error_probability;
/// # fn main() -> Result<(), lori_core::Error> {
/// let p = Probability::new(0.5)?;
/// let pr = no_error_probability(p, Cycles(2));
/// assert!((pr.value() - 0.25).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn no_error_probability(p: Probability, n_c: Cycles) -> Probability {
    p.complement().powi(n_c.value())
}

/// Mean Workload To Failure: the expected amount of useful work completed
/// before a failure, the metric maximized by reliability-aware mapping
/// approaches surveyed in Sec. IV-A.3 (e.g. Tonetto et al., DAC 2020).
///
/// `MWTF = 1 / (raw_error_rate × AVF × execution_time)` — the definition used
/// in the MWTF literature: lower vulnerability or faster execution both let
/// more work complete per failure. All inputs are per-task; the result is in
/// "workloads per failure" (dimensionless, relative).
///
/// # Errors
///
/// Returns [`Error::NonPositive`] if any input is not strictly positive
/// (an AVF of zero would be "never fails", which is expressed as infinity by
/// the caller, not here).
pub fn mwtf(raw_error_rate: Fit, avf: f64, execution_time: Seconds) -> Result<f64, Error> {
    if raw_error_rate.value().is_nan() || raw_error_rate.value() <= 0.0 {
        return Err(Error::NonPositive {
            what: "raw error rate",
            value: raw_error_rate.value(),
        });
    }
    if !avf.is_finite() || avf <= 0.0 {
        return Err(Error::NonPositive {
            what: "AVF",
            value: avf,
        });
    }
    if execution_time.value().is_nan() || execution_time.value() <= 0.0 {
        return Err(Error::NonPositive {
            what: "execution time",
            value: execution_time.value(),
        });
    }
    Ok(1.0 / (raw_error_rate.per_second() * avf * execution_time.value()))
}

/// A system reliability model composed of components, each with a lifetime
/// distribution, wired in series (all must survive) and/or parallel groups
/// (at least one must survive).
///
/// This is the standard reliability-block-diagram algebra used by
/// system-level MTTF estimation (Sec. IV-B.1 of the paper).
#[derive(Debug, Clone)]
pub enum Block {
    /// A single component.
    Component(Lifetime),
    /// All children must survive.
    Series(Vec<Block>),
    /// At least one child must survive.
    Parallel(Vec<Block>),
}

impl Block {
    /// Reliability of the block at time `t`.
    #[must_use]
    pub fn reliability(&self, t: Seconds) -> Probability {
        match self {
            Block::Component(l) => l.reliability(t),
            Block::Series(children) => {
                let r = children
                    .iter()
                    .map(|c| c.reliability(t).value())
                    .product::<f64>();
                Probability::saturating(r)
            }
            Block::Parallel(children) => {
                let f = children
                    .iter()
                    .map(|c| 1.0 - c.reliability(t).value())
                    .product::<f64>();
                Probability::saturating(1.0 - f)
            }
        }
    }

    /// MTTF of the block, computed by numerically integrating `R(t)` with an
    /// adaptive upper bound (Simpson's rule on a log-friendly grid).
    ///
    /// `MTTF = ∫₀^∞ R(t) dt`
    #[must_use]
    pub fn mttf(&self) -> Seconds {
        // Find a horizon where R(t) is negligible by doubling.
        let mut horizon = 1.0;
        while self.reliability(Seconds(horizon)).value() > 1e-9 && horizon < 1.0e18 {
            horizon *= 2.0;
        }
        // Composite Simpson over [0, horizon] with enough panels.
        let n = 4096; // even
        let h = horizon / f64::from(n);
        let mut acc =
            self.reliability(Seconds(0.0)).value() + self.reliability(Seconds(horizon)).value();
        for i in 1..n {
            let t = f64::from(i) * h;
            let w = if i % 2 == 1 { 4.0 } else { 2.0 };
            acc += w * self.reliability(Seconds(t)).value();
        }
        Seconds(acc * h / 3.0)
    }

    /// Number of leaf components in the block.
    #[must_use]
    pub fn component_count(&self) -> usize {
        match self {
            Block::Component(_) => 1,
            Block::Series(c) | Block::Parallel(c) => c.iter().map(Block::component_count).sum(),
        }
    }
}

/// Sum-of-failure-rates composition: given per-mechanism FIT rates, the
/// combined rate under the standard SOFR assumption (independent exponential
/// mechanisms in series).
#[must_use]
pub fn sum_of_failure_rates<I: IntoIterator<Item = Fit>>(rates: I) -> Fit {
    rates.into_iter().sum()
}

/// System availability under alternating up/down periods:
/// `A = MTTF / (MTTF + MTTR)`.
///
/// # Errors
///
/// Returns [`Error::NonPositive`] if `mttf + mttr` is not strictly positive.
pub fn availability(mttf: Seconds, mttr: Seconds) -> Result<Probability, Error> {
    let total = mttf.value() + mttr.value();
    if total > 0.0 && mttf.value() >= 0.0 && mttr.value() >= 0.0 {
        Probability::new(mttf.value() / total)
    } else {
        Err(Error::NonPositive {
            what: "mttf + mttr",
            value: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::Lifetime;

    fn exp(rate: f64) -> Block {
        Block::Component(Lifetime::exponential(rate).unwrap())
    }

    #[test]
    fn eq1_matches_paper_form() {
        let p = Probability::new(1e-6).unwrap();
        let pr = no_error_probability(p, Cycles(100_000));
        let direct = (1.0f64 - 1e-6).powi(100_000);
        assert!((pr.value() - direct).abs() < 1e-9);
    }

    #[test]
    fn eq1_edge_cases() {
        assert_eq!(
            no_error_probability(Probability::ZERO, Cycles(1_000_000)),
            Probability::ONE
        );
        assert_eq!(
            no_error_probability(Probability::ONE, Cycles(1)),
            Probability::ZERO
        );
        assert_eq!(
            no_error_probability(Probability::new(0.3).unwrap(), Cycles(0)),
            Probability::ONE
        );
    }

    #[test]
    fn mwtf_inverse_relations() {
        let base = mwtf(Fit(1000.0), 0.5, Seconds(1.0)).unwrap();
        // Halving AVF doubles MWTF.
        let half_avf = mwtf(Fit(1000.0), 0.25, Seconds(1.0)).unwrap();
        assert!((half_avf / base - 2.0).abs() < 1e-9);
        // Doubling execution time halves MWTF.
        let slow = mwtf(Fit(1000.0), 0.5, Seconds(2.0)).unwrap();
        assert!((slow / base - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mwtf_validates() {
        assert!(mwtf(Fit(0.0), 0.5, Seconds(1.0)).is_err());
        assert!(mwtf(Fit(1.0), 0.0, Seconds(1.0)).is_err());
        assert!(mwtf(Fit(1.0), 0.5, Seconds(0.0)).is_err());
    }

    #[test]
    fn series_of_exponentials_adds_rates() {
        let s = Block::Series(vec![exp(0.1), exp(0.3)]);
        // Series of exponentials is exponential with summed rate: MTTF = 1/0.4.
        let mttf = s.mttf().value();
        assert!((mttf - 2.5).abs() / 2.5 < 0.01, "mttf {mttf}");
    }

    #[test]
    fn parallel_beats_single() {
        let single = exp(0.1);
        let dual = Block::Parallel(vec![exp(0.1), exp(0.1)]);
        // Standby-free parallel pair of exponentials: MTTF = 1/λ + 1/(2λ) = 15.
        let m1 = single.mttf().value();
        let m2 = dual.mttf().value();
        assert!(m2 > m1);
        assert!((m2 - 15.0).abs() / 15.0 < 0.01, "mttf {m2}");
    }

    #[test]
    fn reliability_bounds_hold() {
        let sys = Block::Series(vec![
            exp(0.2),
            Block::Parallel(vec![exp(0.5), exp(0.5), exp(0.5)]),
        ]);
        for i in 0..50 {
            let t = Seconds(f64::from(i) * 0.5);
            let r = sys.reliability(t).value();
            assert!((0.0..=1.0).contains(&r));
            // Series reliability never exceeds weakest child.
            assert!(r <= exp(0.2).reliability(t).value() + 1e-12);
        }
    }

    #[test]
    fn component_count() {
        let sys = Block::Series(vec![exp(0.2), Block::Parallel(vec![exp(0.5), exp(0.5)])]);
        assert_eq!(sys.component_count(), 3);
    }

    #[test]
    fn sofr_sums() {
        let total = sum_of_failure_rates([Fit(10.0), Fit(20.0), Fit(5.0)]);
        assert!((total.value() - 35.0).abs() < 1e-12);
    }

    #[test]
    fn availability_basic() {
        let a = availability(Seconds(99.0), Seconds(1.0)).unwrap();
        assert!((a.value() - 0.99).abs() < 1e-12);
        assert!(availability(Seconds(0.0), Seconds(0.0)).is_err());
    }
}
