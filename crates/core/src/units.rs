//! Strongly-typed physical units used across the LORI workspace.
//!
//! Newtypes keep voltages, frequencies, temperatures, times and probabilities
//! from being confused with one another (C-NEWTYPE). All wrappers are thin
//! `f64`/`u64` tuples with public fields where the interpretation is
//! unambiguous, and validated constructors where it is not ([`Probability`]).

use crate::error::Error;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A probability, guaranteed to be finite and within `[0, 1]`.
///
/// ```
/// use lori_core::units::Probability;
/// # fn main() -> Result<(), lori_core::Error> {
/// let p = Probability::new(0.25)?;
/// assert_eq!(p.complement().value(), 0.75);
/// assert!(Probability::new(1.5).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Probability(f64);

impl Probability {
    /// The impossible event.
    pub const ZERO: Probability = Probability(0.0);
    /// The certain event.
    pub const ONE: Probability = Probability(1.0);

    /// Creates a probability.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidProbability`] if `value` is NaN, infinite, or
    /// outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, Error> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Probability(value))
        } else {
            Err(Error::InvalidProbability(value))
        }
    }

    /// Creates a probability, clamping the input into `[0, 1]`.
    ///
    /// NaN is mapped to zero. Useful when numerical noise may push a computed
    /// probability infinitesimally outside its domain.
    #[must_use]
    pub fn saturating(value: f64) -> Self {
        if value.is_nan() {
            Probability(0.0)
        } else {
            Probability(value.clamp(0.0, 1.0))
        }
    }

    /// The raw value in `[0, 1]`.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// `1 - p`.
    #[must_use]
    pub fn complement(self) -> Self {
        Probability(1.0 - self.0)
    }

    /// Probability that at least one of two independent events occurs.
    #[must_use]
    pub fn union_independent(self, other: Self) -> Self {
        Probability::saturating(1.0 - (1.0 - self.0) * (1.0 - other.0))
    }

    /// Probability that two independent events both occur.
    #[must_use]
    pub fn intersect_independent(self, other: Self) -> Self {
        Probability::saturating(self.0 * other.0)
    }

    /// `p^n` — the probability that an independent event occurs `n` times in
    /// a row. Computed in log-space for very small bases to avoid underflow
    /// artifacts.
    #[must_use]
    pub fn powi(self, n: u64) -> Self {
        if n == 0 {
            return Probability::ONE;
        }
        if self.0 == 0.0 {
            return Probability::ZERO;
        }
        // ln is exact enough here and avoids repeated-multiplication drift.
        #[allow(clippy::cast_precision_loss)]
        let v = (self.0.ln() * n as f64).exp();
        Probability::saturating(v)
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<Probability> for f64 {
    fn from(p: Probability) -> f64 {
        p.0
    }
}

macro_rules! f64_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// The raw value.
            #[must_use]
            pub fn value(self) -> f64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }
    };
}

f64_unit!(
    /// A voltage in volts.
    Volts,
    "V"
);
f64_unit!(
    /// A frequency in megahertz.
    MegaHertz,
    "MHz"
);
f64_unit!(
    /// A temperature in degrees Celsius.
    Celsius,
    "°C"
);
f64_unit!(
    /// A temperature *difference* in kelvin (e.g. self-heating above ambient).
    Kelvin,
    "K"
);
f64_unit!(
    /// A time span in seconds.
    Seconds,
    "s"
);
f64_unit!(
    /// A time span in picoseconds (gate-delay scale).
    Picoseconds,
    "ps"
);
f64_unit!(
    /// An energy in joules.
    Joules,
    "J"
);
f64_unit!(
    /// A power in watts.
    Watts,
    "W"
);
f64_unit!(
    /// A capacitance in femtofarads (standard-cell pin-load scale).
    FemtoFarads,
    "fF"
);

impl Seconds {
    /// Converts hours to seconds.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        Seconds(hours * 3600.0)
    }

    /// Converts years (365.25 days) to seconds.
    #[must_use]
    pub fn from_years(years: f64) -> Self {
        Seconds(years * 365.25 * 24.0 * 3600.0)
    }

    /// This span expressed in years.
    #[must_use]
    pub fn as_years(self) -> f64 {
        self.0 / (365.25 * 24.0 * 3600.0)
    }
}

impl Celsius {
    /// The temperature in kelvin (absolute).
    #[must_use]
    pub fn as_absolute_kelvin(self) -> f64 {
        self.0 + 273.15
    }
}

impl MegaHertz {
    /// Clock period at this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero or negative.
    #[must_use]
    pub fn period(self) -> Picoseconds {
        assert!(self.0 > 0.0, "frequency must be positive to have a period");
        Picoseconds(1.0e6 / self.0)
    }
}

/// A count of clock cycles.
///
/// ```
/// use lori_core::units::{Cycles, MegaHertz};
/// let c = Cycles(1_000_000);
/// let wall = c.at(MegaHertz(1000.0));
/// assert!((wall.value() - 1e-3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// The raw count.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Wall-clock duration of this many cycles at frequency `f`.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn at(self, f: MegaHertz) -> Seconds {
        Seconds(self.0 as f64 / (f.0 * 1.0e6))
    }

    /// This count as an `f64` (for statistics).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// A failure rate in FIT (failures per 10⁹ device-hours).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Fit(pub f64);

impl Fit {
    /// The raw FIT value.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to failures per second.
    #[must_use]
    pub fn per_second(self) -> f64 {
        self.0 / (1.0e9 * 3600.0)
    }

    /// Mean time to failure implied by this (exponential) rate.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonPositive`] if the rate is not strictly positive.
    pub fn mttf(self) -> Result<Seconds, Error> {
        if self.0 > 0.0 {
            Ok(Seconds(1.0 / self.per_second()))
        } else {
            Err(Error::NonPositive {
                what: "failure rate",
                value: self.0,
            })
        }
    }
}

impl Add for Fit {
    type Output = Fit;
    fn add(self, rhs: Fit) -> Fit {
        Fit(self.0 + rhs.0)
    }
}

impl Sum for Fit {
    fn sum<I: Iterator<Item = Fit>>(iter: I) -> Fit {
        Fit(iter.map(|v| v.0).sum())
    }
}

impl fmt::Display for Fit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} FIT", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_rejects_out_of_range() {
        assert!(Probability::new(-0.1).is_err());
        assert!(Probability::new(1.1).is_err());
        assert!(Probability::new(f64::NAN).is_err());
        assert!(Probability::new(f64::INFINITY).is_err());
        assert!(Probability::new(0.0).is_ok());
        assert!(Probability::new(1.0).is_ok());
    }

    #[test]
    fn probability_saturating_clamps() {
        assert_eq!(Probability::saturating(-1.0).value(), 0.0);
        assert_eq!(Probability::saturating(2.0).value(), 1.0);
        assert_eq!(Probability::saturating(f64::NAN).value(), 0.0);
        assert_eq!(Probability::saturating(0.5).value(), 0.5);
    }

    #[test]
    fn probability_algebra() {
        let p = Probability::new(0.5).unwrap();
        let q = Probability::new(0.5).unwrap();
        assert!((p.union_independent(q).value() - 0.75).abs() < 1e-12);
        assert!((p.intersect_independent(q).value() - 0.25).abs() < 1e-12);
        assert_eq!(p.powi(0), Probability::ONE);
        assert!((p.powi(2).value() - 0.25).abs() < 1e-12);
        assert_eq!(Probability::ZERO.powi(5), Probability::ZERO);
    }

    #[test]
    fn probability_powi_matches_direct_for_small_base() {
        let p = Probability::new(1.0 - 1e-7).unwrap();
        let direct = (1.0f64 - 1e-7).powi(100_000);
        let ours = p.powi(100_000).value();
        assert!((direct - ours).abs() < 1e-9, "{direct} vs {ours}");
    }

    #[test]
    fn cycles_wall_clock() {
        let c = Cycles(2_000_000);
        let t = c.at(MegaHertz(2000.0));
        assert!((t.value() - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn frequency_period() {
        let f = MegaHertz(1000.0);
        assert!((f.period().value() - 1000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn frequency_period_panics_on_zero() {
        let _ = MegaHertz(0.0).period();
    }

    #[test]
    fn fit_conversions() {
        let fit = Fit(1.0e9); // one failure per hour
        let mttf = fit.mttf().unwrap();
        assert!((mttf.value() - 3600.0).abs() < 1e-6);
        assert!(Fit(0.0).mttf().is_err());
    }

    #[test]
    fn seconds_conversions() {
        let s = Seconds::from_years(1.0);
        assert!((s.as_years() - 1.0).abs() < 1e-12);
        assert!((Seconds::from_hours(2.0).value() - 7200.0).abs() < 1e-12);
    }

    #[test]
    fn unit_arithmetic() {
        let v = Volts(1.0) + Volts(0.2);
        assert!((v.value() - 1.2).abs() < 1e-12);
        let t = Celsius(25.0);
        assert!((t.as_absolute_kelvin() - 298.15).abs() < 1e-12);
        let sum: Watts = [Watts(1.0), Watts(2.5)].into_iter().sum();
        assert!((sum.value() - 3.5).abs() < 1e-12);
        let c: Cycles = [Cycles(1), Cycles(2)].into_iter().sum();
        assert_eq!(c, Cycles(3));
    }

    #[test]
    fn display_impls_nonempty() {
        assert!(!format!("{}", Volts(1.0)).is_empty());
        assert!(!format!("{}", Cycles(3)).is_empty());
        assert!(!format!("{}", Fit(10.0)).is_empty());
        assert!(!format!("{}", Probability::ONE).is_empty());
    }
}
