//! Lifetime distributions used by system-level reliability models.
//!
//! The device-level MTTF models in `lori-sys` (EM, TDDB, TC, NBTI, HCI)
//! produce *scale* parameters for these distributions; this module provides
//! the distribution math itself: reliability functions `R(t)`, MTTF, and
//! sampling.

use crate::error::Error;
use crate::rng::Rng;
use crate::units::{Probability, Seconds};

/// A parametric lifetime distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lifetime {
    /// Exponential with the given failure rate (per second). Memoryless;
    /// appropriate for soft errors and random hard failures.
    Exponential {
        /// Failure rate λ in failures per second (must be > 0).
        rate: f64,
    },
    /// Weibull with scale α (seconds) and shape β. β > 1 models wear-out
    /// (aging), which is the standard choice for EM/TDDB/TC lifetime models.
    Weibull {
        /// Scale parameter α in seconds (must be > 0).
        scale: f64,
        /// Shape parameter β (must be > 0).
        shape: f64,
    },
}

impl Lifetime {
    /// Creates an exponential lifetime.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonPositive`] if `rate <= 0` or not finite.
    pub fn exponential(rate: f64) -> Result<Self, Error> {
        if rate > 0.0 && rate.is_finite() {
            Ok(Lifetime::Exponential { rate })
        } else {
            Err(Error::NonPositive {
                what: "exponential rate",
                value: rate,
            })
        }
    }

    /// Creates a Weibull lifetime.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonPositive`] if `scale <= 0` or `shape <= 0`.
    pub fn weibull(scale: f64, shape: f64) -> Result<Self, Error> {
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(Error::NonPositive {
                what: "weibull scale",
                value: scale,
            });
        }
        if !(shape > 0.0 && shape.is_finite()) {
            return Err(Error::NonPositive {
                what: "weibull shape",
                value: shape,
            });
        }
        Ok(Lifetime::Weibull { scale, shape })
    }

    /// Reliability function `R(t)`: probability of surviving past `t`.
    #[must_use]
    pub fn reliability(&self, t: Seconds) -> Probability {
        let t = t.value().max(0.0);
        let r = match *self {
            Lifetime::Exponential { rate } => (-rate * t).exp(),
            Lifetime::Weibull { scale, shape } => (-(t / scale).powf(shape)).exp(),
        };
        Probability::saturating(r)
    }

    /// Mean time to failure.
    ///
    /// For Weibull this is `α · Γ(1 + 1/β)`.
    #[must_use]
    pub fn mttf(&self) -> Seconds {
        match *self {
            Lifetime::Exponential { rate } => Seconds(1.0 / rate),
            Lifetime::Weibull { scale, shape } => Seconds(scale * gamma(1.0 + 1.0 / shape)),
        }
    }

    /// Samples a failure time.
    #[must_use]
    pub fn sample(&self, rng: &mut Rng) -> Seconds {
        let u = 1.0 - rng.uniform(); // in (0, 1]
        match *self {
            Lifetime::Exponential { rate } => Seconds(-u.ln() / rate),
            Lifetime::Weibull { scale, shape } => Seconds(scale * (-u.ln()).powf(1.0 / shape)),
        }
    }
}

/// Lanczos approximation of the gamma function (g = 7, n = 9), accurate to
/// ~15 significant digits for positive arguments — plenty for lifetime math.
#[must_use]
pub fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            #[allow(clippy::cast_precision_loss)]
            {
                a += c / (x + i as f64);
            }
        }
        (std::f64::consts::TAU).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn constructors_validate() {
        assert!(Lifetime::exponential(0.0).is_err());
        assert!(Lifetime::exponential(-1.0).is_err());
        assert!(Lifetime::weibull(0.0, 2.0).is_err());
        assert!(Lifetime::weibull(1.0, 0.0).is_err());
        assert!(Lifetime::weibull(1.0, 2.0).is_ok());
    }

    #[test]
    fn exponential_reliability_and_mttf() {
        let l = Lifetime::exponential(0.5).unwrap();
        assert!((l.mttf().value() - 2.0).abs() < 1e-12);
        let r = l.reliability(Seconds(2.0));
        assert!((r.value() - (-1.0f64).exp()).abs() < 1e-12);
        // R(0) = 1
        assert!((l.reliability(Seconds(0.0)).value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = Lifetime::weibull(2.0, 1.0).unwrap();
        let e = Lifetime::exponential(0.5).unwrap();
        for t in [0.1, 1.0, 5.0] {
            let rw = w.reliability(Seconds(t)).value();
            let re = e.reliability(Seconds(t)).value();
            assert!((rw - re).abs() < 1e-12, "t={t}: {rw} vs {re}");
        }
        assert!((w.mttf().value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn weibull_mttf_gamma() {
        // β = 2: MTTF = α·Γ(1.5) = α·√π/2.
        let w = Lifetime::weibull(100.0, 2.0).unwrap();
        let expect = 100.0 * std::f64::consts::PI.sqrt() / 2.0;
        assert!((w.mttf().value() - expect).abs() < 1e-6);
    }

    #[test]
    fn sampling_mean_approaches_mttf() {
        let mut rng = Rng::from_seed(99);
        for dist in [
            Lifetime::exponential(0.1).unwrap(),
            Lifetime::weibull(10.0, 2.0).unwrap(),
        ] {
            let n = 100_000;
            #[allow(clippy::cast_precision_loss)]
            let mean = (0..n).map(|_| dist.sample(&mut rng).value()).sum::<f64>() / n as f64;
            let mttf = dist.mttf().value();
            assert!(
                (mean - mttf).abs() / mttf < 0.02,
                "mean {mean} vs mttf {mttf}"
            );
        }
    }

    #[test]
    fn reliability_is_monotone_decreasing() {
        let w = Lifetime::weibull(5.0, 3.0).unwrap();
        let mut prev = 1.0;
        for i in 0..100 {
            let r = w.reliability(Seconds(f64::from(i) * 0.2)).value();
            assert!(r <= prev + 1e-15);
            prev = r;
        }
    }

    #[test]
    fn negative_time_clamps_to_full_reliability() {
        let l = Lifetime::exponential(1.0).unwrap();
        assert!((l.reliability(Seconds(-5.0)).value() - 1.0).abs() < 1e-12);
    }
}
