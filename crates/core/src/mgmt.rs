//! The learning-based reliability-management loop of the paper's Fig. 1.
//!
//! The figure shows a closed loop: an **agent** observes the **state** of the
//! managed system, picks an **action** (an optimization knob setting), the
//! **environment** applies it, and a **reward** derived from a resiliency
//! model (e.g. MTTF) drives learning.
//!
//! This module provides the abstraction; `lori-ml::rl` provides tabular
//! learners implementing [`Agent`], and `lori-sys` provides concrete
//! environments (DVFS/DPM/mapping knobs on a simulated multicore).

use std::fmt::Debug;

/// A fully-observed environment with discrete states and actions, in the
/// standard episodic RL interface.
///
/// States and actions are dense indices (`usize`) so tabular agents can store
/// values in flat arrays; environments are responsible for discretizing their
/// raw observations (temperature, utilization, ...) into state indices.
pub trait Environment {
    /// Number of distinct states.
    fn state_count(&self) -> usize;
    /// Number of distinct actions.
    fn action_count(&self) -> usize;
    /// Resets to the start of an episode and returns the initial state.
    fn reset(&mut self) -> usize;
    /// Applies `action`, returning the transition result.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `action >= action_count()`.
    fn step(&mut self, action: usize) -> Transition;
}

/// The result of one environment step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// The state after the action.
    pub next_state: usize,
    /// The reward obtained (e.g. a function of MTTF, energy, deadline misses).
    pub reward: f64,
    /// Whether the episode ended.
    pub done: bool,
}

/// A learning controller: observes states, selects actions, learns from
/// transitions. Object-safe so managers can hold `Box<dyn Agent>`.
pub trait Agent {
    /// Selects an action for `state` (may explore).
    fn act(&mut self, state: usize) -> usize;
    /// Selects the greedy action for `state` (no exploration).
    fn best_action(&self, state: usize) -> usize;
    /// Learns from an observed transition.
    fn learn(&mut self, state: usize, action: usize, transition: &Transition);
    /// Called at episode boundaries (e.g. to decay exploration).
    fn end_episode(&mut self) {}
}

/// Summary of a training run of the management loop.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainingReport {
    /// Total reward per episode, in order.
    pub episode_rewards: Vec<f64>,
    /// Steps taken per episode.
    pub episode_lengths: Vec<usize>,
}

impl TrainingReport {
    /// Mean reward over the last `n` episodes (all, if fewer).
    #[must_use]
    pub fn recent_mean_reward(&self, n: usize) -> f64 {
        let tail: Vec<f64> = self.episode_rewards.iter().rev().take(n).copied().collect();
        if tail.is_empty() {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                tail.iter().sum::<f64>() / tail.len() as f64
            }
        }
    }
}

/// Runs the Fig.-1 loop: trains `agent` on `env` for `episodes` episodes of
/// at most `max_steps` each.
///
/// ```
/// use lori_core::mgmt::{train, Agent, Environment, Transition};
///
/// // A 2-state chain where action 1 always reaches the terminal state.
/// struct Chain {
///     s: usize,
/// }
/// impl Environment for Chain {
///     fn state_count(&self) -> usize { 2 }
///     fn action_count(&self) -> usize { 2 }
///     fn reset(&mut self) -> usize { self.s = 0; 0 }
///     fn step(&mut self, action: usize) -> Transition {
///         if action == 1 {
///             Transition { next_state: 1, reward: 1.0, done: true }
///         } else {
///             Transition { next_state: 0, reward: 0.0, done: false }
///         }
///     }
/// }
/// struct Always1;
/// impl Agent for Always1 {
///     fn act(&mut self, _s: usize) -> usize { 1 }
///     fn best_action(&self, _s: usize) -> usize { 1 }
///     fn learn(&mut self, _s: usize, _a: usize, _t: &Transition) {}
/// }
/// let report = train(&mut Chain { s: 0 }, &mut Always1, 3, 10);
/// assert_eq!(report.episode_rewards, vec![1.0, 1.0, 1.0]);
/// ```
pub fn train<E, A>(env: &mut E, agent: &mut A, episodes: usize, max_steps: usize) -> TrainingReport
where
    E: Environment + ?Sized,
    A: Agent + ?Sized,
{
    let mut report = TrainingReport::default();
    for _ in 0..episodes {
        let mut state = env.reset();
        let mut total = 0.0;
        let mut steps = 0;
        for _ in 0..max_steps {
            let action = agent.act(state);
            let tr = env.step(action);
            agent.learn(state, action, &tr);
            total += tr.reward;
            steps += 1;
            state = tr.next_state;
            if tr.done {
                break;
            }
        }
        agent.end_episode();
        report.episode_rewards.push(total);
        report.episode_lengths.push(steps);
    }
    report
}

/// Evaluates a trained agent greedily (no learning, no exploration),
/// returning the mean total reward over `episodes`.
pub fn evaluate<E, A>(env: &mut E, agent: &A, episodes: usize, max_steps: usize) -> f64
where
    E: Environment + ?Sized,
    A: Agent + ?Sized,
{
    let mut total = 0.0;
    for _ in 0..episodes {
        let mut state = env.reset();
        for _ in 0..max_steps {
            let tr = env.step(agent.best_action(state));
            total += tr.reward;
            state = tr.next_state;
            if tr.done {
                break;
            }
        }
    }
    #[allow(clippy::cast_precision_loss)]
    {
        total / episodes.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A corridor of `n` states; action 0 moves left, 1 moves right.
    /// Reaching the right end gives +1 and terminates.
    struct Corridor {
        n: usize,
        pos: usize,
    }

    impl Environment for Corridor {
        fn state_count(&self) -> usize {
            self.n
        }
        fn action_count(&self) -> usize {
            2
        }
        fn reset(&mut self) -> usize {
            self.pos = 0;
            0
        }
        fn step(&mut self, action: usize) -> Transition {
            assert!(action < 2);
            if action == 1 {
                self.pos += 1;
            } else {
                self.pos = self.pos.saturating_sub(1);
            }
            if self.pos == self.n - 1 {
                Transition {
                    next_state: self.pos,
                    reward: 1.0,
                    done: true,
                }
            } else {
                Transition {
                    next_state: self.pos,
                    reward: -0.01,
                    done: false,
                }
            }
        }
    }

    struct GoRight;
    impl Agent for GoRight {
        fn act(&mut self, _s: usize) -> usize {
            1
        }
        fn best_action(&self, _s: usize) -> usize {
            1
        }
        fn learn(&mut self, _s: usize, _a: usize, _t: &Transition) {}
    }

    #[test]
    fn train_reaches_goal() {
        let mut env = Corridor { n: 5, pos: 0 };
        let mut agent = GoRight;
        let report = train(&mut env, &mut agent, 4, 100);
        assert_eq!(report.episode_lengths, vec![4, 4, 4, 4]);
        for r in &report.episode_rewards {
            assert!((r - (1.0 - 0.03)).abs() < 1e-12);
        }
    }

    #[test]
    fn max_steps_truncates() {
        let mut env = Corridor { n: 100, pos: 0 };
        let mut agent = GoRight;
        let report = train(&mut env, &mut agent, 1, 10);
        assert_eq!(report.episode_lengths, vec![10]);
    }

    #[test]
    fn evaluate_matches_training_policy() {
        let mut env = Corridor { n: 5, pos: 0 };
        let agent = GoRight;
        let mean = evaluate(&mut env, &agent, 3, 100);
        assert!((mean - 0.97).abs() < 1e-12);
    }

    #[test]
    fn recent_mean_reward() {
        let report = TrainingReport {
            episode_rewards: vec![0.0, 1.0, 2.0, 3.0],
            episode_lengths: vec![1; 4],
        };
        assert!((report.recent_mean_reward(2) - 2.5).abs() < 1e-12);
        assert!((report.recent_mean_reward(100) - 1.5).abs() < 1e-12);
        assert_eq!(TrainingReport::default().recent_mean_reward(5), 0.0);
    }

    #[test]
    fn agent_is_object_safe() {
        let agent: Box<dyn Agent> = Box::new(GoRight);
        assert_eq!(agent.best_action(0), 1);
    }
}
