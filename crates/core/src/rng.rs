//! Seeded, reproducible randomness for all LORI experiments.
//!
//! [`Rng`] wraps a small, fast PRNG behind a domain-oriented API (uniform,
//! normal, Bernoulli, geometric sampling, shuffling, sub-stream splitting).
//! Every simulator and model in the workspace takes an `Rng` or a `u64` seed,
//! never ambient randomness, so all results are reproducible.

use rand::rngs::SmallRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// A seeded pseudo-random number generator.
///
/// ```
/// use lori_core::Rng;
/// let mut a = Rng::from_seed(42);
/// let mut b = Rng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    inner: SmallRng,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Rng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent sub-stream, e.g. one per Monte Carlo run.
    ///
    /// Mixing the stream index through a SplitMix64 step keeps sub-streams
    /// decorrelated even for consecutive indices.
    #[must_use]
    pub fn split(&mut self, stream: u64) -> Self {
        let mut z = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng::from_seed(z ^ (z >> 31))
    }

    /// Next raw 64-bit value.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, 1)`.
    #[must_use]
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    #[must_use]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range must be non-empty");
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[must_use]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range must be non-empty");
        self.inner.gen_range(lo..hi)
    }

    /// A Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[must_use]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard normal sample (Box–Muller).
    #[must_use]
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    #[must_use]
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Geometric sample: the number of failures before the first success,
    /// where each trial succeeds with probability `q` (support `{0, 1, ...}`).
    ///
    /// Uses inverse-CDF sampling, which is exact and O(1) even for tiny `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `(0, 1]`.
    #[must_use]
    pub fn geometric(&mut self, q: f64) -> u64 {
        assert!(q > 0.0 && q <= 1.0, "success probability must be in (0, 1]");
        if q == 1.0 {
            return 0;
        }
        let u = 1.0 - self.uniform(); // in (0, 1]
                                      // ln_1p keeps precision for q near 0 AND avoids ln(1-q) rounding to
                                      // ln(1) = 0 for q below ~1e-16 (which would wrongly yield 0).
        let k = (u.ln() / (-q).ln_1p()).floor();
        if k.is_finite() && k >= 0.0 {
            // Cap at u64::MAX; astronomically unlikely to matter.
            if k >= 1.8e19 {
                u64::MAX
            } else {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                {
                    k as u64
                }
            }
        } else {
            0
        }
    }

    /// Exponential sample with the given rate (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    #[must_use]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be strictly positive");
        -(1.0 - self.uniform()).ln() / rate
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            #[allow(clippy::cast_possible_truncation)]
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Chooses a uniformly random element.
    ///
    /// Returns `None` on an empty slice.
    #[must_use]
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            #[allow(clippy::cast_possible_truncation)]
            let i = self.below(slice.len() as u64) as usize;
            Some(&slice[i])
        }
    }

    /// Samples `k` distinct indices from `0..n` (reservoir when `k < n`).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    #[must_use]
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible() {
        let mut a = Rng::from_seed(7);
        let mut b = Rng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_differ() {
        let mut root = Rng::from_seed(1);
        let mut s0 = root.split(0);
        let mut s1 = root.split(1);
        let a: Vec<u64> = (0..8).map(|_| s0.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Rng::from_seed(3);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_in_respects_bounds() {
        let mut r = Rng::from_seed(4);
        for _ in 0..1000 {
            let v = r.uniform_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = Rng::from_seed(5);
        let hits = (0..100_000).filter(|_| r.bernoulli(0.3)).count();
        #[allow(clippy::cast_precision_loss)]
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::from_seed(6);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        #[allow(clippy::cast_precision_loss)]
        let mean = samples.iter().sum::<f64>() / n as f64;
        #[allow(clippy::cast_precision_loss)]
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn geometric_mean_matches_theory() {
        // Mean of geometric (failures before success) is (1-q)/q.
        let mut r = Rng::from_seed(8);
        let q = 0.2;
        let n = 200_000;
        #[allow(clippy::cast_precision_loss)]
        let mean = (0..n).map(|_| r.geometric(q) as f64).sum::<f64>() / n as f64;
        let expect = (1.0 - q) / q;
        assert!((mean - expect).abs() < 0.05, "mean {mean}, expect {expect}");
    }

    #[test]
    fn geometric_q_one_is_zero() {
        let mut r = Rng::from_seed(9);
        for _ in 0..100 {
            assert_eq!(r.geometric(1.0), 0);
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::from_seed(10);
        let n = 100_000;
        #[allow(clippy::cast_precision_loss)]
        let mean = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::from_seed(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng::from_seed(12);
        let s = r.sample_indices(20, 10);
        assert_eq!(s.len(), 10);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 10);
        assert!(d.iter().all(|&i| i < 20));
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = Rng::from_seed(13);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }
}
