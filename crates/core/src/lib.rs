//! # lori-core
//!
//! Shared substrate for the LORI (Learning-Oriented Reliability Improvement)
//! workspace: strongly-typed physical units, validated probabilities, seeded
//! reproducible randomness, lifetime distributions, reliability algebra
//! (MTTF/MWTF, series/parallel composition), and the generic learning-based
//! reliability-management loop of the paper's Fig. 1.
//!
//! Every stochastic component in LORI takes an explicit seed so that every
//! experiment in the workspace is reproducible bit-for-bit.
//!
//! ```
//! use lori_core::units::{Probability, Cycles};
//! use lori_core::reliability::no_error_probability;
//!
//! # fn main() -> Result<(), lori_core::Error> {
//! let p = Probability::new(1e-6)?;
//! // Eq. (1) of the paper: Pr(N_e = 0) = (1 - p)^n_c
//! let pr = no_error_probability(p, Cycles(100_000));
//! assert!(pr.value() < 1.0 && pr.value() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod lifetime;
pub mod mgmt;
pub mod reliability;
pub mod rng;
pub mod stats;
pub mod units;

pub use error::Error;
pub use rng::Rng;
