//! Small statistics helpers used by simulators and experiment harnesses.

use crate::error::Error;

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`Error::Empty`] on an empty slice.
pub fn mean(xs: &[f64]) -> Result<f64, Error> {
    if xs.is_empty() {
        return Err(Error::Empty("samples"));
    }
    #[allow(clippy::cast_precision_loss)]
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance.
///
/// # Errors
///
/// Returns [`Error::Empty`] on an empty slice.
pub fn variance(xs: &[f64]) -> Result<f64, Error> {
    let m = mean(xs)?;
    #[allow(clippy::cast_precision_loss)]
    Ok(xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation.
///
/// # Errors
///
/// Returns [`Error::Empty`] on an empty slice.
pub fn std_dev(xs: &[f64]) -> Result<f64, Error> {
    Ok(variance(xs)?.sqrt())
}

/// Minimum of a slice of finite floats.
///
/// # Errors
///
/// Returns [`Error::Empty`] on an empty slice.
pub fn min(xs: &[f64]) -> Result<f64, Error> {
    xs.iter()
        .copied()
        .fold(None, |acc: Option<f64>, x| {
            Some(acc.map_or(x, |a| a.min(x)))
        })
        .ok_or(Error::Empty("samples"))
}

/// Maximum of a slice of finite floats.
///
/// # Errors
///
/// Returns [`Error::Empty`] on an empty slice.
pub fn max(xs: &[f64]) -> Result<f64, Error> {
    xs.iter()
        .copied()
        .fold(None, |acc: Option<f64>, x| {
            Some(acc.map_or(x, |a| a.max(x)))
        })
        .ok_or(Error::Empty("samples"))
}

/// Percentile via linear interpolation on the sorted sample (q in `[0,1]`).
///
/// # Errors
///
/// Returns [`Error::Empty`] on an empty slice or
/// [`Error::InvalidProbability`] if `q` is outside `[0,1]`.
pub fn percentile(xs: &[f64], q: f64) -> Result<f64, Error> {
    if xs.is_empty() {
        return Err(Error::Empty("samples"));
    }
    if !(0.0..=1.0).contains(&q) || q.is_nan() {
        return Err(Error::InvalidProbability(q));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    #[allow(clippy::cast_precision_loss)]
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor();
    let hi = pos.ceil();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let (li, hi_i) = (lo as usize, hi as usize);
    if li == hi_i {
        Ok(sorted[li])
    } else {
        Ok(sorted[li] + (pos - lo) * (sorted[hi_i] - sorted[li]))
    }
}

/// Median (50th percentile).
///
/// # Errors
///
/// Returns [`Error::Empty`] on an empty slice.
pub fn median(xs: &[f64]) -> Result<f64, Error> {
    percentile(xs, 0.5)
}

/// A streaming mean/variance accumulator (Welford's algorithm).
///
/// ```
/// use lori_core::stats::Running;
/// let mut r = Running::new();
/// for x in [1.0, 2.0, 3.0] {
///     r.push(x);
/// }
/// assert_eq!(r.count(), 3);
/// assert!((r.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        #[allow(clippy::cast_precision_loss)]
        let n = self.n as f64;
        let delta = x - self.mean;
        self.mean += delta / n;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of samples seen (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 if fewer than two samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.m2 / self.n as f64
            }
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`+inf` if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for Running {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Running {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut r = Running::new();
        r.extend(iter);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs).unwrap() - 5.0).abs() < 1e-12);
        assert!((variance(&xs).unwrap() - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_errors() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[]).is_err());
        assert!(min(&[]).is_err());
        assert!(max(&[]).is_err());
        assert!(percentile(&[], 0.5).is_err());
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -1.0, 2.0];
        assert_eq!(min(&xs).unwrap(), -1.0);
        assert_eq!(max(&xs).unwrap(), 3.0);
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&xs, 1.0).unwrap(), 4.0);
        assert!((median(&xs).unwrap() - 2.5).abs() < 1e-12);
        assert!(percentile(&xs, 1.5).is_err());
    }

    #[test]
    fn running_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let r: Running = xs.iter().copied().collect();
        assert_eq!(r.count(), 8);
        assert!((r.mean() - mean(&xs).unwrap()).abs() < 1e-12);
        assert!((r.variance() - variance(&xs).unwrap()).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
    }

    #[test]
    fn running_small_counts() {
        let mut r = Running::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.variance(), 0.0);
        r.push(5.0);
        assert_eq!(r.variance(), 0.0);
        assert!((r.mean() - 5.0).abs() < 1e-12);
    }
}
