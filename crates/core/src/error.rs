//! Error type shared by the LORI core substrate.

use std::fmt;

/// Errors produced by `lori-core` constructors and validators.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A probability value was outside `[0, 1]` or not finite.
    InvalidProbability(f64),
    /// A physical quantity that must be strictly positive was not.
    NonPositive {
        /// Name of the offending quantity.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A physical quantity that must be finite was NaN or infinite.
    NotFinite {
        /// Name of the offending quantity.
        what: &'static str,
    },
    /// An empty collection was supplied where at least one element is needed.
    Empty(&'static str),
    /// A pair of collections had mismatched lengths.
    LengthMismatch {
        /// Name of the first collection.
        left: &'static str,
        /// Length of the first collection.
        left_len: usize,
        /// Name of the second collection.
        right: &'static str,
        /// Length of the second collection.
        right_len: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidProbability(v) => {
                write!(f, "probability {v} is not within [0, 1]")
            }
            Error::NonPositive { what, value } => {
                write!(f, "{what} must be strictly positive, got {value}")
            }
            Error::NotFinite { what } => write!(f, "{what} must be finite"),
            Error::Empty(what) => write!(f, "{what} must not be empty"),
            Error::LengthMismatch {
                left,
                left_len,
                right,
                right_len,
            } => write!(
                f,
                "length mismatch: {left} has {left_len} elements but {right} has {right_len}"
            ),
        }
    }
}

impl std::error::Error for Error {}
