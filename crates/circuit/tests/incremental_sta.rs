//! Incremental-vs-full STA equivalence: randomized edit schedules on the
//! standard design generators, asserting exact [`StaReport`] equality
//! between the incremental engine and a from-scratch pass after every
//! single edit.
//!
//! Determinism is the repo's contract: the engine's cone re-timing must be
//! byte-identical to a full recompute, not merely close. Every assertion
//! here is `assert_eq!` on the full report (all per-instance vectors, the
//! critical path, and `max_arrival_ps`), never an epsilon comparison.

use lori_circuit::cell::{CellId, Library};
use lori_circuit::characterize::{characterize_library, Corner};
use lori_circuit::error::CircuitError;
use lori_circuit::netlist::{
    array_multiplier, processor_datapath, random_logic, ripple_carry_adder, Driver, InstId, NetId,
    Netlist,
};
use lori_circuit::spicelike::GoldenSimulator;
use lori_circuit::sta::{run_sta, InstanceTiming, StaConfig, StaEngine, StaReport};
use lori_circuit::tech::TechParams;
use lori_core::Rng;
use std::sync::OnceLock;

fn lib() -> &'static Library {
    static LIB: OnceLock<Library> = OnceLock::new();
    LIB.get_or_init(|| {
        let sim = GoldenSimulator::new(TechParams::default()).unwrap();
        characterize_library(&sim, &Corner::default()).unwrap()
    })
}

/// The four standard generators at test-friendly sizes.
fn designs() -> Vec<(&'static str, Netlist)> {
    vec![
        ("ripple_carry_adder", ripple_carry_adder(lib(), 8).unwrap()),
        ("array_multiplier", array_multiplier(lib(), 5).unwrap()),
        ("random_logic", random_logic(lib(), 12, 300, 3).unwrap()),
        (
            "processor_datapath",
            processor_datapath(lib(), 6, 5).unwrap(),
        ),
    ]
}

/// From-scratch reference: a fresh full pass over the same netlist with
/// the same sparse override set the engine currently holds.
fn scratch_report(
    netlist: &Netlist,
    config: &StaConfig,
    overrides: &[Option<InstanceTiming>],
) -> StaReport {
    StaEngine::with_sparse_overrides(netlist, lib(), config, overrides)
        .unwrap()
        .into_report()
}

/// Instances driving a primary output net.
fn po_drivers(netlist: &Netlist) -> Vec<InstId> {
    let mut out = Vec::new();
    for &net in netlist.primary_outputs() {
        if let Some(Driver::Instance(inst)) = netlist.driver(net) {
            if !out.contains(&inst) {
                out.push(inst);
            }
        }
    }
    out
}

/// A library cell with the same input arity as `inst`'s current cell but a
/// different id, if one exists.
fn swap_candidate(netlist: &Netlist, inst: InstId, rng: &mut Rng) -> Option<CellId> {
    let current = netlist.instances()[inst.0].cell;
    let arity = netlist.instances()[inst.0].inputs.len();
    let candidates: Vec<CellId> = (0..lib().len())
        .map(CellId)
        .filter(|&c| c != current && lib().cell(c).kind.input_count() == arity)
        .collect();
    rng.choose(&candidates).copied()
}

/// Drives a randomized edit schedule against one design, checking exact
/// report equality against a from-scratch pass after every single edit.
/// Covers: single timing edits, overlapping cones (an instance and one of
/// its fanout sinks edited back to back), critical-path flips (huge and
/// tiny delays on and off the current critical path), edits on instances
/// feeding primary outputs, cell swaps, and a full revert-to-original.
fn run_schedule(name: &str, mut netlist: Netlist, seed: u64) {
    let config = StaConfig::default();
    let n = netlist.instance_count();
    let original_cells: Vec<CellId> = netlist.instances().iter().map(|i| i.cell).collect();
    let pristine = run_sta(&netlist, lib(), &config).unwrap();

    let mut engine = StaEngine::new(&netlist, lib(), &config).unwrap();
    assert_eq!(engine.report(), pristine, "{name}: initial full pass");

    // Shadow override set mirroring the engine's, for the reference pass.
    let mut shadow: Vec<Option<InstanceTiming>> = vec![None; n];
    let mut rng = Rng::from_seed(seed);
    let po = po_drivers(&netlist);

    for step in 0..30 {
        let inst = InstId(rng.below(n as u64) as usize);
        match rng.below(6) {
            // Plain single edit somewhere in the design.
            0 => {
                let t = InstanceTiming {
                    delay_ps: rng.uniform_in(1.0, 400.0),
                    out_slew_ps: rng.uniform_in(1.0, 120.0),
                };
                engine.set_timing(&netlist, lib(), inst, t).unwrap();
                shadow[inst.0] = Some(t);
            }
            // Revert a single instance to library timing.
            1 => {
                engine.clear_timing(&netlist, lib(), inst).unwrap();
                shadow[inst.0] = None;
            }
            // Critical-path flip: park a huge delay off-path or shrink the
            // current critical path's head to (almost) nothing.
            2 => {
                let (target, t) = if rng.bernoulli(0.5) {
                    (
                        inst,
                        InstanceTiming {
                            delay_ps: 5_000.0,
                            out_slew_ps: 40.0,
                        },
                    )
                } else {
                    let head = *engine.critical_path().first().unwrap_or(&inst);
                    (
                        head,
                        InstanceTiming {
                            delay_ps: 0.01,
                            out_slew_ps: 0.01,
                        },
                    )
                };
                engine.set_timing(&netlist, lib(), target, t).unwrap();
                shadow[target.0] = Some(t);
            }
            // Edit an instance that feeds a primary output directly.
            3 => {
                let target = *rng.choose(&po).unwrap_or(&inst);
                let t = InstanceTiming {
                    delay_ps: rng.uniform_in(1.0, 300.0),
                    out_slew_ps: rng.uniform_in(1.0, 80.0),
                };
                engine.set_timing(&netlist, lib(), target, t).unwrap();
                shadow[target.0] = Some(t);
            }
            // Overlapping cones: edit an instance and then one of its
            // fanout sinks, so the second cone is inside the first.
            4 => {
                let t = InstanceTiming {
                    delay_ps: rng.uniform_in(10.0, 200.0),
                    out_slew_ps: rng.uniform_in(5.0, 60.0),
                };
                engine.set_timing(&netlist, lib(), inst, t).unwrap();
                shadow[inst.0] = Some(t);
                let out = netlist.instances()[inst.0].output;
                if let Some(&sink) = rng.choose(&netlist.fanout(out)) {
                    let t2 = InstanceTiming {
                        delay_ps: rng.uniform_in(10.0, 200.0),
                        out_slew_ps: rng.uniform_in(5.0, 60.0),
                    };
                    engine.set_timing(&netlist, lib(), sink, t2).unwrap();
                    shadow[sink.0] = Some(t2);
                }
            }
            // Cell swap/resize through the netlist edit API: moves the
            // loads of the instance's input nets, not just its own delay.
            _ => {
                if let Some(cell) = swap_candidate(&netlist, inst, &mut rng) {
                    engine.swap_cell(&mut netlist, lib(), inst, cell).unwrap();
                }
            }
        }
        assert_eq!(
            engine.report(),
            scratch_report(&netlist, &config, &shadow),
            "{name}: step {step} diverged from a from-scratch pass"
        );
    }

    // Revert-to-original: undo every override and cell swap; the engine
    // must land exactly on the pristine pre-edit report.
    for i in 0..n {
        if netlist.instances()[i].cell != original_cells[i] {
            engine
                .swap_cell(&mut netlist, lib(), InstId(i), original_cells[i])
                .unwrap();
        }
        if shadow[i].is_some() {
            engine.clear_timing(&netlist, lib(), InstId(i)).unwrap();
            shadow[i] = None;
        }
    }
    assert_eq!(
        engine.report(),
        pristine,
        "{name}: revert-to-original did not restore the pristine report"
    );
}

#[test]
fn randomized_schedule_ripple_carry_adder() {
    let (name, nl) = designs().swap_remove(0);
    run_schedule(name, nl, 101);
}

#[test]
fn randomized_schedule_array_multiplier() {
    let (name, nl) = designs().swap_remove(1);
    run_schedule(name, nl, 202);
}

#[test]
fn randomized_schedule_random_logic() {
    let (name, nl) = designs().swap_remove(2);
    run_schedule(name, nl, 303);
}

#[test]
fn randomized_schedule_processor_datapath() {
    let (name, nl) = designs().swap_remove(3);
    run_schedule(name, nl, 404);
}

/// The CSR-backed `fanout` must agree with a naive scan over all
/// instances, for every net.
#[test]
fn fanout_matches_naive_scan() {
    for (name, netlist) in designs() {
        for net in 0..netlist.net_count() {
            let net = NetId(net);
            let mut naive = Vec::new();
            for (i, inst) in netlist.instances().iter().enumerate() {
                if inst.inputs.contains(&net) {
                    naive.push(InstId(i));
                }
            }
            assert_eq!(netlist.fanout(net), naive, "{name}: net {}", net.0);
        }
    }
}

/// Activity edits feed power/SHE/aging but never STA: refreshing after one
/// must not re-time anything or change the report.
#[test]
fn activity_edit_is_a_timing_noop() {
    let config = StaConfig::default();
    let mut netlist = ripple_carry_adder(lib(), 6).unwrap();
    let mut engine = StaEngine::new(&netlist, lib(), &config).unwrap();
    let before = engine.report();
    let evals_before = engine.instance_evals();
    netlist.set_activity(InstId(3), 0.9).unwrap();
    netlist.set_activity(InstId(7), 0.05).unwrap();
    engine.refresh(&mut netlist, lib()).unwrap();
    assert_eq!(engine.report(), before);
    assert_eq!(
        engine.instance_evals(),
        evals_before,
        "activity refresh re-timed instances"
    );
    assert!(netlist.dirty().is_empty(), "dirty-set not drained");
}

/// Structural edits (new gates, inputs, outputs) invalidate the engine:
/// every subsequent call must fail with `StaleEngine` until a rebuild.
#[test]
fn structural_edit_stales_engine() {
    let config = StaConfig::default();
    let mut netlist = ripple_carry_adder(lib(), 4).unwrap();
    let mut engine = StaEngine::new(&netlist, lib(), &config).unwrap();
    let _ = netlist.add_input();
    let err = engine
        .set_timing(
            &netlist,
            lib(),
            InstId(0),
            InstanceTiming {
                delay_ps: 10.0,
                out_slew_ps: 5.0,
            },
        )
        .unwrap_err();
    assert!(matches!(err, CircuitError::StaleEngine(_)), "{err}");
    // A rebuild over the edited netlist works again.
    let rebuilt = StaEngine::new(&netlist, lib(), &config).unwrap();
    assert!(rebuilt.max_arrival_ps() > 0.0);
}

/// A non-finite override poisons the engine mid-retime; later calls fail
/// with `StaleEngine` instead of serving half-updated state.
#[test]
fn non_finite_override_poisons_engine() {
    let config = StaConfig::default();
    let netlist = ripple_carry_adder(lib(), 4).unwrap();
    let mut engine = StaEngine::new(&netlist, lib(), &config).unwrap();
    let err = engine
        .set_timing(
            &netlist,
            lib(),
            InstId(0),
            InstanceTiming {
                delay_ps: f64::NAN,
                out_slew_ps: 5.0,
            },
        )
        .unwrap_err();
    assert!(matches!(err, CircuitError::NonFinite { .. }), "{err}");
    let err = engine.clear_timing(&netlist, lib(), InstId(0)).unwrap_err();
    assert!(matches!(err, CircuitError::StaleEngine(_)), "{err}");
}

/// `set_all_timings` from a fresh engine equals a dense-override full
/// pass, and flipping between two override sets matches from-scratch
/// passes both ways.
#[test]
fn set_all_timings_matches_dense_full_pass() {
    let config = StaConfig::default();
    let netlist = random_logic(lib(), 10, 200, 9).unwrap();
    let n = netlist.instance_count();
    let mut rng = Rng::from_seed(77);
    let mk = |rng: &mut Rng| -> Vec<InstanceTiming> {
        (0..n)
            .map(|_| InstanceTiming {
                delay_ps: rng.uniform_in(1.0, 250.0),
                out_slew_ps: rng.uniform_in(1.0, 90.0),
            })
            .collect()
    };
    let set_a = mk(&mut rng);
    let set_b = mk(&mut rng);

    let mut engine = StaEngine::new(&netlist, lib(), &config).unwrap();
    engine.set_all_timings(&netlist, lib(), &set_a).unwrap();
    assert_eq!(
        engine.report(),
        StaEngine::with_overrides(&netlist, lib(), &config, &set_a)
            .unwrap()
            .into_report()
    );
    engine.set_all_timings(&netlist, lib(), &set_b).unwrap();
    assert_eq!(
        engine.report(),
        StaEngine::with_overrides(&netlist, lib(), &config, &set_b)
            .unwrap()
            .into_report()
    );
    // And back: no hysteresis.
    engine.set_all_timings(&netlist, lib(), &set_a).unwrap();
    assert_eq!(
        engine.report(),
        StaEngine::with_overrides(&netlist, lib(), &config, &set_a)
            .unwrap()
            .into_report()
    );
}
