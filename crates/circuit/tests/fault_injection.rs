//! Fault-injection tests for the circuit layer: poisoned LUT reads must
//! surface as typed errors from STA, per-cell characterization panics must
//! be index-deterministic, and corrupted ML training targets must refuse
//! to fit. Own process: fault plans are process-global.

use lori_circuit::characterize::{characterize_library, characterize_library_par, Corner};
use lori_circuit::mlchar::{MlCharConfig, MlCharacterizer};
use lori_circuit::netlist::ripple_carry_adder;
use lori_circuit::spicelike::GoldenSimulator;
use lori_circuit::sta::{run_sta, StaConfig};
use lori_circuit::tech::TechParams;
use lori_circuit::CircuitError;
use lori_par::Parallelism;

fn sim() -> GoldenSimulator {
    GoldenSimulator::new(TechParams::default()).unwrap()
}

/// A directive that can never fire (cell index far past the 60-cell
/// catalog): computations that must run clean still hold the activation
/// lock so concurrent tests in this binary cannot poison them.
fn inert_guard() -> lori_fault::PlanGuard {
    lori_fault::activate(&lori_fault::FaultPlan::parse("panic@circuit.characterize:9999").unwrap())
}

#[test]
fn poisoned_lut_read_becomes_a_typed_sta_error() {
    let s = sim();
    let lib = {
        let _guard = inert_guard();
        characterize_library(&s, &Corner::default()).unwrap()
    };
    let nl = ripple_carry_adder(&lib, 4).unwrap();
    let plan = lori_fault::FaultPlan::parse("nan@circuit.lut").unwrap();
    let _guard = lori_fault::activate(&plan);
    let err = run_sta(&nl, &lib, &StaConfig::default()).expect_err("NaN must not pass STA");
    assert!(
        matches!(
            err,
            CircuitError::NonFinite {
                site: "circuit.lut",
                ..
            }
        ),
        "got {err}"
    );
}

#[test]
fn characterization_panic_hits_the_same_cell_at_any_worker_count() {
    let s = sim();
    let plan = lori_fault::FaultPlan::parse("panic@circuit.characterize:7").unwrap();
    let _guard = lori_fault::activate(&plan);
    for workers in [1, 4] {
        let caught = std::panic::catch_unwind(|| {
            characterize_library_par(&s, &Corner::default(), Parallelism::new(workers))
        });
        let payload = caught.expect_err("characterization must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("circuit.characterize[7]"),
            "workers={workers}, payload: {msg}"
        );
    }
}

#[test]
fn poisoned_training_targets_refuse_to_fit() {
    let s = sim();
    let lib = {
        let _guard = inert_guard();
        characterize_library(&s, &Corner::default()).unwrap()
    };
    let cells = vec![lib.find("INV_X1").unwrap()];
    let config = MlCharConfig {
        samples_per_cell: 32,
        ..MlCharConfig::default()
    };
    let clean = {
        let _guard = inert_guard();
        MlCharacterizer::train(&s, &lib, &cells, &config)
    };
    assert!(clean.is_ok());
    let plan = lori_fault::FaultPlan::parse("nan@circuit.mlchar:rate=0.1,seed=3").unwrap();
    let _guard = lori_fault::activate(&plan);
    let err = MlCharacterizer::train(&s, &lib, &cells, &config)
        .expect_err("poisoned targets must not train");
    assert!(
        matches!(
            err,
            CircuitError::NonFinite {
                site: "circuit.mlchar",
                ..
            }
        ),
        "got {err}"
    );
}
