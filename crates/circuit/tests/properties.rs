//! Property-based tests for the circuit substrate.

use lori_circuit::aging::{AgingModel, StressProfile};
use lori_circuit::lut::Lut2d;
use lori_circuit::she::SheModel;
use lori_circuit::tech::TechParams;
use lori_core::units::{Celsius, Seconds, Volts};
use proptest::prelude::*;

proptest! {
    /// LUT interpolation never leaves the convex hull of table values.
    #[test]
    fn lut_within_hull(q_slew in -50.0f64..500.0, q_load in -5.0f64..50.0,
                       base in 1.0f64..100.0, step in 0.1f64..20.0) {
        let lut = Lut2d::new(
            vec![10.0, 20.0, 40.0],
            vec![1.0, 2.0, 4.0],
            vec![
                vec![base, base + step, base + 2.0 * step],
                vec![base + step, base + 2.0 * step, base + 3.0 * step],
                vec![base + 2.0 * step, base + 3.0 * step, base + 4.0 * step],
            ],
        ).unwrap();
        let v = lut.lookup(q_slew, q_load);
        prop_assert!(v >= base - 1e-9 && v <= base + 4.0 * step + 1e-9);
    }

    /// LUT lookup is monotone when the table is monotone in both axes.
    #[test]
    fn lut_monotone(q1 in 0.0f64..200.0, dq in 0.0f64..100.0) {
        let lut = Lut2d::new(
            vec![10.0, 20.0, 40.0, 80.0],
            vec![1.0, 4.0],
            vec![
                vec![1.0, 2.0],
                vec![2.0, 4.0],
                vec![4.0, 8.0],
                vec![8.0, 16.0],
            ],
        ).unwrap();
        prop_assert!(lut.lookup(q1 + dq, 2.0) + 1e-12 >= lut.lookup(q1, 2.0));
        prop_assert!(lut.lookup(20.0, q1 + dq) + 1e-12 >= lut.lookup(20.0, q1));
    }

    /// Aging ΔVth is non-negative and monotone in time for any valid stress.
    #[test]
    fn aging_monotone(duty in 0.0f64..=1.0, act in 0.0f64..=1.0,
                      temp in -20.0f64..150.0, years in 0.01f64..30.0) {
        let m = AgingModel::default();
        let s = StressProfile::new(duty, act, Celsius(temp)).unwrap();
        let d1 = m.delta_vth(&s, Seconds::from_years(years)).value();
        let d2 = m.delta_vth(&s, Seconds::from_years(years * 2.0)).value();
        prop_assert!(d1 >= 0.0);
        prop_assert!(d2 + 1e-15 >= d1);
    }

    /// SHE ΔT is non-negative and monotone in load.
    #[test]
    fn she_monotone_in_load(width in 0.5f64..8.0, slew in 1.0f64..200.0,
                            load in 0.0f64..30.0, act in 0.0f64..=1.0) {
        let m = SheModel::default();
        let a = m.delta_t(width, slew, load, act).value();
        let b = m.delta_t(width, slew, load + 1.0, act).value();
        prop_assert!(a >= 0.0);
        prop_assert!(b + 1e-12 >= a);
    }

    /// First-order gate delay is monotone in ΔVth and in load.
    #[test]
    fn tech_delay_monotone(load in 0.5f64..30.0, dvth in 0.0f64..0.2, extra in 0.001f64..0.1) {
        let p = TechParams::default();
        let t = Celsius(65.0);
        let base = p.rc_delay_ps(1.0, load, t, Volts(dvth));
        let aged = p.rc_delay_ps(1.0, load, t, Volts(dvth + extra));
        let loaded = p.rc_delay_ps(1.0, load + 1.0, t, Volts(dvth));
        prop_assert!(aged >= base);
        prop_assert!(loaded >= base);
    }

    /// Drive current is never negative and vanishes exactly when the device
    /// can no longer turn on.
    #[test]
    fn drive_current_domain(dvth in 0.0f64..1.0, temp in -20.0f64..150.0) {
        let p = TechParams::default();
        let i = p.drive_current_ua(1.0, Celsius(temp), Volts(dvth));
        prop_assert!(i >= 0.0);
        let vth = p.vth_at(Celsius(temp), Volts(dvth)).value();
        if vth >= p.vdd.value() {
            prop_assert_eq!(i, 0.0);
        } else {
            prop_assert!(i > 0.0);
        }
    }
}
