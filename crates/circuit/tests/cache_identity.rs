//! End-to-end cache determinism: characterization and ML training must be
//! bit-identical with the cache off, cold, or warm, over the memory or the
//! disk tier, at any worker count. The cache may change wall-clock time
//! only — never bytes.

use lori_cache::{Cache, CacheMode};
use lori_circuit::cell::{CellId, CellKind};
use lori_circuit::characterize::{characterize_library_par, Corner};
use lori_circuit::mlchar::{MlCharConfig, MlCharacterizer};
use lori_circuit::spicelike::{ArcTiming, GoldenSimulator, OperatingPoint};
use lori_circuit::tech::TechParams;
use lori_par::Parallelism;
use std::path::PathBuf;
use std::sync::Arc;

fn sim_with(mode: CacheMode) -> GoldenSimulator {
    GoldenSimulator::with_cache(TechParams::default(), Arc::new(Cache::new(mode))).unwrap()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("lori-cache-identity-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A small-but-real training config so the test stays fast.
fn small_ml_config() -> MlCharConfig {
    MlCharConfig {
        samples_per_cell: 24,
        stages: 4,
        max_depth: 2,
        ..MlCharConfig::default()
    }
}

#[test]
fn library_identical_off_cold_warm_any_threads() {
    let corner = Corner::default();
    let off = sim_with(CacheMode::Off);
    let cached = sim_with(CacheMode::Mem);

    let baseline = characterize_library_par(&off, &corner, Parallelism::serial()).unwrap();
    let cold = characterize_library_par(&cached, &corner, Parallelism::serial()).unwrap();
    assert_eq!(baseline, cold, "cold mem cache changed results");
    assert!(cached.cache().stats().misses > 0);

    let warm = characterize_library_par(&cached, &corner, Parallelism::serial()).unwrap();
    assert_eq!(baseline, warm, "warm mem cache changed results");
    assert!(cached.cache().stats().hits > 0);

    let warm_par = characterize_library_par(&cached, &corner, Parallelism::new(4)).unwrap();
    assert_eq!(
        baseline, warm_par,
        "warm cache at 4 workers changed results"
    );

    // A fresh cache populated entirely by a 4-worker run must also agree.
    let cached_par = sim_with(CacheMode::Mem);
    let cold_par = characterize_library_par(&cached_par, &corner, Parallelism::new(4)).unwrap();
    assert_eq!(
        baseline, cold_par,
        "cold cache at 4 workers changed results"
    );
}

#[test]
fn disk_tier_round_trips_across_simulators() {
    let dir = tmp_dir("disk");
    let corner = Corner::default();
    let baseline =
        characterize_library_par(&sim_with(CacheMode::Off), &corner, Parallelism::serial())
            .unwrap();

    // Cold: populates the directory.
    let cold_sim = sim_with(CacheMode::Disk(dir.clone()));
    let cold = characterize_library_par(&cold_sim, &corner, Parallelism::serial()).unwrap();
    assert_eq!(baseline, cold);
    assert!(
        cold_sim.cache().stats().bytes > 0,
        "disk tier wrote nothing"
    );

    // Warm, new simulator + new cache over the same directory: models a
    // process restart. Every golden call must be served from disk.
    let warm_sim = sim_with(CacheMode::Disk(dir.clone()));
    let warm = characterize_library_par(&warm_sim, &corner, Parallelism::new(4)).unwrap();
    assert_eq!(baseline, warm, "disk-warm results differ");
    let stats = warm_sim.cache().stats();
    assert_eq!(stats.misses, 0, "warm run missed: {stats:?}");
    assert!(stats.hits > 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_disk_entry_recomputed_not_trusted() {
    let dir = tmp_dir("corrupt");
    let corner = Corner::default();
    let cold_sim = sim_with(CacheMode::Disk(dir.clone()));
    let baseline = characterize_library_par(&cold_sim, &corner, Parallelism::serial()).unwrap();

    // Damage one entry and truncate another.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    assert!(entries.len() >= 2, "expected many disk entries");
    let mut bytes = std::fs::read(&entries[0]).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&entries[0], &bytes).unwrap();
    let bytes = std::fs::read(&entries[1]).unwrap();
    std::fs::write(&entries[1], &bytes[..10]).unwrap();

    let warm_sim = sim_with(CacheMode::Disk(dir.clone()));
    let warm = characterize_library_par(&warm_sim, &corner, Parallelism::serial()).unwrap();
    assert_eq!(baseline, warm, "corrupt entries leaked into results");
    let stats = warm_sim.cache().stats();
    assert_eq!(stats.corrupt, 2, "both damaged entries must be detected");
    assert_eq!(stats.misses, 2, "damaged entries must be recomputed");

    // The recompute healed the files: a third pass is all hits.
    let healed_sim = sim_with(CacheMode::Disk(dir.clone()));
    let healed = characterize_library_par(&healed_sim, &corner, Parallelism::serial()).unwrap();
    assert_eq!(baseline, healed);
    assert_eq!(healed_sim.cache().stats().corrupt, 0);
    assert_eq!(healed_sim.cache().stats().misses, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ml_training_identical_with_and_without_cache() {
    let corner = Corner::default();
    let cfg = small_ml_config();

    let off = sim_with(CacheMode::Off);
    let lib = characterize_library_par(&off, &corner, Parallelism::serial()).unwrap();
    let cells: Vec<CellId> = lib.iter().map(|(id, _)| id).collect();
    let baseline =
        MlCharacterizer::train_with(&off, &lib, &cells, &cfg, Parallelism::serial()).unwrap();

    let cached = sim_with(CacheMode::Mem);
    let lib_c = characterize_library_par(&cached, &corner, Parallelism::serial()).unwrap();
    assert_eq!(lib, lib_c);
    let cold =
        MlCharacterizer::train_with(&cached, &lib_c, &cells, &cfg, Parallelism::serial()).unwrap();
    assert_eq!(baseline, cold, "cold-cache training diverged");
    let warm =
        MlCharacterizer::train_with(&cached, &lib_c, &cells, &cfg, Parallelism::new(4)).unwrap();
    assert_eq!(baseline, warm, "warm-cache 4-worker training diverged");
    assert!(cached.cache().stats().hits > 0);
}

#[test]
fn shared_default_cache_is_transparent() {
    // Simulators from `new` share the process-global cache; their results
    // must equal a private cache-off simulator's bit for bit.
    let s = GoldenSimulator::new(TechParams::default()).unwrap();
    let off = sim_with(CacheMode::Off);
    let op = OperatingPoint {
        slew_ps: 33.0,
        load_ff: 3.3,
        temperature: lori_core::units::Celsius(71.0),
        delta_vth: lori_core::units::Volts(0.02),
    };
    let a: ArcTiming = s.characterize(CellKind::Oai21, 2.0, &op);
    let b = s.characterize(CellKind::Oai21, 2.0, &op);
    let c = off.characterize(CellKind::Oai21, 2.0, &op);
    assert_eq!(a, b);
    assert_eq!(a, c);
}
