//! # lori-circuit
//!
//! Device- and circuit-level reliability substrate for LORI, implementing
//! Sec. II of the paper:
//!
//! - [`tech`] — an alpha-power-law transistor/gate model with temperature
//!   and threshold-voltage dependence;
//! - [`aging`] — NBTI/HCI threshold-voltage degradation (ΔVth) models with
//!   workload (duty-cycle / activity) dependency;
//! - [`she`] — transistor self-heating (SHE): per-instance temperature rise
//!   above chip temperature as a function of drive strength, input slew,
//!   output load, and switching activity;
//! - [`lut`] — NLDM-style 2-D lookup tables with bilinear interpolation;
//! - [`cell`] — standard cells, timing arcs, and libraries (a generated
//!   library of ~59 cells, as in the paper's Fig. 2 RISC-V case study);
//! - [`spicelike`] — a deliberately time-stepped "golden" transient
//!   characterization engine standing in for foundry SPICE;
//! - [`characterize`] — library characterization flows, including the
//!   Fig. 3 trick of writing SHE temperatures *into the delay slots* of the
//!   library so a conventional STA run emits an SDF full of temperatures;
//! - [`netlist`] — gate-level netlists and generators (adders, multipliers,
//!   random logic, a processor-scale datapath);
//! - [`sta`] — static timing analysis with per-instance cell overrides and
//!   SDF export;
//! - [`mlchar`] — ML-based on-the-fly characterization: train fast models on
//!   golden-model samples, then generate thousands of instance-specific
//!   cells in milliseconds (the paper's refs \[9\]–\[12\]);
//! - [`flow`] — the end-to-end SHE flow of Fig. 3 and guardband analysis.

pub mod aging;
pub mod cell;
pub mod characterize;
pub mod error;
pub mod flow;
pub mod io;
pub mod lut;
pub mod mlchar;
pub mod netlist;
pub mod she;
pub mod spicelike;
pub mod sta;
pub mod tech;

pub use error::CircuitError;
