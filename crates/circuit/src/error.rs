//! Error type for `lori-circuit`.

use std::fmt;

/// Errors produced by circuit construction, characterization, and timing
/// analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A referenced cell name does not exist in the library.
    UnknownCell(String),
    /// A referenced net or instance id is out of range.
    DanglingReference {
        /// What kind of entity was referenced.
        what: &'static str,
        /// The offending index.
        index: usize,
    },
    /// The netlist contains a combinational cycle, so no topological order
    /// exists.
    CombinationalCycle,
    /// A characterization grid was empty or not strictly increasing.
    InvalidGrid(&'static str),
    /// A parameter was outside its physical domain.
    InvalidParameter {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A net has no driver (floating input to some instance).
    FloatingNet(usize),
    /// The ML characterization model failed to train.
    Training(String),
    /// A computation produced a non-finite value (possibly an injected
    /// fault) that a layer-boundary guard caught.
    NonFinite {
        /// Guard site that caught the value.
        site: &'static str,
        /// Name of the non-finite quantity.
        what: &'static str,
    },
    /// An incremental STA engine no longer matches the netlist it indexed
    /// (the structure changed, or an earlier edit failed mid-retime and
    /// poisoned its state). Rebuild with `StaEngine::new`.
    StaleEngine(&'static str),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::UnknownCell(name) => write!(f, "unknown cell: {name}"),
            CircuitError::DanglingReference { what, index } => {
                write!(f, "dangling {what} reference: {index}")
            }
            CircuitError::CombinationalCycle => {
                write!(f, "netlist contains a combinational cycle")
            }
            CircuitError::InvalidGrid(what) => write!(f, "invalid characterization grid: {what}"),
            CircuitError::InvalidParameter { what, value } => {
                write!(f, "parameter {what} out of domain: {value}")
            }
            CircuitError::FloatingNet(id) => write!(f, "net {id} has no driver"),
            CircuitError::Training(msg) => write!(f, "ml characterization training failed: {msg}"),
            CircuitError::NonFinite { site, what } => {
                write!(f, "non-finite {what} detected at {site}")
            }
            CircuitError::StaleEngine(why) => {
                write!(f, "stale STA engine ({why}); rebuild with StaEngine::new")
            }
        }
    }
}

impl std::error::Error for CircuitError {}
