//! Standard cells and cell libraries.
//!
//! A [`Library`] holds characterized [`StandardCell`]s: each cell has a
//! logic kind, a drive strength, per-input pin capacitance, and NLDM lookup
//! tables for propagation delay and output slew over (input slew, output
//! load). The built-in catalog spans 12 logic kinds × 5 drive strengths =
//! 60 cells — the same order as the ~59 distinct cells in the paper's
//! Fig. 2 RISC-V case study.

use crate::error::CircuitError;
use crate::lut::Lut2d;
use std::collections::HashMap;
use std::fmt;

/// The logic function family of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// AND-OR-invert (2-1).
    Aoi21,
    /// OR-AND-invert (2-1).
    Oai21,
    /// 2-to-1 multiplexer (data0, data1, select).
    Mux2,
    /// 3-input majority (carry) gate.
    Maj3,
}

impl CellKind {
    /// All kinds, in catalog order.
    pub const ALL: [CellKind; 12] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Aoi21,
        CellKind::Oai21,
        CellKind::Mux2,
        CellKind::Maj3,
    ];

    /// Number of input pins.
    #[must_use]
    pub fn input_count(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf => 1,
            CellKind::Nand2
            | CellKind::Nor2
            | CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2 => 2,
            CellKind::Aoi21 | CellKind::Oai21 | CellKind::Mux2 | CellKind::Maj3 => 3,
        }
    }

    /// Logical effort `g`: how much worse than an inverter the kind is at
    /// driving load, due to transistor stacking (Sutherland-style values).
    #[must_use]
    pub fn logical_effort(self) -> f64 {
        match self {
            CellKind::Inv => 1.0,
            CellKind::Buf => 1.1,
            CellKind::Nand2 => 4.0 / 3.0,
            CellKind::Nor2 => 5.0 / 3.0,
            CellKind::And2 => 1.5,
            CellKind::Or2 => 1.8,
            CellKind::Xor2 | CellKind::Xnor2 => 2.4,
            CellKind::Aoi21 => 2.0,
            CellKind::Oai21 => 2.2,
            CellKind::Mux2 => 2.1,
            CellKind::Maj3 => 2.5,
        }
    }

    /// Parasitic (intrinsic) delay `p` relative to an inverter.
    #[must_use]
    pub fn parasitic(self) -> f64 {
        match self {
            CellKind::Inv => 1.0,
            CellKind::Buf => 2.0,
            CellKind::Nand2 => 2.0,
            CellKind::Nor2 => 2.2,
            CellKind::And2 | CellKind::Or2 => 2.8,
            CellKind::Xor2 | CellKind::Xnor2 => 3.6,
            CellKind::Aoi21 | CellKind::Oai21 => 3.0,
            CellKind::Mux2 => 3.2,
            CellKind::Maj3 => 3.8,
        }
    }

    /// Relative input-pin capacitance per unit drive (stacked gates present
    /// more gate area per input).
    #[must_use]
    pub fn pin_cap_factor(self) -> f64 {
        match self {
            CellKind::Inv | CellKind::Buf => 1.0,
            CellKind::Nand2 | CellKind::And2 => 1.33,
            CellKind::Nor2 | CellKind::Or2 => 1.66,
            CellKind::Xor2 | CellKind::Xnor2 => 2.0,
            CellKind::Aoi21 | CellKind::Oai21 | CellKind::Mux2 => 1.8,
            CellKind::Maj3 => 2.0,
        }
    }

    /// Evaluates the logic function on boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != input_count()`.
    #[must_use]
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.input_count(), "wrong input count");
        match self {
            CellKind::Inv => !inputs[0],
            CellKind::Buf => inputs[0],
            CellKind::Nand2 => !(inputs[0] && inputs[1]),
            CellKind::Nor2 => !(inputs[0] || inputs[1]),
            CellKind::And2 => inputs[0] && inputs[1],
            CellKind::Or2 => inputs[0] || inputs[1],
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Aoi21 => !((inputs[0] && inputs[1]) || inputs[2]),
            CellKind::Oai21 => !((inputs[0] || inputs[1]) && inputs[2]),
            CellKind::Mux2 => {
                if inputs[2] {
                    inputs[1]
                } else {
                    inputs[0]
                }
            }
            CellKind::Maj3 => u8::from(inputs[0]) + u8::from(inputs[1]) + u8::from(inputs[2]) >= 2,
        }
    }

    /// Catalog name prefix (e.g. `NAND2`).
    #[must_use]
    pub fn prefix(self) -> &'static str {
        match self {
            CellKind::Inv => "INV",
            CellKind::Buf => "BUF",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Aoi21 => "AOI21",
            CellKind::Oai21 => "OAI21",
            CellKind::Mux2 => "MUX2",
            CellKind::Maj3 => "MAJ3",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.prefix())
    }
}

/// Standard drive strengths in the built-in catalog (unit-width multiples).
pub const DRIVE_STRENGTHS: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 8.0];

/// Formats a catalog cell name, e.g. `NAND2_X2`.
#[must_use]
pub fn cell_name(kind: CellKind, drive: f64) -> String {
    // Drives are small integers in the catalog; format without decimals.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let d = drive.round() as u64;
    format!("{}_X{}", kind.prefix(), d)
}

/// A characterized standard cell.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardCell {
    /// Catalog name, e.g. `NAND2_X2`.
    pub name: String,
    /// Logic kind.
    pub kind: CellKind,
    /// Drive strength in unit widths.
    pub drive: f64,
    /// Input-pin capacitance in fF (same for every input pin).
    pub pin_cap_ff: f64,
    /// Propagation delay LUT over (input slew ps, output load fF) → ps.
    pub delay: Lut2d,
    /// Output slew LUT over (input slew ps, output load fF) → ps.
    pub out_slew: Lut2d,
}

impl StandardCell {
    /// Looks up delay and output slew at an operating point.
    #[must_use]
    pub fn timing(&self, slew_ps: f64, load_ff: f64) -> (f64, f64) {
        (
            self.delay.lookup(slew_ps, load_ff),
            self.out_slew.lookup(slew_ps, load_ff),
        )
    }
}

/// Index of a cell within a [`Library`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub usize);

/// A collection of characterized cells with name lookup.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Library {
    cells: Vec<StandardCell>,
    by_name: HashMap<String, CellId>,
}

impl Library {
    /// An empty library.
    #[must_use]
    pub fn new() -> Self {
        Library::default()
    }

    /// Adds a cell, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownCell`] — reused as a duplicate-name
    /// signal — if a cell with the same name already exists.
    pub fn add(&mut self, cell: StandardCell) -> Result<CellId, CircuitError> {
        if self.by_name.contains_key(&cell.name) {
            return Err(CircuitError::UnknownCell(format!(
                "duplicate cell name {}",
                cell.name
            )));
        }
        let id = CellId(self.cells.len());
        self.by_name.insert(cell.name.clone(), id);
        self.cells.push(cell);
        Ok(id)
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cell for an id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn cell(&self, id: CellId) -> &StandardCell {
        &self.cells[id.0]
    }

    /// Looks up a cell by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<CellId> {
        self.by_name.get(name).copied()
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &StandardCell)> {
        self.cells.iter().enumerate().map(|(i, c)| (CellId(i), c))
    }

    /// The id of a cell of `kind` with drive closest to `drive`.
    ///
    /// Returns `None` on an empty library or if the kind is absent.
    #[must_use]
    pub fn closest_drive(&self, kind: CellKind, drive: f64) -> Option<CellId> {
        self.iter()
            .filter(|(_, c)| c.kind == kind)
            .min_by(|(_, a), (_, b)| {
                (a.drive - drive)
                    .abs()
                    .partial_cmp(&(b.drive - drive).abs())
                    .expect("finite drives")
            })
            .map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_lut(v: f64) -> Lut2d {
        Lut2d::new(
            vec![10.0, 100.0],
            vec![1.0, 10.0],
            vec![vec![v, v], vec![v, v]],
        )
        .unwrap()
    }

    fn cell(name: &str, kind: CellKind, drive: f64) -> StandardCell {
        StandardCell {
            name: name.to_owned(),
            kind,
            drive,
            pin_cap_ff: 1.0,
            delay: flat_lut(5.0),
            out_slew: flat_lut(20.0),
        }
    }

    #[test]
    fn kind_catalog_is_consistent() {
        for kind in CellKind::ALL {
            assert!(kind.input_count() >= 1 && kind.input_count() <= 3);
            assert!(kind.logical_effort() >= 1.0);
            assert!(kind.parasitic() >= 1.0);
            assert!(kind.pin_cap_factor() >= 1.0);
            assert!(!kind.prefix().is_empty());
        }
    }

    #[test]
    fn logic_truth_tables() {
        use CellKind::*;
        assert!(Inv.eval(&[false]));
        assert!(!Inv.eval(&[true]));
        assert!(Nand2.eval(&[true, false]));
        assert!(!Nand2.eval(&[true, true]));
        assert!(Nor2.eval(&[false, false]));
        assert!(!Nor2.eval(&[true, false]));
        assert!(Xor2.eval(&[true, false]));
        assert!(!Xor2.eval(&[true, true]));
        assert!(Xnor2.eval(&[true, true]));
        assert!(!Aoi21.eval(&[true, true, false]));
        assert!(Aoi21.eval(&[true, false, false]));
        assert!(!Oai21.eval(&[true, false, true]));
        assert!(Oai21.eval(&[false, false, true]));
        assert!(Mux2.eval(&[false, true, true]));
        assert!(!Mux2.eval(&[false, true, false]));
        assert!(Maj3.eval(&[true, true, false]));
        assert!(!Maj3.eval(&[true, false, false]));
    }

    #[test]
    #[should_panic(expected = "wrong input count")]
    fn eval_wrong_arity_panics() {
        let _ = CellKind::Nand2.eval(&[true]);
    }

    #[test]
    fn names() {
        assert_eq!(cell_name(CellKind::Nand2, 2.0), "NAND2_X2");
        assert_eq!(cell_name(CellKind::Inv, 8.0), "INV_X8");
    }

    #[test]
    fn library_add_find() {
        let mut lib = Library::new();
        let id = lib.add(cell("INV_X1", CellKind::Inv, 1.0)).unwrap();
        assert_eq!(lib.find("INV_X1"), Some(id));
        assert_eq!(lib.find("NAND2_X1"), None);
        assert_eq!(lib.len(), 1);
        assert!(!lib.is_empty());
        assert_eq!(lib.cell(id).kind, CellKind::Inv);
    }

    #[test]
    fn library_rejects_duplicates() {
        let mut lib = Library::new();
        lib.add(cell("INV_X1", CellKind::Inv, 1.0)).unwrap();
        assert!(lib.add(cell("INV_X1", CellKind::Inv, 1.0)).is_err());
    }

    #[test]
    fn closest_drive_picks_nearest() {
        let mut lib = Library::new();
        lib.add(cell("INV_X1", CellKind::Inv, 1.0)).unwrap();
        let x4 = lib.add(cell("INV_X4", CellKind::Inv, 4.0)).unwrap();
        let x8 = lib.add(cell("INV_X8", CellKind::Inv, 8.0)).unwrap();
        assert_eq!(lib.closest_drive(CellKind::Inv, 5.0), Some(x4));
        assert_eq!(lib.closest_drive(CellKind::Inv, 100.0), Some(x8));
        assert_eq!(lib.closest_drive(CellKind::Nand2, 1.0), None);
    }

    #[test]
    fn timing_lookup() {
        let c = cell("BUF_X1", CellKind::Buf, 1.0);
        let (d, s) = c.timing(50.0, 5.0);
        assert_eq!(d, 5.0);
        assert_eq!(s, 20.0);
    }
}
