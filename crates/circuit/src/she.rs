//! Transistor self-heating (SHE).
//!
//! In confined FinFET/nanosheet geometries, switching power dissipated in
//! the channel cannot escape, so each device runs hotter than the chip around
//! it. Fig. 2 of the paper shows the consequence at circuit level: even with
//! only ~59 distinct standard cells, per-instance SHE temperatures spread
//! widely because the *context* — input slew, connected load, and switching
//! activity — differs per instance.
//!
//! The model here follows that structure: SHE ΔT is the product of the
//! energy dissipated per transition (grows with load and with slew-induced
//! short-circuit current) and a thermal resistance that *shrinks* with
//! device width (wider devices spread heat better), scaled by activity.

use crate::error::CircuitError;
use lori_core::units::Kelvin;

/// Self-heating model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SheModel {
    /// Thermal-resistance scale of a unit-width device, in K per fF of
    /// switched load at unit activity.
    pub rth_per_ff: f64,
    /// Short-circuit contribution weight: extra heating per ps of input
    /// slew (slow edges keep both networks conducting longer).
    pub short_circuit_per_ps: f64,
    /// Width exponent: `R_th ∝ width^(−γ)`.
    pub width_exponent: f64,
    /// Activity assumed when none is supplied (transitions per cycle).
    pub default_activity: f64,
}

impl Default for SheModel {
    /// Calibrated so a processor-scale netlist shows per-instance SHE in the
    /// ~1–30 K band, matching the magnitude regime of the paper's Fig. 2.
    fn default() -> Self {
        SheModel {
            rth_per_ff: 1.1,
            short_circuit_per_ps: 0.06,
            width_exponent: 0.6,
            default_activity: 0.15,
        }
    }
}

impl SheModel {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] for non-positive scales or
    /// an activity outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), CircuitError> {
        if self.rth_per_ff <= 0.0 {
            return Err(CircuitError::InvalidParameter {
                what: "rth_per_ff",
                value: self.rth_per_ff,
            });
        }
        if self.short_circuit_per_ps < 0.0 {
            return Err(CircuitError::InvalidParameter {
                what: "short_circuit_per_ps",
                value: self.short_circuit_per_ps,
            });
        }
        if !(self.default_activity > 0.0 && self.default_activity <= 1.0) {
            return Err(CircuitError::InvalidParameter {
                what: "default_activity",
                value: self.default_activity,
            });
        }
        Ok(())
    }

    /// SHE temperature rise above chip temperature for a device of `width`
    /// unit widths, driven with `slew_ps` input slew, driving `load_ff`,
    /// toggling with `activity` transitions per cycle.
    ///
    /// Activity outside `[0, 1]` is clamped; negative slew/load clamp to 0.
    #[must_use]
    pub fn delta_t(&self, width: f64, slew_ps: f64, load_ff: f64, activity: f64) -> Kelvin {
        let load = load_ff.max(0.0);
        let slew = slew_ps.max(0.0);
        let act = activity.clamp(0.0, 1.0);
        let rth = self.rth_per_ff / width.max(0.25).powf(self.width_exponent);
        let heating = (load + self.short_circuit_per_ps * slew * width.max(0.25)) * act;
        Kelvin(rth * heating)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        SheModel::default().validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_params() {
        let m = SheModel {
            rth_per_ff: 0.0,
            ..SheModel::default()
        };
        assert!(m.validate().is_err());
        let m = SheModel {
            short_circuit_per_ps: -0.1,
            ..SheModel::default()
        };
        assert!(m.validate().is_err());
        let m = SheModel {
            default_activity: 0.0,
            ..SheModel::default()
        };
        assert!(m.validate().is_err());
    }

    #[test]
    fn more_load_means_hotter() {
        let m = SheModel::default();
        let small = m.delta_t(1.0, 20.0, 2.0, 0.2).value();
        let large = m.delta_t(1.0, 20.0, 10.0, 0.2).value();
        assert!(large > small);
    }

    #[test]
    fn slower_edges_mean_hotter() {
        let m = SheModel::default();
        let fast = m.delta_t(1.0, 5.0, 4.0, 0.2).value();
        let slow = m.delta_t(1.0, 80.0, 4.0, 0.2).value();
        assert!(slow > fast);
    }

    #[test]
    fn wider_devices_spread_heat() {
        // Same switched load: the wider device runs cooler per unit load,
        // though its short-circuit term grows; test with load-dominated case.
        let m = SheModel::default();
        let narrow = m.delta_t(1.0, 5.0, 10.0, 0.2).value();
        let wide = m.delta_t(4.0, 5.0, 10.0, 0.2).value();
        assert!(wide < narrow, "wide {wide} narrow {narrow}");
    }

    #[test]
    fn idle_devices_do_not_heat() {
        let m = SheModel::default();
        assert_eq!(m.delta_t(1.0, 20.0, 5.0, 0.0).value(), 0.0);
    }

    #[test]
    fn magnitudes_in_fig2_regime() {
        // Typical contexts land in ~0.5–40 K above chip temperature.
        let m = SheModel::default();
        for (slew, load, act) in [(5.0, 1.0, 0.05), (30.0, 8.0, 0.2), (120.0, 25.0, 0.5)] {
            let dt = m.delta_t(1.0, slew, load, act).value();
            assert!(dt > 0.0 && dt < 60.0, "ΔT {dt}");
        }
    }

    #[test]
    fn pathological_inputs_clamp() {
        let m = SheModel::default();
        assert_eq!(m.delta_t(1.0, -5.0, -3.0, 0.5).value(), 0.0);
        let hot = m.delta_t(1.0, 10.0, 5.0, 99.0).value();
        let unit = m.delta_t(1.0, 10.0, 5.0, 1.0).value();
        assert!((hot - unit).abs() < 1e-12);
    }
}
