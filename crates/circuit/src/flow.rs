//! The end-to-end SHE flow of the paper's Fig. 3.
//!
//! Steps:
//!
//! 1. Characterize a conventional timing library at the nominal corner
//!    (blue path, upper-left of Fig. 3).
//! 2. Build the SHE-as-delay library and run conventional STA with it —
//!    the resulting "SDF" contains each instance's self-heating temperature
//!    (upper path of Fig. 3, reproducing Fig. 2's per-instance SHE map).
//! 3. Derive each instance's full context (slew, load, ΔT, aging ΔVth from
//!    its activity/duty profile) and use the ML characterizer to generate
//!    the circuit-specific instance library (lower path).
//! 4. Run STA with the instance-specific timings → the SHE/aging-accurate
//!    circuit delay, and compare against (a) the nominal corner and (b) a
//!    pessimistic worst-case corner where every instance is assumed to run
//!    at the hottest observed SHE and maximal aging.
//!
//! The flow's claim, which experiment E2 checks: the per-instance guardband
//! sits *between* nominal and worst-case — full reliability without
//! worst-case pessimism.

use crate::aging::{AgingModel, StressProfile};
use crate::cell::Library;
use crate::characterize::she_as_delay_library;
use crate::error::CircuitError;
use crate::mlchar::{InstanceContext, MlCharacterizer};
use crate::netlist::Netlist;
use crate::she::SheModel;
use crate::spicelike::GoldenSimulator;
use crate::sta::{run_sta, run_sta_with_overrides, Guardband, StaConfig, StaEngine, StaReport};
use lori_core::units::{Celsius, Seconds};

/// Which STA substrate [`run_she_flow`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaMode {
    /// The incremental [`StaEngine`]: validation, topological order, and
    /// net loads are computed once and the accurate/worst-case corners
    /// re-time on top of the nominal state. The default.
    Engine,
    /// Four independent full STA passes — the pre-engine behaviour, kept
    /// as the reference the CI equivalence job byte-compares against.
    Legacy,
}

impl StaMode {
    /// Reads `LORI_STA` (`legacy` selects [`StaMode::Legacy`]; anything
    /// else, including unset, selects [`StaMode::Engine`]).
    #[must_use]
    pub fn from_env() -> StaMode {
        match std::env::var("LORI_STA") {
            Ok(v) if v.eq_ignore_ascii_case("legacy") => StaMode::Legacy,
            _ => StaMode::Engine,
        }
    }
}

/// Configuration of the SHE flow.
#[derive(Debug, Clone, PartialEq)]
pub struct SheFlowConfig {
    /// STA settings shared by every run.
    pub sta: StaConfig,
    /// Self-heating model.
    pub she: SheModel,
    /// Aging model.
    pub aging: AgingModel,
    /// Chip (ambient die) temperature.
    pub chip_temperature: Celsius,
    /// Mission time for the aging projection.
    pub lifetime: Seconds,
}

impl Default for SheFlowConfig {
    fn default() -> Self {
        SheFlowConfig {
            sta: StaConfig::default(),
            she: SheModel::default(),
            aging: AgingModel::default(),
            chip_temperature: Celsius(65.0),
            lifetime: Seconds::from_years(10.0),
        }
    }
}

/// The output of the flow.
#[derive(Debug, Clone)]
pub struct SheFlowReport {
    /// Per-instance SHE temperature above chip temperature (K), from the
    /// SHE-as-delay STA run (the Fig. 2 data).
    pub instance_she_k: Vec<f64>,
    /// Per-instance aging shift (V) after the mission time.
    pub instance_delta_vth_v: Vec<f64>,
    /// Nominal (fresh, SHE-free) timing.
    pub nominal: StaReport,
    /// Per-instance SHE/aging-accurate timing (the flow's product).
    pub accurate: StaReport,
    /// Pessimistic worst-case-corner timing (every instance at max SHE and
    /// max aging).
    pub worst_case: StaReport,
}

impl SheFlowReport {
    /// Guardband required by the accurate flow.
    #[must_use]
    pub fn accurate_guardband(&self) -> Guardband {
        Guardband::from_reports(&self.nominal, &self.accurate)
    }

    /// Guardband required by the conventional worst-case corner.
    #[must_use]
    pub fn worst_case_guardband(&self) -> Guardband {
        Guardband::from_reports(&self.nominal, &self.worst_case)
    }

    /// Fraction of the worst-case margin the accurate flow saves.
    #[must_use]
    pub fn pessimism_reduction(&self) -> f64 {
        let wc = self.worst_case_guardband().margin_ps();
        if wc <= 0.0 {
            0.0
        } else {
            1.0 - self.accurate_guardband().margin_ps() / wc
        }
    }
}

/// Runs the full Fig.-3 flow.
///
/// `timing_library` must be characterized at the flow's nominal corner;
/// `ml` must be trained for every cell the netlist uses (e.g. via
/// [`MlCharacterizer::train_for_netlist`]).
///
/// # Errors
///
/// Propagates characterization, validation, and STA errors.
pub fn run_she_flow(
    sim: &GoldenSimulator,
    timing_library: &Library,
    netlist: &Netlist,
    ml: &MlCharacterizer,
    config: &SheFlowConfig,
) -> Result<SheFlowReport, CircuitError> {
    run_she_flow_with_mode(
        sim,
        timing_library,
        netlist,
        ml,
        config,
        StaMode::from_env(),
    )
}

/// [`run_she_flow`] with an explicit STA substrate. Both modes produce
/// byte-identical reports — the CI equivalence job compares the exported
/// artifacts directly, and `flow::tests` asserts report equality.
///
/// # Errors
///
/// Propagates characterization, validation, and STA errors.
pub fn run_she_flow_with_mode(
    sim: &GoldenSimulator,
    timing_library: &Library,
    netlist: &Netlist,
    ml: &MlCharacterizer,
    config: &SheFlowConfig,
    mode: StaMode,
) -> Result<SheFlowReport, CircuitError> {
    let _ = sim; // the golden engine already produced `timing_library`; kept for API symmetry
    config.she.validate()?;
    match mode {
        StaMode::Engine => run_she_flow_engine(timing_library, netlist, ml, config),
        StaMode::Legacy => run_she_flow_legacy(timing_library, netlist, ml, config),
    }
}

/// Step 3 of the flow, shared by both substrates: per-instance contexts
/// (slew, load, SHE ΔT, aging ΔVth) from the nominal timing and the SHE
/// extraction.
fn instance_contexts(
    netlist: &Netlist,
    nominal: &StaReport,
    instance_she_k: &[f64],
    config: &SheFlowConfig,
) -> Result<(Vec<InstanceContext>, Vec<f64>), CircuitError> {
    let mut contexts = Vec::with_capacity(netlist.instance_count());
    let mut instance_delta_vth_v = Vec::with_capacity(netlist.instance_count());
    for (i, inst) in netlist.instances().iter().enumerate() {
        let she_k = instance_she_k[i];
        let device_temp = Celsius(config.chip_temperature.value() + she_k);
        // Duty cycle approximated from activity: busier gates spend more
        // time in stressed states; floor keeps static-stress NBTI alive.
        let duty = (0.3 + inst.activity).clamp(0.0, 1.0);
        let stress = StressProfile::new(duty, inst.activity, device_temp)?;
        let dvth = config.aging.delta_vth(&stress, config.lifetime).value();
        instance_delta_vth_v.push(dvth);
        contexts.push(InstanceContext {
            slew_ps: nominal.instance_input_slew_ps[i],
            load_ff: nominal.instance_load_ff[i],
            delta_t_k: she_k,
            delta_vth_v: dvth,
        });
    }
    Ok((contexts, instance_delta_vth_v))
}

/// Worst-case contexts: every instance at the hottest observed SHE and the
/// worst observed aging.
fn worst_case_contexts(
    contexts: &[InstanceContext],
    she: &[f64],
    dvth: &[f64],
) -> Vec<InstanceContext> {
    let max_she = she.iter().copied().fold(0.0f64, f64::max);
    let max_dvth = dvth.iter().copied().fold(0.0f64, f64::max);
    contexts
        .iter()
        .map(|c| InstanceContext {
            delta_t_k: max_she,
            delta_vth_v: max_dvth,
            ..*c
        })
        .collect()
}

/// The engine substrate: one [`StaEngine`] over the timing library serves
/// the nominal, accurate, and worst-case corners (validation, topological
/// order, and net loads computed once; the corner changes re-time
/// in-place), and the SHE extraction builds a second engine over the
/// SHE-as-delay library that still shares the netlist's cached
/// topological order.
fn run_she_flow_engine(
    timing_library: &Library,
    netlist: &Netlist,
    ml: &MlCharacterizer,
    config: &SheFlowConfig,
) -> Result<SheFlowReport, CircuitError> {
    // Step 1-2: nominal STA and SHE extraction via the delay-slot trick.
    let mut engine = StaEngine::new(netlist, timing_library, &config.sta)?;
    let nominal = engine.report();
    let she_lib = she_as_delay_library(timing_library, &config.she)?;
    let she_run = StaEngine::new(netlist, &she_lib, &config.sta)?.into_report();
    let instance_she_k = she_run.instance_delay_ps;

    // Step 3: per-instance contexts.
    let (contexts, instance_delta_vth_v) =
        instance_contexts(netlist, &nominal, &instance_she_k, config)?;

    // Step 4a: accurate per-instance STA — an override-set retime on the
    // nominal engine state.
    let overrides = ml.generate_instance_library(netlist, &contexts)?;
    engine.set_all_timings(netlist, timing_library, &overrides)?;
    let accurate = engine.report();

    // Step 4b: worst-case corner — a second retime on the same engine.
    let wc_contexts = worst_case_contexts(&contexts, &instance_she_k, &instance_delta_vth_v);
    let wc_overrides = ml.generate_instance_library(netlist, &wc_contexts)?;
    engine.set_all_timings(netlist, timing_library, &wc_overrides)?;
    let worst_case = engine.into_report();

    Ok(SheFlowReport {
        instance_she_k,
        instance_delta_vth_v,
        nominal,
        accurate,
        worst_case,
    })
}

/// The legacy substrate: four independent full STA passes.
fn run_she_flow_legacy(
    timing_library: &Library,
    netlist: &Netlist,
    ml: &MlCharacterizer,
    config: &SheFlowConfig,
) -> Result<SheFlowReport, CircuitError> {
    // Step 1-2: nominal STA and SHE extraction via the delay-slot trick.
    let nominal = run_sta(netlist, timing_library, &config.sta)?;
    let she_lib = she_as_delay_library(timing_library, &config.she)?;
    let she_run = run_sta(netlist, &she_lib, &config.sta)?;
    let instance_she_k = she_run.instance_delay_ps.clone();

    // Step 3: per-instance contexts.
    let (contexts, instance_delta_vth_v) =
        instance_contexts(netlist, &nominal, &instance_she_k, config)?;

    // Step 4a: accurate per-instance STA.
    let overrides = ml.generate_instance_library(netlist, &contexts)?;
    let accurate = run_sta_with_overrides(netlist, timing_library, &config.sta, &overrides)?;

    // Step 4b: worst-case corner.
    let wc_contexts = worst_case_contexts(&contexts, &instance_she_k, &instance_delta_vth_v);
    let wc_overrides = ml.generate_instance_library(netlist, &wc_contexts)?;
    let worst_case = run_sta_with_overrides(netlist, timing_library, &config.sta, &wc_overrides)?;

    Ok(SheFlowReport {
        instance_she_k,
        instance_delta_vth_v,
        nominal,
        accurate,
        worst_case,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_library, Corner};
    use crate::mlchar::MlCharConfig;
    use crate::netlist::processor_datapath;
    use crate::tech::TechParams;
    use std::sync::OnceLock;

    struct Setup {
        sim: GoldenSimulator,
        lib: Library,
        netlist: Netlist,
        ml: MlCharacterizer,
    }

    fn setup() -> &'static Setup {
        static S: OnceLock<Setup> = OnceLock::new();
        S.get_or_init(|| {
            let sim = GoldenSimulator::new(TechParams::default()).unwrap();
            let lib = characterize_library(&sim, &Corner::default()).unwrap();
            let netlist = processor_datapath(&lib, 4, 11).unwrap();
            let ml = MlCharacterizer::train_for_netlist(
                &sim,
                &lib,
                &netlist,
                &MlCharConfig {
                    samples_per_cell: 90,
                    stages: 50,
                    ..MlCharConfig::default()
                },
            )
            .unwrap();
            Setup {
                sim,
                lib,
                netlist,
                ml,
            }
        })
    }

    #[test]
    fn flow_produces_ordered_guardbands() {
        let s = setup();
        let report =
            run_she_flow(&s.sim, &s.lib, &s.netlist, &s.ml, &SheFlowConfig::default()).unwrap();
        // nominal <= accurate <= worst-case (allowing small ML noise).
        assert!(
            report.accurate.max_arrival_ps > report.nominal.max_arrival_ps * 0.98,
            "accurate {} vs nominal {}",
            report.accurate.max_arrival_ps,
            report.nominal.max_arrival_ps
        );
        assert!(
            report.worst_case.max_arrival_ps >= report.accurate.max_arrival_ps * 0.98,
            "worst-case {} vs accurate {}",
            report.worst_case.max_arrival_ps,
            report.accurate.max_arrival_ps
        );
    }

    #[test]
    fn per_instance_she_spreads_like_fig2() {
        let s = setup();
        let report =
            run_she_flow(&s.sim, &s.lib, &s.netlist, &s.ml, &SheFlowConfig::default()).unwrap();
        let she = &report.instance_she_k;
        let min = she.iter().copied().fold(f64::INFINITY, f64::min);
        let max = she.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // Fig. 2: wide spread of per-instance SHE from few cell types.
        assert!(max > 2.0 * min.max(0.1), "spread [{min}, {max}] too narrow");
        assert!(max < 80.0, "max SHE {max} K implausible");
    }

    #[test]
    fn pessimism_reduction_is_positive() {
        let s = setup();
        let report =
            run_she_flow(&s.sim, &s.lib, &s.netlist, &s.ml, &SheFlowConfig::default()).unwrap();
        let saving = report.pessimism_reduction();
        assert!(
            saving > 0.0 && saving <= 1.0,
            "pessimism reduction {saving}"
        );
    }

    #[test]
    fn engine_and_legacy_substrates_agree_exactly() {
        let s = setup();
        let config = SheFlowConfig::default();
        let engine =
            run_she_flow_with_mode(&s.sim, &s.lib, &s.netlist, &s.ml, &config, StaMode::Engine)
                .unwrap();
        let legacy =
            run_she_flow_with_mode(&s.sim, &s.lib, &s.netlist, &s.ml, &config, StaMode::Legacy)
                .unwrap();
        assert_eq!(engine.instance_she_k, legacy.instance_she_k);
        assert_eq!(engine.instance_delta_vth_v, legacy.instance_delta_vth_v);
        assert_eq!(engine.nominal, legacy.nominal);
        assert_eq!(engine.accurate, legacy.accurate);
        assert_eq!(engine.worst_case, legacy.worst_case);
    }

    #[test]
    fn aging_shifts_are_plausible() {
        let s = setup();
        let report =
            run_she_flow(&s.sim, &s.lib, &s.netlist, &s.ml, &SheFlowConfig::default()).unwrap();
        for &dv in &report.instance_delta_vth_v {
            assert!(dv > 0.0 && dv < 0.15, "ΔVth {dv} V");
        }
    }
}
