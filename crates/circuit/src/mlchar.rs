//! ML-based on-the-fly cell characterization (paper refs \[9\]–\[12\]).
//!
//! The conventional flow characterizes each *library cell* once; the
//! SHE/aging-accurate flow needs each *instance* characterized under its own
//! context (slew, load, self-heating ΔT, aging ΔVth) — thousands of cells,
//! "practically infeasible" with SPICE (Sec. II). The fix: train fast ML
//! models on golden-model samples once per library cell, then generate the
//! instance-specific library with model inference in milliseconds.
//!
//! Features per sample: `(input slew, output load, ΔT, ΔVth)`; targets:
//! delay and output slew. Models: gradient-boosted regression trees from
//! `lori-ml`.

use crate::cell::{CellId, Library};
use crate::error::CircuitError;
use crate::spicelike::{GoldenSimulator, OperatingPoint};
use crate::sta::InstanceTiming;
use lori_core::units::{Celsius, Volts};
use lori_core::Rng;
use lori_ml::boost::{GradientBoostConfig, GradientBoostRegressor};
use lori_ml::data::Dataset;
use lori_ml::traits::Regressor;
use lori_par::Parallelism;
use std::collections::HashMap;

/// Training configuration for the ML characterizer.
#[derive(Debug, Clone, PartialEq)]
pub struct MlCharConfig {
    /// Golden-model samples drawn per library cell.
    pub samples_per_cell: usize,
    /// Boosting stages per model.
    pub stages: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Sampled slew range (ps).
    pub slew_range: (f64, f64),
    /// Sampled load range (fF).
    pub load_range: (f64, f64),
    /// Sampled self-heating range (K above chip temperature).
    pub delta_t_range: (f64, f64),
    /// Sampled aging range (V).
    pub delta_vth_range: (f64, f64),
    /// Chip (ambient die) temperature the ΔT adds onto.
    pub chip_temperature: Celsius,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MlCharConfig {
    fn default() -> Self {
        MlCharConfig {
            samples_per_cell: 220,
            stages: 80,
            max_depth: 4,
            slew_range: (5.0, 160.0),
            load_range: (0.5, 16.0),
            delta_t_range: (0.0, 45.0),
            delta_vth_range: (0.0, 0.08),
            chip_temperature: Celsius(65.0),
            seed: 0,
        }
    }
}

/// One cell's trained pair of models.
#[derive(Debug, Clone, PartialEq)]
struct CellModels {
    delay: GradientBoostRegressor,
    out_slew: GradientBoostRegressor,
}

/// A trained ML characterizer: per-cell models mapping operating context to
/// timing.
#[derive(Debug, Clone, PartialEq)]
pub struct MlCharacterizer {
    models: HashMap<usize, CellModels>,
    chip_temperature: Celsius,
}

impl MlCharacterizer {
    /// Trains models for every cell id in `cells` using golden-model
    /// samples, fanning cells out over the process-default worker pool
    /// ([`lori_par::global`]).
    ///
    /// Each cell draws its samples from an independent RNG sub-stream
    /// split off `config.seed` by cell id, so the trained models are
    /// identical for every worker count (and independent of the order the
    /// cell list is given in, beyond the serial split sequence).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Training`] if model fitting fails or
    /// [`CircuitError::InvalidParameter`] for degenerate ranges.
    pub fn train(
        sim: &GoldenSimulator,
        lib: &Library,
        cells: &[CellId],
        config: &MlCharConfig,
    ) -> Result<Self, CircuitError> {
        Self::train_with(sim, lib, cells, config, lori_par::global())
    }

    /// [`MlCharacterizer::train`] with an explicit worker pool.
    ///
    /// # Errors
    ///
    /// Same as [`MlCharacterizer::train`].
    pub fn train_with(
        sim: &GoldenSimulator,
        lib: &Library,
        cells: &[CellId],
        config: &MlCharConfig,
        par: Parallelism,
    ) -> Result<Self, CircuitError> {
        if config.samples_per_cell < 8 {
            return Err(CircuitError::InvalidParameter {
                what: "samples_per_cell",
                value: 0.0,
            });
        }
        for (lo, hi) in [
            config.slew_range,
            config.load_range,
            config.delta_t_range,
            config.delta_vth_range,
        ] {
            if lo.is_nan() || hi.is_nan() || lo > hi {
                return Err(CircuitError::InvalidParameter {
                    what: "sample range",
                    value: lo,
                });
            }
        }
        let gb_cfg = GradientBoostConfig {
            stages: config.stages,
            learning_rate: 0.1,
            max_depth: config.max_depth,
        };
        // Split one RNG sub-stream per cell serially, in list order,
        // before the fan-out: sample generation then depends only on a
        // cell's own stream, never on how many cells other workers have
        // already processed.
        let mut root = Rng::from_seed(config.seed);
        let tasks: Vec<(CellId, Rng)> = cells
            .iter()
            .map(|&cell_id| {
                #[allow(clippy::cast_possible_truncation)]
                let stream = root.split(cell_id.0 as u64);
                (cell_id, stream)
            })
            .collect();
        let _span = lori_obs::span("circuit.mlchar.train");
        let progress = lori_obs::Progress::start("mlchar.train", tasks.len() as u64);
        let fitted = lori_par::par_map(par, &tasks, |_, (cell_id, cell_rng)| {
            let cell = lib.cell(*cell_id);
            let mut rng = cell_rng.clone();
            let mut xs = Vec::with_capacity(config.samples_per_cell);
            let mut delays = Vec::with_capacity(config.samples_per_cell);
            let mut slews = Vec::with_capacity(config.samples_per_cell);
            for _ in 0..config.samples_per_cell {
                let slew = rng.uniform_in(
                    config.slew_range.0,
                    config.slew_range.1.max(config.slew_range.0 + 1e-9),
                );
                let load = rng.uniform_in(
                    config.load_range.0,
                    config.load_range.1.max(config.load_range.0 + 1e-9),
                );
                let dt = rng.uniform_in(
                    config.delta_t_range.0,
                    config.delta_t_range.1.max(config.delta_t_range.0 + 1e-9),
                );
                let dvth = rng.uniform_in(
                    config.delta_vth_range.0,
                    config
                        .delta_vth_range
                        .1
                        .max(config.delta_vth_range.0 + 1e-9),
                );
                let op = OperatingPoint {
                    slew_ps: slew,
                    load_ff: load,
                    temperature: Celsius(config.chip_temperature.value() + dt),
                    delta_vth: Volts(dvth),
                };
                let t = sim.characterize(cell.kind, cell.drive, &op);
                if !t.delay_ps.is_finite() {
                    continue; // dead corner sample; skip
                }
                xs.push(vec![slew, load, dt, dvth]);
                // `nan@circuit.mlchar` poisons golden training targets;
                // the guard below refuses to fit on corrupted data.
                delays.push(lori_fault::poison_f64("circuit.mlchar", t.delay_ps));
                slews.push(lori_fault::poison_f64("circuit.mlchar", t.out_slew_ps));
            }
            if delays.iter().chain(&slews).any(|v| !v.is_finite()) {
                lori_fault::detected("circuit.mlchar");
                return Err(CircuitError::NonFinite {
                    site: "circuit.mlchar",
                    what: "training target",
                });
            }
            let delay_ds = Dataset::from_rows(xs.clone(), delays)
                .map_err(|e| CircuitError::Training(e.to_string()))?;
            let slew_ds =
                Dataset::from_rows(xs, slews).map_err(|e| CircuitError::Training(e.to_string()))?;
            let delay = GradientBoostRegressor::fit(&delay_ds, &gb_cfg)
                .map_err(|e| CircuitError::Training(e.to_string()))?;
            let out_slew = GradientBoostRegressor::fit(&slew_ds, &gb_cfg)
                .map_err(|e| CircuitError::Training(e.to_string()))?;
            progress.tick();
            Ok((cell_id.0, CellModels { delay, out_slew }))
        });
        drop(progress);
        // First error in cell-list order wins, matching the serial flow.
        let mut models = HashMap::new();
        for f in fitted {
            let (id, cell_models) = f?;
            models.insert(id, cell_models);
        }
        Ok(MlCharacterizer {
            models,
            chip_temperature: config.chip_temperature,
        })
    }

    /// Trains models only for the cells a netlist actually instantiates.
    ///
    /// # Errors
    ///
    /// Same as [`MlCharacterizer::train`].
    pub fn train_for_netlist(
        sim: &GoldenSimulator,
        lib: &Library,
        netlist: &crate::netlist::Netlist,
        config: &MlCharConfig,
    ) -> Result<Self, CircuitError> {
        Self::train_for_netlist_with(sim, lib, netlist, config, lori_par::global())
    }

    /// [`MlCharacterizer::train_for_netlist`] with an explicit worker pool.
    ///
    /// # Errors
    ///
    /// Same as [`MlCharacterizer::train`].
    pub fn train_for_netlist_with(
        sim: &GoldenSimulator,
        lib: &Library,
        netlist: &crate::netlist::Netlist,
        config: &MlCharConfig,
        par: Parallelism,
    ) -> Result<Self, CircuitError> {
        let mut used: Vec<CellId> = netlist.instances().iter().map(|i| i.cell).collect();
        used.sort_unstable();
        used.dedup();
        Self::train_with(sim, lib, &used, config, par)
    }

    /// Number of cells with trained models.
    #[must_use]
    pub fn model_count(&self) -> usize {
        self.models.len()
    }

    /// Predicts the timing of one cell in a context.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownCell`] if the cell was not trained.
    pub fn predict(
        &self,
        cell: CellId,
        slew_ps: f64,
        load_ff: f64,
        delta_t_k: f64,
        delta_vth_v: f64,
    ) -> Result<InstanceTiming, CircuitError> {
        let m = self
            .models
            .get(&cell.0)
            .ok_or_else(|| CircuitError::UnknownCell(format!("cell id {} untrained", cell.0)))?;
        let x = [slew_ps, load_ff, delta_t_k, delta_vth_v];
        Ok(InstanceTiming {
            delay_ps: m.delay.predict(&x).max(0.05),
            out_slew_ps: m.out_slew.predict(&x).max(0.05),
        })
    }

    /// The chip temperature the ΔT feature is relative to.
    #[must_use]
    pub fn chip_temperature(&self) -> Celsius {
        self.chip_temperature
    }

    /// Generates a full instance-specific "library": one timing per
    /// instance, given each instance's context.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownCell`] for untrained cells or a length
    /// mismatch via [`CircuitError::DanglingReference`].
    pub fn generate_instance_library(
        &self,
        netlist: &crate::netlist::Netlist,
        contexts: &[InstanceContext],
    ) -> Result<Vec<InstanceTiming>, CircuitError> {
        if contexts.len() != netlist.instance_count() {
            return Err(CircuitError::DanglingReference {
                what: "instance context",
                index: contexts.len(),
            });
        }
        netlist
            .instances()
            .iter()
            .zip(contexts)
            .map(|(inst, ctx)| {
                self.predict(
                    inst.cell,
                    ctx.slew_ps,
                    ctx.load_ff,
                    ctx.delta_t_k,
                    ctx.delta_vth_v,
                )
            })
            .collect()
    }
}

/// The per-instance operating context an instance-specific library is built
/// from.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct InstanceContext {
    /// Input slew at the instance (ps).
    pub slew_ps: f64,
    /// Output load (fF).
    pub load_ff: f64,
    /// Self-heating above chip temperature (K).
    pub delta_t_k: f64,
    /// Aging shift (V).
    pub delta_vth_v: f64,
}

/// Golden (slow-path) instance library generation, for validating the ML
/// path and for measuring the speedup of E2.
#[must_use]
pub fn golden_instance_library(
    sim: &GoldenSimulator,
    lib: &Library,
    netlist: &crate::netlist::Netlist,
    contexts: &[InstanceContext],
    chip_temperature: Celsius,
) -> Vec<InstanceTiming> {
    netlist
        .instances()
        .iter()
        .zip(contexts)
        .map(|(inst, ctx)| {
            let cell = lib.cell(inst.cell);
            let op = OperatingPoint {
                slew_ps: ctx.slew_ps,
                load_ff: ctx.load_ff,
                temperature: Celsius(chip_temperature.value() + ctx.delta_t_k),
                delta_vth: Volts(ctx.delta_vth_v),
            };
            let t = sim.characterize(cell.kind, cell.drive, &op);
            InstanceTiming {
                delay_ps: t.delay_ps,
                out_slew_ps: t.out_slew_ps,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_library, Corner};
    use crate::netlist::ripple_carry_adder;
    use crate::tech::TechParams;
    use std::sync::OnceLock;

    fn setup() -> (&'static GoldenSimulator, &'static Library) {
        static SIM: OnceLock<GoldenSimulator> = OnceLock::new();
        static LIB: OnceLock<Library> = OnceLock::new();
        let sim = SIM.get_or_init(|| GoldenSimulator::new(TechParams::default()).unwrap());
        let lib = LIB.get_or_init(|| characterize_library(sim, &Corner::default()).unwrap());
        (sim, lib)
    }

    fn small_config() -> MlCharConfig {
        MlCharConfig {
            samples_per_cell: 100,
            stages: 60,
            ..MlCharConfig::default()
        }
    }

    #[test]
    fn ml_models_match_golden_within_tolerance() {
        let (sim, lib) = setup();
        let inv = lib.find("INV_X1").unwrap();
        let ml = MlCharacterizer::train(sim, lib, &[inv], &small_config()).unwrap();
        let mut rng = Rng::from_seed(77);
        let mut rel_err_sum = 0.0;
        let n = 40;
        for _ in 0..n {
            let slew = rng.uniform_in(10.0, 150.0);
            let load = rng.uniform_in(1.0, 15.0);
            let dt = rng.uniform_in(0.0, 40.0);
            let dvth = rng.uniform_in(0.0, 0.07);
            let pred = ml.predict(inv, slew, load, dt, dvth).unwrap();
            let gold = sim.characterize(
                lib.cell(inv).kind,
                lib.cell(inv).drive,
                &OperatingPoint {
                    slew_ps: slew,
                    load_ff: load,
                    temperature: Celsius(65.0 + dt),
                    delta_vth: Volts(dvth),
                },
            );
            rel_err_sum += ((pred.delay_ps - gold.delay_ps) / gold.delay_ps).abs();
        }
        let mean_rel_err = rel_err_sum / f64::from(n);
        assert!(mean_rel_err < 0.10, "mean relative error {mean_rel_err}");
    }

    #[test]
    fn train_for_netlist_covers_used_cells_only() {
        let (sim, lib) = setup();
        let nl = ripple_carry_adder(lib, 4).unwrap();
        let ml = MlCharacterizer::train_for_netlist(sim, lib, &nl, &small_config()).unwrap();
        // RCA uses XOR2, MAJ3, AND2 at one drive each → few models, not 60.
        assert!(ml.model_count() >= 2 && ml.model_count() < 10);
    }

    #[test]
    fn untrained_cell_rejected() {
        let (sim, lib) = setup();
        let inv = lib.find("INV_X1").unwrap();
        let nand = lib.find("NAND2_X1").unwrap();
        let ml = MlCharacterizer::train(sim, lib, &[inv], &small_config()).unwrap();
        assert!(ml.predict(nand, 20.0, 4.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn instance_library_generation() {
        let (sim, lib) = setup();
        let nl = ripple_carry_adder(lib, 4).unwrap();
        let ml = MlCharacterizer::train_for_netlist(sim, lib, &nl, &small_config()).unwrap();
        let contexts: Vec<InstanceContext> = (0..nl.instance_count())
            .map(|i| InstanceContext {
                slew_ps: 20.0 + i as f64,
                load_ff: 2.0,
                delta_t_k: 5.0,
                delta_vth_v: 0.01,
            })
            .collect();
        let timings = ml.generate_instance_library(&nl, &contexts).unwrap();
        assert_eq!(timings.len(), nl.instance_count());
        assert!(timings
            .iter()
            .all(|t| t.delay_ps > 0.0 && t.out_slew_ps > 0.0));
        // Length mismatch rejected.
        assert!(ml.generate_instance_library(&nl, &contexts[1..]).is_err());
    }

    #[test]
    fn parallel_train_bit_identical_to_serial() {
        let (sim, lib) = setup();
        let nl = ripple_carry_adder(lib, 4).unwrap();
        let cfg = small_config();
        let serial =
            MlCharacterizer::train_for_netlist_with(sim, lib, &nl, &cfg, Parallelism::serial())
                .unwrap();
        let parallel =
            MlCharacterizer::train_for_netlist_with(sim, lib, &nl, &cfg, Parallelism::new(4))
                .unwrap();
        // Full-struct equality: every trained tree in every per-cell model
        // must match exactly, not just predictions.
        assert_eq!(serial, parallel);
    }

    #[test]
    fn config_validation() {
        let (sim, lib) = setup();
        let inv = lib.find("INV_X1").unwrap();
        let bad = MlCharConfig {
            samples_per_cell: 2,
            ..MlCharConfig::default()
        };
        assert!(MlCharacterizer::train(sim, lib, &[inv], &bad).is_err());
        let bad_range = MlCharConfig {
            slew_range: (100.0, 10.0),
            ..small_config()
        };
        assert!(MlCharacterizer::train(sim, lib, &[inv], &bad_range).is_err());
    }
}
