//! The "golden" transient characterization engine.
//!
//! This is the stand-in for the foundry's calibrated SPICE setup: a
//! deliberately time-stepped transient simulation of a switching cell. The
//! output node is discharged by an alpha-power-law device (with a
//! linear/saturation region split), driven by a ramped input. Delay is
//! measured 50 %-input to 50 %-output; output slew is the 10–90 % transition
//! time scaled to the 0–100 % equivalent.
//!
//! It is intentionally *expensive* — tens of thousands of integration steps
//! per arc — so that the ML-characterization speedup measured by experiment
//! E2 reflects a genuine golden-model cost, not a staged one.

use crate::cell::CellKind;
use crate::error::CircuitError;
use crate::tech::TechParams;
use lori_cache::{Cache, CacheKey, CachePayload, KeyBuilder};
use lori_core::units::{Celsius, Volts};
use std::sync::{Arc, OnceLock};

/// Bump whenever the transient engine's numerics change in any way that can
/// alter an [`ArcTiming`] bit pattern — it is the cache-invalidation switch
/// for every previously persisted golden result.
const GOLDEN_KEY_VERSION: u32 = 1;

/// The process-wide golden-result cache, in the mode `LORI_CACHE` selects.
/// Shared by every [`GoldenSimulator::new`] so the 18 `exp-*` binaries and
/// all tests pool their memoized arcs; [`GoldenSimulator::with_cache`]
/// opts out of the sharing.
fn global_golden_cache() -> Arc<Cache<ArcTiming>> {
    static CACHE: OnceLock<Arc<Cache<ArcTiming>>> = OnceLock::new();
    Arc::clone(CACHE.get_or_init(|| Arc::new(Cache::new(lori_cache::global_mode().clone()))))
}

impl CachePayload for ArcTiming {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.delay_ps.to_bits().to_le_bytes());
        out.extend_from_slice(&self.out_slew_ps.to_bits().to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 16 {
            return None;
        }
        let word = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8-byte slice"));
        Some(ArcTiming {
            delay_ps: f64::from_bits(word(0)),
            out_slew_ps: f64::from_bits(word(8)),
        })
    }
}

/// One characterization query: the full operating context of a cell arc.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Input transition time (0–100 %) in ps.
    pub slew_ps: f64,
    /// Output load in fF.
    pub load_ff: f64,
    /// Device temperature (chip + self-heating).
    pub temperature: Celsius,
    /// Aging-induced threshold shift.
    pub delta_vth: Volts,
}

/// The result of a transient characterization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArcTiming {
    /// Propagation delay (50 % in → 50 % out) in ps.
    pub delay_ps: f64,
    /// Output transition time (0–100 % equivalent) in ps.
    pub out_slew_ps: f64,
}

/// The golden transient engine.
///
/// Characterization results are memoized through a content-addressed
/// [`Cache`] (see `lori-cache`): the key covers every input that can alter
/// the numerics — all technology parameters, the integration settings, the
/// cell kind, drive, and the full operating point — so a hit is exactly the
/// bytes a recompute would produce.
#[derive(Debug, Clone)]
pub struct GoldenSimulator {
    tech: TechParams,
    /// Integration steps per input-slew unit; total step count is
    /// `steps_per_ps × simulated time`, floored at `min_steps`.
    steps_per_ps: f64,
    min_steps: usize,
    cache: Arc<Cache<ArcTiming>>,
}

impl PartialEq for GoldenSimulator {
    fn eq(&self, other: &Self) -> bool {
        // The cache is a transparent accelerator: two simulators with the
        // same physics are equal regardless of what either has memoized.
        self.tech == other.tech
            && self.steps_per_ps == other.steps_per_ps
            && self.min_steps == other.min_steps
    }
}

impl GoldenSimulator {
    /// Creates a simulator over the given technology, sharing the
    /// process-wide golden cache (mode from `LORI_CACHE`, default `mem`).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] if the technology fails
    /// validation.
    pub fn new(tech: TechParams) -> Result<Self, CircuitError> {
        Self::with_cache(tech, global_golden_cache())
    }

    /// Creates a simulator with a caller-supplied cache (e.g. a private
    /// [`lori_cache::CacheMode::Off`] cache for baseline timing, or a disk cache over
    /// a custom directory).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] if the technology fails
    /// validation.
    pub fn with_cache(
        tech: TechParams,
        cache: Arc<Cache<ArcTiming>>,
    ) -> Result<Self, CircuitError> {
        tech.validate()?;
        Ok(GoldenSimulator {
            tech,
            steps_per_ps: 40.0,
            min_steps: 20_000,
            cache,
        })
    }

    /// The underlying technology parameters.
    #[must_use]
    pub fn tech(&self) -> &TechParams {
        &self.tech
    }

    /// The memoization cache this simulator consults.
    #[must_use]
    pub fn cache(&self) -> &Arc<Cache<ArcTiming>> {
        &self.cache
    }

    /// The content-addressed key for one characterization query: every
    /// field that feeds the transient integration, in a fixed order.
    fn cache_key(&self, kind: CellKind, drive: f64, op: &OperatingPoint) -> CacheKey {
        let mut b = KeyBuilder::new("circuit.golden", GOLDEN_KEY_VERSION);
        b.push_f64(self.tech.vdd.value())
            .push_f64(self.tech.vth0.value())
            .push_f64(self.tech.alpha)
            .push_f64(self.tech.t_ref.0)
            .push_f64(self.tech.mobility_exponent)
            .push_f64(self.tech.vth_temp_coeff)
            .push_f64(self.tech.unit_current_ua)
            .push_f64(self.tech.unit_pin_cap_ff)
            .push_f64(self.steps_per_ps)
            .push_u64(self.min_steps as u64)
            .push_str(kind.prefix())
            .push_f64(drive)
            .push_f64(op.slew_ps)
            .push_f64(op.load_ff)
            .push_f64(op.temperature.0)
            .push_f64(op.delta_vth.value());
        b.finish()
    }

    /// Characterizes one arc of `kind` at `drive` under `op`, consulting
    /// the cache first. Bit-identical to [`characterize_uncached`] — the
    /// cache can change wall-clock time only, never the result.
    ///
    /// Returns an [`ArcTiming`] with infinite delay if the device cannot
    /// switch (e.g. catastrophic aging).
    ///
    /// [`characterize_uncached`]: GoldenSimulator::characterize_uncached
    #[must_use]
    pub fn characterize(&self, kind: CellKind, drive: f64, op: &OperatingPoint) -> ArcTiming {
        let key = self.cache_key(kind, drive, op);
        self.cache
            .get_or_compute(&key, || self.characterize_uncached(kind, drive, op))
    }

    /// Runs the transient integration unconditionally, bypassing the cache.
    ///
    /// Returns an [`ArcTiming`] with infinite delay if the device cannot
    /// switch (e.g. catastrophic aging).
    #[must_use]
    pub fn characterize_uncached(
        &self,
        kind: CellKind,
        drive: f64,
        op: &OperatingPoint,
    ) -> ArcTiming {
        let _span = lori_obs::span("circuit.transient.characterize");
        let vdd = self.tech.vdd.value();
        let vth = self.tech.vth_at(op.temperature, op.delta_vth).value();
        if vth >= vdd {
            return ArcTiming {
                delay_ps: f64::INFINITY,
                out_slew_ps: f64::INFINITY,
            };
        }

        // Effective drive width: stacking (logical effort) divides current.
        let width = drive / kind.logical_effort();
        let i_sat_ua = self
            .tech
            .drive_current_ua(width, op.temperature, op.delta_vth);
        if i_sat_ua <= 0.0 {
            return ArcTiming {
                delay_ps: f64::INFINITY,
                out_slew_ps: f64::INFINITY,
            };
        }

        // Total switched capacitance: external load + self-parasitics.
        let c_par = kind.parasitic() * self.tech.unit_pin_cap_ff * drive * 0.5;
        let c_total = op.load_ff.max(1e-3) + c_par;

        // Saturation voltage: below it, current falls off linearly with Vds.
        let vdsat = 0.4 * (vdd - vth);

        // Rough RC to bound the simulated window.
        let t_rc = 1000.0 * c_total * vdd / i_sat_ua; // ps
        let t_end = op.slew_ps + 30.0 * t_rc;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let steps = ((t_end * self.steps_per_ps) as usize).max(self.min_steps);
        #[allow(clippy::cast_precision_loss)]
        let dt = t_end / steps as f64;

        let slew = op.slew_ps.max(1e-3);
        let mut v_out = vdd;
        let mut t = 0.0f64;
        let mut t_in_50 = 0.5 * slew;
        if t_in_50 <= 0.0 {
            t_in_50 = 0.0;
        }
        let mut t_out_50 = f64::NAN;
        let mut t_out_90 = f64::NAN;
        let mut t_out_10 = f64::NAN;

        let mut steps_taken = 0u64;
        for _ in 0..steps {
            steps_taken += 1;
            // Input ramp 0 → Vdd over `slew`.
            let v_in = (vdd * t / slew).min(vdd);
            let overdrive = v_in - vth;
            let i_ua = if overdrive <= 0.0 {
                0.0
            } else {
                let sat = self.tech.unit_current_ua
                    * width
                    * mobility_factor(&self.tech, op.temperature)
                    * overdrive.powf(self.tech.alpha);
                if v_out >= vdsat {
                    sat
                } else {
                    sat * (v_out / vdsat).max(0.0)
                }
            };
            // dV/dt = −I/C; I in µA, C in fF, t in ps → dV = I·dt/C · 1e-3.
            v_out -= 1.0e-3 * i_ua * dt / c_total;
            t += dt;
            if t_out_90.is_nan() && v_out <= 0.9 * vdd {
                t_out_90 = t;
            }
            if t_out_50.is_nan() && v_out <= 0.5 * vdd {
                t_out_50 = t;
            }
            if t_out_10.is_nan() && v_out <= 0.1 * vdd {
                t_out_10 = t;
                break;
            }
        }
        lori_obs::counter("circuit.transient.steps").incr(steps_taken);

        if t_out_50.is_nan() {
            return ArcTiming {
                delay_ps: f64::INFINITY,
                out_slew_ps: f64::INFINITY,
            };
        }
        let out_slew = if t_out_10.is_nan() || t_out_90.is_nan() {
            f64::INFINITY
        } else {
            (t_out_10 - t_out_90) * 1.25 // 10–90 % → 0–100 % equivalent
        };
        ArcTiming {
            delay_ps: (t_out_50 - t_in_50).max(0.1),
            out_slew_ps: out_slew,
        }
    }
}

fn mobility_factor(tech: &TechParams, t: Celsius) -> f64 {
    (t.as_absolute_kelvin() / tech.t_ref.as_absolute_kelvin()).powf(-tech.mobility_exponent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lori_cache::CacheMode;

    fn sim() -> GoldenSimulator {
        GoldenSimulator::new(TechParams::default()).unwrap()
    }

    fn op(slew: f64, load: f64) -> OperatingPoint {
        OperatingPoint {
            slew_ps: slew,
            load_ff: load,
            temperature: Celsius(25.0),
            delta_vth: Volts(0.0),
        }
    }

    #[test]
    fn delay_grows_with_load() {
        let s = sim();
        let light = s.characterize(CellKind::Inv, 1.0, &op(20.0, 1.0));
        let heavy = s.characterize(CellKind::Inv, 1.0, &op(20.0, 16.0));
        assert!(heavy.delay_ps > light.delay_ps);
        assert!(heavy.out_slew_ps > light.out_slew_ps);
    }

    #[test]
    fn delay_grows_with_input_slew() {
        let s = sim();
        let fast = s.characterize(CellKind::Inv, 1.0, &op(5.0, 4.0));
        let slow = s.characterize(CellKind::Inv, 1.0, &op(160.0, 4.0));
        assert!(slow.delay_ps > fast.delay_ps);
    }

    #[test]
    fn stronger_drive_is_faster() {
        let s = sim();
        let x1 = s.characterize(CellKind::Nand2, 1.0, &op(20.0, 8.0));
        let x4 = s.characterize(CellKind::Nand2, 4.0, &op(20.0, 8.0));
        assert!(x4.delay_ps < x1.delay_ps);
    }

    #[test]
    fn stacked_kinds_are_slower_than_inverter() {
        let s = sim();
        let inv = s.characterize(CellKind::Inv, 1.0, &op(20.0, 4.0));
        let xor = s.characterize(CellKind::Xor2, 1.0, &op(20.0, 4.0));
        assert!(xor.delay_ps > inv.delay_ps);
    }

    #[test]
    fn heat_slows_the_cell() {
        let s = sim();
        let cold = s.characterize(CellKind::Inv, 1.0, &op(20.0, 4.0));
        let hot = s.characterize(
            CellKind::Inv,
            1.0,
            &OperatingPoint {
                temperature: Celsius(110.0),
                ..op(20.0, 4.0)
            },
        );
        assert!(hot.delay_ps > cold.delay_ps);
    }

    #[test]
    fn aging_slows_the_cell() {
        let s = sim();
        let fresh = s.characterize(CellKind::Inv, 1.0, &op(20.0, 4.0));
        let aged = s.characterize(
            CellKind::Inv,
            1.0,
            &OperatingPoint {
                delta_vth: Volts(0.06),
                ..op(20.0, 4.0)
            },
        );
        assert!(aged.delay_ps > fresh.delay_ps);
    }

    #[test]
    fn dead_device_reports_infinity() {
        let s = sim();
        let dead = s.characterize(
            CellKind::Inv,
            1.0,
            &OperatingPoint {
                delta_vth: Volts(0.8),
                ..op(20.0, 4.0)
            },
        );
        assert!(dead.delay_ps.is_infinite());
    }

    #[test]
    fn delays_in_plausible_ps_range() {
        let s = sim();
        let t = s.characterize(CellKind::Inv, 1.0, &op(20.0, 2.0));
        assert!(
            t.delay_ps > 0.5 && t.delay_ps < 200.0,
            "delay {} ps",
            t.delay_ps
        );
        assert!(t.out_slew_ps.is_finite() && t.out_slew_ps > 0.0);
    }

    #[test]
    fn deterministic() {
        let s = sim();
        let a = s.characterize(CellKind::Aoi21, 2.0, &op(40.0, 6.0));
        let b = s.characterize(CellKind::Aoi21, 2.0, &op(40.0, 6.0));
        assert_eq!(a, b);
    }

    #[test]
    fn cached_matches_uncached() {
        let s = GoldenSimulator::with_cache(
            TechParams::default(),
            Arc::new(Cache::new(CacheMode::Mem)),
        )
        .unwrap();
        for kind in [CellKind::Inv, CellKind::Maj3] {
            for (slew, load) in [(5.0, 1.0), (40.0, 6.0), (160.0, 16.0)] {
                let o = op(slew, load);
                let direct = s.characterize_uncached(kind, 2.0, &o);
                let cold = s.characterize(kind, 2.0, &o);
                let warm = s.characterize(kind, 2.0, &o);
                assert_eq!(direct, cold);
                assert_eq!(cold, warm);
            }
        }
        let stats = s.cache().stats();
        assert_eq!((stats.hits, stats.misses), (6, 6));
    }

    #[test]
    fn distinct_queries_get_distinct_keys() {
        let s = sim();
        let base = s.cache_key(CellKind::Inv, 1.0, &op(20.0, 4.0));
        for (kind, drive, o) in [
            (CellKind::Buf, 1.0, op(20.0, 4.0)),
            (CellKind::Inv, 2.0, op(20.0, 4.0)),
            (CellKind::Inv, 1.0, op(21.0, 4.0)),
            (CellKind::Inv, 1.0, op(20.0, 4.5)),
            (
                CellKind::Inv,
                1.0,
                OperatingPoint {
                    temperature: Celsius(26.0),
                    ..op(20.0, 4.0)
                },
            ),
            (
                CellKind::Inv,
                1.0,
                OperatingPoint {
                    delta_vth: Volts(0.01),
                    ..op(20.0, 4.0)
                },
            ),
        ] {
            assert_ne!(base, s.cache_key(kind, drive, &o));
        }
        assert_eq!(base, s.cache_key(CellKind::Inv, 1.0, &op(20.0, 4.0)));
    }

    #[test]
    fn tech_params_feed_the_key() {
        let s = sim();
        let mut tech = TechParams::default();
        tech.vth0 = Volts(tech.vth0.value() + 0.001);
        let s2 = GoldenSimulator::new(tech).unwrap();
        assert_ne!(
            s.cache_key(CellKind::Inv, 1.0, &op(20.0, 4.0)),
            s2.cache_key(CellKind::Inv, 1.0, &op(20.0, 4.0)),
        );
    }

    #[test]
    fn arc_timing_payload_round_trips() {
        for t in [
            ArcTiming {
                delay_ps: 12.345,
                out_slew_ps: 67.875,
            },
            ArcTiming {
                delay_ps: f64::INFINITY,
                out_slew_ps: f64::INFINITY,
            },
        ] {
            let mut bytes = Vec::new();
            t.encode(&mut bytes);
            assert_eq!(ArcTiming::decode(&bytes), Some(t));
        }
        assert_eq!(ArcTiming::decode(&[0u8; 15]), None);
    }
}
