//! NLDM-style 2-D lookup tables over (input slew, output load).

use crate::error::CircuitError;

/// A 2-D lookup table with bilinear interpolation and clamped extrapolation,
/// as used by non-linear delay models in standard-cell libraries.
///
/// ```
/// use lori_circuit::lut::Lut2d;
/// # fn main() -> Result<(), lori_circuit::CircuitError> {
/// let lut = Lut2d::new(
///     vec![10.0, 20.0],           // slew axis
///     vec![1.0, 2.0],             // load axis
///     vec![vec![5.0, 7.0], vec![6.0, 8.0]],
/// )?;
/// assert!((lut.lookup(15.0, 1.5) - 6.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Lut2d {
    slews: Vec<f64>,
    loads: Vec<f64>,
    /// `values[i][j]` at `(slews[i], loads[j])`.
    values: Vec<Vec<f64>>,
}

impl Lut2d {
    /// Builds a table.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidGrid`] if either axis is empty or not
    /// strictly increasing, or the value matrix shape does not match.
    pub fn new(
        slews: Vec<f64>,
        loads: Vec<f64>,
        values: Vec<Vec<f64>>,
    ) -> Result<Self, CircuitError> {
        if slews.is_empty() || loads.is_empty() {
            return Err(CircuitError::InvalidGrid("empty axis"));
        }
        if !strictly_increasing(&slews) || !strictly_increasing(&loads) {
            return Err(CircuitError::InvalidGrid("axis not strictly increasing"));
        }
        if values.len() != slews.len() || values.iter().any(|row| row.len() != loads.len()) {
            return Err(CircuitError::InvalidGrid("value matrix shape mismatch"));
        }
        if values.iter().flatten().any(|v| !v.is_finite()) {
            return Err(CircuitError::InvalidGrid("non-finite value"));
        }
        Ok(Lut2d {
            slews,
            loads,
            values,
        })
    }

    /// The slew axis.
    #[must_use]
    pub fn slews(&self) -> &[f64] {
        &self.slews
    }

    /// The load axis.
    #[must_use]
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Bilinear interpolation; queries outside the grid clamp to the border
    /// (conservative behaviour for timing: the characterized corners bound
    /// the physical operating space).
    ///
    /// This is the `circuit.lut` fault-injection site: an armed
    /// `nan@circuit.lut` directive poisons the interpolated value at its
    /// configured rate, modelling a corrupted library read. Downstream
    /// consumers (STA, characterization) are expected to catch the NaN at
    /// their boundary and return a typed error.
    #[must_use]
    pub fn lookup(&self, slew: f64, load: f64) -> f64 {
        let (i0, i1, ti) = bracket(&self.slews, slew);
        let (j0, j1, tj) = bracket(&self.loads, load);
        let v00 = self.values[i0][j0];
        let v01 = self.values[i0][j1];
        let v10 = self.values[i1][j0];
        let v11 = self.values[i1][j1];
        let a = v00 + (v01 - v00) * tj;
        let b = v10 + (v11 - v10) * tj;
        lori_fault::poison_f64("circuit.lut", a + (b - a) * ti)
    }

    /// Maximum table entry (used for worst-case corner reporting).
    #[must_use]
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .flatten()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Applies a function to every entry, returning a new table.
    #[must_use]
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Lut2d {
        Lut2d {
            slews: self.slews.clone(),
            loads: self.loads.clone(),
            values: self
                .values
                .iter()
                .map(|row| row.iter().map(|&v| f(v)).collect())
                .collect(),
        }
    }
}

fn strictly_increasing(xs: &[f64]) -> bool {
    xs.windows(2).all(|w| w[0] < w[1]) && xs.iter().all(|x| x.is_finite())
}

/// Finds indices `(lo, hi)` bracketing `x` and the interpolation weight.
fn bracket(axis: &[f64], x: f64) -> (usize, usize, f64) {
    if axis.len() == 1 || x <= axis[0] {
        return (0, 0, 0.0);
    }
    if x >= *axis.last().expect("non-empty axis") {
        let last = axis.len() - 1;
        return (last, last, 0.0);
    }
    let hi = axis.partition_point(|&a| a < x).max(1);
    let lo = hi - 1;
    let t = (x - axis[lo]) / (axis[hi] - axis[lo]);
    (lo, hi, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lut() -> Lut2d {
        Lut2d::new(
            vec![10.0, 20.0, 40.0],
            vec![1.0, 2.0, 4.0],
            vec![
                vec![5.0, 7.0, 11.0],
                vec![6.0, 8.0, 12.0],
                vec![9.0, 11.0, 15.0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn exact_grid_points() {
        let l = lut();
        assert_eq!(l.lookup(10.0, 1.0), 5.0);
        assert_eq!(l.lookup(40.0, 4.0), 15.0);
        assert_eq!(l.lookup(20.0, 2.0), 8.0);
    }

    #[test]
    fn bilinear_midpoints() {
        let l = lut();
        assert!((l.lookup(15.0, 1.5) - 6.5).abs() < 1e-12);
        assert!((l.lookup(30.0, 3.0) - 11.5).abs() < 1e-12);
    }

    #[test]
    fn extrapolation_clamps() {
        let l = lut();
        assert_eq!(l.lookup(0.0, 0.0), 5.0);
        assert_eq!(l.lookup(1e9, 1e9), 15.0);
        assert_eq!(l.lookup(0.0, 1e9), 11.0);
    }

    #[test]
    fn validation() {
        assert!(Lut2d::new(vec![], vec![1.0], vec![]).is_err());
        assert!(Lut2d::new(vec![2.0, 1.0], vec![1.0], vec![vec![0.0], vec![0.0]]).is_err());
        assert!(Lut2d::new(vec![1.0, 2.0], vec![1.0], vec![vec![0.0]]).is_err());
        assert!(Lut2d::new(vec![1.0], vec![1.0], vec![vec![f64::NAN]]).is_err());
        assert!(Lut2d::new(vec![1.0], vec![1.0], vec![vec![3.0]]).is_ok());
    }

    #[test]
    fn single_point_table() {
        let l = Lut2d::new(vec![1.0], vec![1.0], vec![vec![42.0]]).unwrap();
        assert_eq!(l.lookup(0.0, 100.0), 42.0);
    }

    #[test]
    fn max_and_map() {
        let l = lut();
        assert_eq!(l.max_value(), 15.0);
        let doubled = l.map(|v| v * 2.0);
        assert_eq!(doubled.lookup(10.0, 1.0), 10.0);
        assert_eq!(doubled.max_value(), 30.0);
    }

    #[test]
    fn interpolation_monotone_for_monotone_tables() {
        let l = lut();
        let mut prev = 0.0;
        for i in 0..30 {
            let slew = 10.0 + f64::from(i);
            let v = l.lookup(slew, 2.0);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
    }
}
