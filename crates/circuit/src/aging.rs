//! Transistor aging models: NBTI and HCI threshold-voltage degradation.
//!
//! Both follow the standard reaction–diffusion-style power law used in the
//! public literature: `ΔVth = A · S^β · exp(−Ea/kT) · t^n`, where `S` is the
//! workload-dependent stress factor (gate duty cycle for NBTI, switching
//! activity for HCI). The paper's point (Sec. II) is that foundries hold the
//! *calibrated* version of such models confidential; LORI's HDC/ML models
//! learn to mimic this "golden" model from samples (experiment E6).

use crate::error::CircuitError;
use lori_core::units::{Celsius, Seconds, Volts};

/// Boltzmann constant in eV/K.
const K_B_EV: f64 = 8.617_333e-5;

/// The stress a device experiences, derived from its workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressProfile {
    /// Fraction of time the PMOS gate is under NBTI stress (input low),
    /// in `[0, 1]`.
    pub duty_cycle: f64,
    /// Switching activity: transitions per cycle, in `[0, 1]` (HCI stress).
    pub activity: f64,
    /// Operating temperature of the device (including self-heating).
    pub temperature: Celsius,
}

impl StressProfile {
    /// Creates a stress profile.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] if duty cycle or activity
    /// are outside `[0, 1]`.
    pub fn new(duty_cycle: f64, activity: f64, temperature: Celsius) -> Result<Self, CircuitError> {
        if !(0.0..=1.0).contains(&duty_cycle) || duty_cycle.is_nan() {
            return Err(CircuitError::InvalidParameter {
                what: "duty_cycle",
                value: duty_cycle,
            });
        }
        if !(0.0..=1.0).contains(&activity) || activity.is_nan() {
            return Err(CircuitError::InvalidParameter {
                what: "activity",
                value: activity,
            });
        }
        Ok(StressProfile {
            duty_cycle,
            activity,
            temperature,
        })
    }
}

/// Parameters of one aging mechanism's power law.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MechanismParams {
    /// Pre-factor `A` (volts at 1 second, unit stress, infinite temperature).
    pub prefactor: f64,
    /// Stress exponent β.
    pub stress_exponent: f64,
    /// Activation energy `Ea` in eV.
    pub activation_energy_ev: f64,
    /// Time exponent `n` (≈ 0.16–0.25 for NBTI, ≈ 0.45 for HCI).
    pub time_exponent: f64,
}

/// A combined NBTI + HCI aging model.
///
/// ```
/// use lori_circuit::aging::{AgingModel, StressProfile};
/// use lori_core::units::{Celsius, Seconds};
///
/// # fn main() -> Result<(), lori_circuit::CircuitError> {
/// let model = AgingModel::default();
/// let stress = StressProfile::new(0.5, 0.2, Celsius(85.0))?;
/// let dvth = model.delta_vth(&stress, Seconds::from_years(10.0));
/// // A decade of moderate stress costs tens of millivolts.
/// assert!(dvth.value() > 0.01 && dvth.value() < 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingModel {
    /// NBTI parameters (duty-cycle driven).
    pub nbti: MechanismParams,
    /// HCI parameters (activity driven).
    pub hci: MechanismParams,
}

impl Default for AgingModel {
    /// Calibrated so that 10 years at 50 % duty / 20 % activity / 85 °C
    /// costs ≈ 40–50 mV — the magnitude regime guardband studies work in.
    fn default() -> Self {
        AgingModel {
            nbti: MechanismParams {
                prefactor: 0.006,
                stress_exponent: 0.5,
                activation_energy_ev: 0.06,
                time_exponent: 0.2,
            },
            hci: MechanismParams {
                prefactor: 1.0e-4,
                stress_exponent: 0.8,
                activation_energy_ev: 0.03,
                time_exponent: 0.35,
            },
        }
    }
}

impl AgingModel {
    /// NBTI contribution to ΔVth after `t` under `stress`.
    #[must_use]
    pub fn nbti_delta_vth(&self, stress: &StressProfile, t: Seconds) -> Volts {
        Volts(mechanism_shift(
            &self.nbti,
            stress.duty_cycle,
            stress.temperature,
            t,
        ))
    }

    /// HCI contribution to ΔVth after `t` under `stress`.
    #[must_use]
    pub fn hci_delta_vth(&self, stress: &StressProfile, t: Seconds) -> Volts {
        Volts(mechanism_shift(
            &self.hci,
            stress.activity,
            stress.temperature,
            t,
        ))
    }

    /// Total ΔVth (NBTI + HCI are assumed additive to first order).
    #[must_use]
    pub fn delta_vth(&self, stress: &StressProfile, t: Seconds) -> Volts {
        self.nbti_delta_vth(stress, t) + self.hci_delta_vth(stress, t)
    }
}

fn mechanism_shift(p: &MechanismParams, stress: f64, temp: Celsius, t: Seconds) -> f64 {
    if stress <= 0.0 || t.value() <= 0.0 {
        return 0.0;
    }
    let t_k = temp.as_absolute_kelvin();
    p.prefactor
        * stress.powf(p.stress_exponent)
        * (-p.activation_energy_ev / (K_B_EV * t_k)).exp()
        * t.value().powf(p.time_exponent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stress(duty: f64, act: f64, t: f64) -> StressProfile {
        StressProfile::new(duty, act, Celsius(t)).unwrap()
    }

    #[test]
    fn stress_profile_validation() {
        assert!(StressProfile::new(-0.1, 0.5, Celsius(25.0)).is_err());
        assert!(StressProfile::new(0.5, 1.5, Celsius(25.0)).is_err());
        assert!(StressProfile::new(f64::NAN, 0.5, Celsius(25.0)).is_err());
        assert!(StressProfile::new(0.0, 0.0, Celsius(25.0)).is_ok());
    }

    #[test]
    fn ten_year_shift_in_expected_regime() {
        let m = AgingModel::default();
        let d = m.delta_vth(&stress(0.5, 0.2, 85.0), Seconds::from_years(10.0));
        assert!(
            d.value() > 0.02 && d.value() < 0.15,
            "10-year ΔVth = {} V",
            d.value()
        );
    }

    #[test]
    fn shift_is_monotone_in_time() {
        let m = AgingModel::default();
        let s = stress(0.5, 0.2, 85.0);
        let mut prev = 0.0;
        for years in [0.1, 1.0, 3.0, 10.0] {
            let d = m.delta_vth(&s, Seconds::from_years(years)).value();
            assert!(d > prev);
            prev = d;
        }
    }

    #[test]
    fn shift_is_monotone_in_stress() {
        let m = AgingModel::default();
        let t = Seconds::from_years(5.0);
        let low = m.delta_vth(&stress(0.1, 0.1, 85.0), t).value();
        let high = m.delta_vth(&stress(0.9, 0.9, 85.0), t).value();
        assert!(high > low);
    }

    #[test]
    fn hotter_ages_faster() {
        let m = AgingModel::default();
        let t = Seconds::from_years(5.0);
        let cool = m.delta_vth(&stress(0.5, 0.2, 25.0), t).value();
        let hot = m.delta_vth(&stress(0.5, 0.2, 125.0), t).value();
        assert!(hot > cool, "hot {hot} cool {cool}");
    }

    #[test]
    fn zero_stress_means_zero_shift() {
        let m = AgingModel::default();
        let d = m.delta_vth(&stress(0.0, 0.0, 85.0), Seconds::from_years(10.0));
        assert_eq!(d.value(), 0.0);
    }

    #[test]
    fn zero_time_means_zero_shift() {
        let m = AgingModel::default();
        let d = m.delta_vth(&stress(0.5, 0.5, 85.0), Seconds(0.0));
        assert_eq!(d.value(), 0.0);
    }

    #[test]
    fn nbti_dominates_under_static_stress() {
        // Pure duty-cycle stress, no switching: NBTI > HCI.
        let m = AgingModel::default();
        let s = stress(0.9, 0.01, 85.0);
        let t = Seconds::from_years(5.0);
        assert!(m.nbti_delta_vth(&s, t).value() > m.hci_delta_vth(&s, t).value());
    }

    #[test]
    fn sublinear_in_time() {
        // Power law with n < 1: doubling time less than doubles the shift.
        let m = AgingModel::default();
        let s = stress(0.5, 0.2, 85.0);
        let d1 = m.delta_vth(&s, Seconds::from_years(1.0)).value();
        let d2 = m.delta_vth(&s, Seconds::from_years(2.0)).value();
        assert!(d2 < 2.0 * d1);
        assert!(d2 > d1);
    }
}
