//! Library characterization flows.
//!
//! Three characterizations mirror the paper's Fig. 3:
//!
//! 1. [`characterize_library`] — the conventional flow: golden-model sweeps
//!    over a (slew × load) grid at one corner (temperature, ΔVth), producing
//!    NLDM delay/slew tables.
//! 2. [`characterize_library_with_she`] — SHE-aware: at every grid point the
//!    device temperature is raised by its *own* self-heating ΔT before the
//!    golden run, so the tables embed the SHE feedback.
//! 3. [`she_as_delay_library`] — the Fig. 3 trick: a library whose *delay*
//!    slots contain the SHE temperatures. Running conventional STA with this
//!    library produces an "SDF" whose numbers are per-instance SHE
//!    temperatures rather than delays.

use crate::cell::{cell_name, CellKind, Library, StandardCell, DRIVE_STRENGTHS};
use crate::error::CircuitError;
use crate::lut::Lut2d;
use crate::she::SheModel;
use crate::spicelike::{GoldenSimulator, OperatingPoint};
use lori_core::units::{Celsius, Volts};
use lori_par::Parallelism;

/// Default input-slew grid in ps.
pub const DEFAULT_SLEWS: [f64; 6] = [5.0, 10.0, 20.0, 40.0, 80.0, 160.0];
/// Default output-load grid in fF.
pub const DEFAULT_LOADS: [f64; 6] = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0];

/// A characterization corner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// Chip (ambient die) temperature.
    pub chip_temperature: Celsius,
    /// Uniform aging shift applied to every device.
    pub delta_vth: Volts,
}

impl Default for Corner {
    fn default() -> Self {
        Corner {
            chip_temperature: Celsius(65.0),
            delta_vth: Volts(0.0),
        }
    }
}

/// Characterizes one cell at a corner, optionally with per-point SHE.
fn characterize_cell(
    sim: &GoldenSimulator,
    kind: CellKind,
    drive: f64,
    corner: &Corner,
    she: Option<&SheModel>,
) -> Result<StandardCell, CircuitError> {
    let slews = DEFAULT_SLEWS.to_vec();
    let loads = DEFAULT_LOADS.to_vec();
    let mut delay = vec![vec![0.0; loads.len()]; slews.len()];
    let mut out_slew = vec![vec![0.0; loads.len()]; slews.len()];
    for (i, &s) in slews.iter().enumerate() {
        for (j, &l) in loads.iter().enumerate() {
            let dt = she.map_or(0.0, |m| m.delta_t(drive, s, l, m.default_activity).value());
            let op = OperatingPoint {
                slew_ps: s,
                load_ff: l,
                temperature: Celsius(corner.chip_temperature.value() + dt),
                delta_vth: corner.delta_vth,
            };
            let t = sim.characterize(kind, drive, &op);
            if !t.delay_ps.is_finite() {
                return Err(CircuitError::InvalidParameter {
                    what: "corner produced non-switching cell",
                    value: corner.delta_vth.value(),
                });
            }
            if !t.out_slew_ps.is_finite() {
                lori_fault::detected("circuit.characterize");
                return Err(CircuitError::NonFinite {
                    site: "circuit.characterize",
                    what: "out_slew_ps",
                });
            }
            delay[i][j] = t.delay_ps;
            out_slew[i][j] = t.out_slew_ps;
        }
    }
    Ok(StandardCell {
        name: cell_name(kind, drive),
        kind,
        drive,
        pin_cap_ff: kind.pin_cap_factor() * sim.tech().unit_pin_cap_ff * drive,
        delay: Lut2d::new(slews.clone(), loads.clone(), delay)?,
        out_slew: Lut2d::new(slews, loads, out_slew)?,
    })
}

/// Characterizes the full built-in catalog (12 kinds × 5 drives = 60 cells)
/// at a corner with the conventional flow (no SHE feedback), fanning cells
/// out over the process-default worker pool ([`lori_par::global`]).
///
/// # Errors
///
/// Propagates characterization failures (e.g. a corner so aged that cells
/// stop switching).
pub fn characterize_library(
    sim: &GoldenSimulator,
    corner: &Corner,
) -> Result<Library, CircuitError> {
    build_library(sim, corner, None, lori_par::global())
}

/// [`characterize_library`] with an explicit worker pool.
///
/// # Errors
///
/// Same as [`characterize_library`].
pub fn characterize_library_par(
    sim: &GoldenSimulator,
    corner: &Corner,
    par: Parallelism,
) -> Result<Library, CircuitError> {
    build_library(sim, corner, None, par)
}

/// Characterizes the catalog with per-operating-point self-heating applied
/// (the upper path of Fig. 3 with SHE folded into the timing).
///
/// # Errors
///
/// Propagates characterization failures.
pub fn characterize_library_with_she(
    sim: &GoldenSimulator,
    corner: &Corner,
    she: &SheModel,
) -> Result<Library, CircuitError> {
    she.validate()?;
    build_library(sim, corner, Some(she), lori_par::global())
}

/// [`characterize_library_with_she`] with an explicit worker pool.
///
/// # Errors
///
/// Same as [`characterize_library_with_she`].
pub fn characterize_library_with_she_par(
    sim: &GoldenSimulator,
    corner: &Corner,
    she: &SheModel,
    par: Parallelism,
) -> Result<Library, CircuitError> {
    she.validate()?;
    build_library(sim, corner, Some(she), par)
}

fn build_library(
    sim: &GoldenSimulator,
    corner: &Corner,
    she: Option<&SheModel>,
    par: Parallelism,
) -> Result<Library, CircuitError> {
    // The golden sweeps per cell are pure functions of (kind, drive,
    // corner, she), so the per-cell fan-out is deterministic by
    // construction; cells are inserted in catalog order afterwards, which
    // keeps CellId assignment identical to the serial flow. The first
    // error in catalog order wins, matching serial short-circuiting.
    let catalog: Vec<(CellKind, f64)> = CellKind::ALL
        .into_iter()
        .flat_map(|kind| DRIVE_STRENGTHS.into_iter().map(move |drive| (kind, drive)))
        .collect();
    let _span = lori_obs::span("circuit.characterize_library");
    let progress = lori_obs::Progress::start("characterize", catalog.len() as u64);
    // `panic@circuit.characterize:<N>` faults the N-th catalog cell; the
    // index is the deterministic catalog position, so the same cell faults
    // under any worker count.
    let cells = lori_par::par_map(par, &catalog, |ci, &(kind, drive)| {
        #[allow(clippy::cast_possible_truncation)]
        lori_fault::check_panic("circuit.characterize", ci as u64);
        let cell = characterize_cell(sim, kind, drive, corner, she);
        progress.tick();
        cell
    });
    drop(progress);
    let mut lib = Library::new();
    for cell in cells {
        lib.add(cell?)?;
    }
    Ok(lib)
}

/// Builds the Fig.-3 "temperatures in the delay slots" library: cells whose
/// delay LUT holds the SHE ΔT (in K) for each (slew, load) point and whose
/// output-slew LUT is copied from a timing library so slew propagation in
/// STA still behaves. An STA run with this library reports per-instance SHE
/// instead of delays.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidParameter`] via SHE validation, or grid
/// errors.
pub fn she_as_delay_library(
    timing_library: &Library,
    she: &SheModel,
) -> Result<Library, CircuitError> {
    she.validate()?;
    let mut lib = Library::new();
    for (_, cell) in timing_library.iter() {
        let slews = cell.delay.slews().to_vec();
        let loads = cell.delay.loads().to_vec();
        let mut values = vec![vec![0.0; loads.len()]; slews.len()];
        for (i, &s) in slews.iter().enumerate() {
            for (j, &l) in loads.iter().enumerate() {
                values[i][j] = she.delta_t(cell.drive, s, l, she.default_activity).value();
            }
        }
        lib.add(StandardCell {
            name: cell.name.clone(),
            kind: cell.kind,
            drive: cell.drive,
            pin_cap_ff: cell.pin_cap_ff,
            delay: Lut2d::new(slews, loads, values)?,
            out_slew: cell.out_slew.clone(),
        })?;
    }
    Ok(lib)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::TechParams;

    fn sim() -> GoldenSimulator {
        GoldenSimulator::new(TechParams::default()).unwrap()
    }

    #[test]
    fn catalog_has_sixty_cells() {
        let lib = characterize_library(&sim(), &Corner::default()).unwrap();
        assert_eq!(lib.len(), 60);
        assert!(lib.find("INV_X1").is_some());
        assert!(lib.find("MAJ3_X8").is_some());
    }

    #[test]
    fn tables_are_monotone_in_load() {
        let lib = characterize_library(&sim(), &Corner::default()).unwrap();
        let inv = lib.cell(lib.find("INV_X1").unwrap());
        let (d_small, _) = inv.timing(20.0, 1.0);
        let (d_big, _) = inv.timing(20.0, 8.0);
        assert!(d_big > d_small);
    }

    #[test]
    fn she_library_is_slower_than_plain() {
        let s = sim();
        let plain = characterize_library(&s, &Corner::default()).unwrap();
        let she =
            characterize_library_with_she(&s, &Corner::default(), &SheModel::default()).unwrap();
        // SHE heats devices, so delays must be >= everywhere we sample.
        let a = plain.cell(plain.find("NAND2_X1").unwrap());
        let b = she.cell(she.find("NAND2_X1").unwrap());
        let (da, _) = a.timing(40.0, 8.0);
        let (db, _) = b.timing(40.0, 8.0);
        assert!(db > da, "with SHE {db} vs plain {da}");
    }

    #[test]
    fn aged_corner_is_slower() {
        let s = sim();
        let fresh = characterize_library(&s, &Corner::default()).unwrap();
        let aged_corner = Corner {
            delta_vth: Volts(0.05),
            ..Corner::default()
        };
        let aged = characterize_library(&s, &aged_corner).unwrap();
        let f = fresh.cell(fresh.find("XOR2_X2").unwrap());
        let a = aged.cell(aged.find("XOR2_X2").unwrap());
        assert!(a.timing(20.0, 4.0).0 > f.timing(20.0, 4.0).0);
    }

    #[test]
    fn she_as_delay_holds_temperatures() {
        let s = sim();
        let timing = characterize_library(&s, &Corner::default()).unwrap();
        let she_lib = she_as_delay_library(&timing, &SheModel::default()).unwrap();
        assert_eq!(she_lib.len(), timing.len());
        let cell = she_lib.cell(she_lib.find("INV_X1").unwrap());
        // "Delays" are now kelvin in the Fig.-2 regime, not ps.
        let (dt, _) = cell.timing(40.0, 8.0);
        assert!(dt > 0.0 && dt < 60.0, "ΔT {dt}");
        // Hotter at higher load.
        assert!(cell.timing(40.0, 16.0).0 > cell.timing(40.0, 1.0).0);
    }

    #[test]
    fn catastrophic_corner_fails_cleanly() {
        let s = sim();
        let dead = Corner {
            delta_vth: Volts(0.6),
            ..Corner::default()
        };
        assert!(characterize_library(&s, &dead).is_err());
        // Errors surface under parallel characterization too.
        assert!(characterize_library_par(&s, &dead, Parallelism::new(4)).is_err());
    }

    #[test]
    fn parallel_characterize_bit_identical_to_serial() {
        let s = sim();
        let corner = Corner::default();
        let serial = characterize_library_par(&s, &corner, Parallelism::serial()).unwrap();
        let parallel = characterize_library_par(&s, &corner, Parallelism::new(4)).unwrap();
        // Full-struct equality: identical cell order (CellIds), names, and
        // bit-identical LUT contents.
        assert_eq!(serial, parallel);

        let she = SheModel::default();
        let serial_she =
            characterize_library_with_she_par(&s, &corner, &she, Parallelism::serial()).unwrap();
        let parallel_she =
            characterize_library_with_she_par(&s, &corner, &she, Parallelism::new(4)).unwrap();
        assert_eq!(serial_she, parallel_she);
    }
}
