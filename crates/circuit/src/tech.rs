//! Technology parameters and the alpha-power-law device model.
//!
//! The golden characterization engine ([`crate::spicelike`]) and the
//! self-heating model are built on this: drive current follows Sakurai's
//! alpha-power law `I ∝ (V_gs − V_th)^α` with temperature-dependent mobility
//! and threshold voltage, which captures the first-order dependencies that
//! matter for reliability analysis (delay grows with ΔVth, with temperature
//! at nominal V_dd, with load, and with input slew).

use crate::error::CircuitError;
use lori_core::units::{Celsius, Volts};

/// Technology/device parameters shared by all cells of a library.
#[derive(Debug, Clone, PartialEq)]
pub struct TechParams {
    /// Nominal supply voltage.
    pub vdd: Volts,
    /// Fresh (unaged) threshold voltage at the reference temperature.
    pub vth0: Volts,
    /// Alpha-power-law velocity-saturation exponent (≈1.2–1.5 for modern
    /// nodes).
    pub alpha: f64,
    /// Reference temperature for mobility/threshold parameters.
    pub t_ref: Celsius,
    /// Mobility temperature exponent: `µ(T) = µ0 (T/T_ref)^(−m)`.
    pub mobility_exponent: f64,
    /// Threshold temperature coefficient in V/K (V_th drops as T rises).
    pub vth_temp_coeff: f64,
    /// Drive-current scale of a unit-width device, in µA at
    /// `(V_gs − V_th) = 1 V` overdrive.
    pub unit_current_ua: f64,
    /// Input pin capacitance of a unit-width device, in fF.
    pub unit_pin_cap_ff: f64,
}

impl Default for TechParams {
    /// A 7-nm-class FinFET-flavoured parameter set (values chosen for
    /// realistic *trends*, not to match any foundry PDK).
    fn default() -> Self {
        TechParams {
            vdd: Volts(0.8),
            vth0: Volts(0.30),
            alpha: 1.3,
            t_ref: Celsius(25.0),
            mobility_exponent: 1.5,
            vth_temp_coeff: 8.0e-4,
            unit_current_ua: 60.0,
            unit_pin_cap_ff: 0.9,
        }
    }
}

impl TechParams {
    /// Validates physical sanity of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] if V_dd ≤ V_th0, either
    /// voltage is non-positive, or scale parameters are non-positive.
    pub fn validate(&self) -> Result<(), CircuitError> {
        if self.vdd.value() <= 0.0 {
            return Err(CircuitError::InvalidParameter {
                what: "vdd",
                value: self.vdd.value(),
            });
        }
        if self.vth0.value() <= 0.0 || self.vth0.value() >= self.vdd.value() {
            return Err(CircuitError::InvalidParameter {
                what: "vth0",
                value: self.vth0.value(),
            });
        }
        if self.alpha < 1.0 || self.alpha > 2.0 {
            return Err(CircuitError::InvalidParameter {
                what: "alpha",
                value: self.alpha,
            });
        }
        if self.unit_current_ua <= 0.0 {
            return Err(CircuitError::InvalidParameter {
                what: "unit_current_ua",
                value: self.unit_current_ua,
            });
        }
        if self.unit_pin_cap_ff <= 0.0 {
            return Err(CircuitError::InvalidParameter {
                what: "unit_pin_cap_ff",
                value: self.unit_pin_cap_ff,
            });
        }
        Ok(())
    }

    /// Effective threshold voltage at temperature `t` with aging shift
    /// `delta_vth` applied.
    #[must_use]
    pub fn vth_at(&self, t: Celsius, delta_vth: Volts) -> Volts {
        Volts(
            self.vth0.value() - self.vth_temp_coeff * (t.value() - self.t_ref.value())
                + delta_vth.value(),
        )
    }

    /// Saturation drive current (µA) of a device of `width` (in unit widths)
    /// at temperature `t` and aging shift `delta_vth`, for gate overdrive at
    /// full rail. Returns 0 if the device no longer turns on.
    #[must_use]
    pub fn drive_current_ua(&self, width: f64, t: Celsius, delta_vth: Volts) -> f64 {
        let vth = self.vth_at(t, delta_vth).value();
        let overdrive = self.vdd.value() - vth;
        if overdrive <= 0.0 {
            return 0.0;
        }
        let t_k = t.as_absolute_kelvin();
        let t_ref_k = self.t_ref.as_absolute_kelvin();
        let mobility_factor = (t_k / t_ref_k).powf(-self.mobility_exponent);
        self.unit_current_ua * width * mobility_factor * overdrive.powf(self.alpha)
    }

    /// First-order gate delay (ps) of a stage driving `load_ff` femtofarads
    /// with a device of `width` unit widths: `t ≈ C·V_dd / (2·I_d)`.
    ///
    /// Returns `f64::INFINITY` when the device cannot switch (fully aged /
    /// over-threshold), which downstream guardband analysis treats as a
    /// failure.
    #[must_use]
    pub fn rc_delay_ps(&self, width: f64, load_ff: f64, t: Celsius, delta_vth: Volts) -> f64 {
        let i = self.drive_current_ua(width, t, delta_vth);
        if i <= 0.0 {
            return f64::INFINITY;
        }
        // fF · V / µA = ns·1e-3 = ps
        1000.0 * load_ff * self.vdd.value() / (2.0 * i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        TechParams::default().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_params() {
        let p = TechParams {
            vth0: Volts(1.0),
            ..TechParams::default()
        };
        assert!(p.validate().is_err());
        let p = TechParams {
            vdd: Volts(0.0),
            ..TechParams::default()
        };
        assert!(p.validate().is_err());
        let p = TechParams {
            alpha: 3.0,
            ..TechParams::default()
        };
        assert!(p.validate().is_err());
        let p = TechParams {
            unit_current_ua: 0.0,
            ..TechParams::default()
        };
        assert!(p.validate().is_err());
        let p = TechParams {
            unit_pin_cap_ff: -1.0,
            ..TechParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn aging_raises_vth_and_delay() {
        let p = TechParams::default();
        let fresh = p.rc_delay_ps(1.0, 5.0, Celsius(25.0), Volts(0.0));
        let aged = p.rc_delay_ps(1.0, 5.0, Celsius(25.0), Volts(0.05));
        assert!(aged > fresh, "aged {aged} fresh {fresh}");
    }

    #[test]
    fn temperature_slows_gates_at_nominal_vdd() {
        // Mobility degradation dominates Vth reduction at 0.8 V / 0.3 Vth.
        let p = TechParams::default();
        let cold = p.rc_delay_ps(1.0, 5.0, Celsius(25.0), Volts(0.0));
        let hot = p.rc_delay_ps(1.0, 5.0, Celsius(100.0), Volts(0.0));
        assert!(hot > cold, "hot {hot} cold {cold}");
    }

    #[test]
    fn wider_devices_are_faster() {
        let p = TechParams::default();
        let x1 = p.rc_delay_ps(1.0, 5.0, Celsius(25.0), Volts(0.0));
        let x4 = p.rc_delay_ps(4.0, 5.0, Celsius(25.0), Volts(0.0));
        assert!((x1 / x4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn delay_scales_linearly_with_load() {
        let p = TechParams::default();
        let small = p.rc_delay_ps(1.0, 2.0, Celsius(25.0), Volts(0.0));
        let large = p.rc_delay_ps(1.0, 8.0, Celsius(25.0), Volts(0.0));
        assert!((large / small - 4.0).abs() < 1e-9);
    }

    #[test]
    fn dead_device_has_infinite_delay() {
        let p = TechParams::default();
        // ΔVth pushes Vth beyond Vdd.
        let d = p.rc_delay_ps(1.0, 5.0, Celsius(25.0), Volts(1.0));
        assert!(d.is_infinite());
        assert_eq!(p.drive_current_ua(1.0, Celsius(25.0), Volts(1.0)), 0.0);
    }

    #[test]
    fn vth_at_tracks_temperature_and_aging() {
        let p = TechParams::default();
        let base = p.vth_at(Celsius(25.0), Volts(0.0)).value();
        assert!((base - 0.30).abs() < 1e-12);
        let hot = p.vth_at(Celsius(125.0), Volts(0.0)).value();
        assert!(hot < base);
        let aged = p.vth_at(Celsius(25.0), Volts(0.04)).value();
        assert!((aged - 0.34).abs() < 1e-12);
    }
}
