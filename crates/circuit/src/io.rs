//! A plain-text structural netlist format (writer + parser).
//!
//! One statement per line:
//!
//! ```text
//! # comment
//! input n0
//! gate NAND2_X1 n5 = n0 n1 @0.25
//! output n5
//! ```
//!
//! `gate CELLNAME out = in1 in2 ... [@activity]` — the cell name must exist
//! in the library the netlist is parsed against. Net names are `n<digits>`
//! where the digits are the dense [`crate::netlist::NetId`] index; the
//! format round-trips exactly.

use crate::cell::Library;
use crate::error::CircuitError;
use crate::netlist::{NetId, Netlist};
use std::fmt::Write as _;

/// Serializes a netlist to the text format.
#[must_use]
pub fn write_netlist(netlist: &Netlist, lib: &Library) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# lori netlist: {} instances",
        netlist.instance_count()
    );
    for &ni in netlist.primary_inputs() {
        let _ = writeln!(out, "input n{}", ni.0);
    }
    // Instances in topological-friendly creation order (instance order is
    // creation order, and outputs are allocated after inputs).
    for inst in netlist.instances() {
        let cell = lib.cell(inst.cell);
        let _ = write!(out, "gate {} n{} =", cell.name, inst.output.0);
        for &i in &inst.inputs {
            let _ = write!(out, " n{}", i.0);
        }
        let _ = writeln!(out, " @{}", inst.activity);
    }
    for &no in netlist.primary_outputs() {
        let _ = writeln!(out, "output n{}", no.0);
    }
    out
}

/// Parses the text format against a library.
///
/// # Errors
///
/// Returns [`CircuitError::UnknownCell`] for unknown cell names or
/// malformed statements, and [`CircuitError::DanglingReference`] for net
/// references that never get defined.
pub fn parse_netlist(text: &str, lib: &Library) -> Result<Netlist, CircuitError> {
    let mut netlist = Netlist::new();
    // Map from file net index -> actual NetId (they coincide when the file
    // was produced by write_netlist, but the parser tolerates any order of
    // definition as long as uses follow definitions).
    let mut net_map: std::collections::HashMap<usize, NetId> = std::collections::HashMap::new();
    let parse_net = |token: &str| -> Result<usize, CircuitError> {
        token
            .strip_prefix('n')
            .and_then(|d| d.parse::<usize>().ok())
            .ok_or_else(|| CircuitError::UnknownCell(format!("bad net token {token}")))
    };
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("input") => {
                let name = tokens.next().ok_or_else(|| {
                    CircuitError::UnknownCell(format!("line {lineno}: missing input net"))
                })?;
                let file_id = parse_net(name)?;
                let id = netlist.add_input();
                net_map.insert(file_id, id);
            }
            Some("gate") => {
                let cell_name = tokens.next().ok_or_else(|| {
                    CircuitError::UnknownCell(format!("line {lineno}: missing cell name"))
                })?;
                let cell = lib
                    .find(cell_name)
                    .ok_or_else(|| CircuitError::UnknownCell(cell_name.to_owned()))?;
                let out_tok = tokens.next().ok_or_else(|| {
                    CircuitError::UnknownCell(format!("line {lineno}: missing output net"))
                })?;
                let out_file_id = parse_net(out_tok)?;
                match tokens.next() {
                    Some("=") => {}
                    _ => {
                        return Err(CircuitError::UnknownCell(format!(
                            "line {lineno}: expected '='"
                        )))
                    }
                }
                let mut inputs = Vec::new();
                let mut activity = 0.15;
                for tok in tokens {
                    if let Some(a) = tok.strip_prefix('@') {
                        activity = a.parse::<f64>().map_err(|_| {
                            CircuitError::UnknownCell(format!("line {lineno}: bad activity {tok}"))
                        })?;
                    } else {
                        let file_id = parse_net(tok)?;
                        let net = net_map.get(&file_id).copied().ok_or(
                            CircuitError::DanglingReference {
                                what: "net",
                                index: file_id,
                            },
                        )?;
                        inputs.push(net);
                    }
                }
                let out = netlist.add_gate_with_activity(cell, &inputs, activity);
                net_map.insert(out_file_id, out);
            }
            Some("output") => {
                let name = tokens.next().ok_or_else(|| {
                    CircuitError::UnknownCell(format!("line {lineno}: missing output net"))
                })?;
                let file_id = parse_net(name)?;
                let net =
                    net_map
                        .get(&file_id)
                        .copied()
                        .ok_or(CircuitError::DanglingReference {
                            what: "output net",
                            index: file_id,
                        })?;
                netlist.mark_output(net);
            }
            Some(other) => {
                return Err(CircuitError::UnknownCell(format!(
                    "line {lineno}: unknown statement '{other}'"
                )))
            }
            None => {}
        }
    }
    netlist.validate(lib)?;
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_library, Corner};
    use crate::netlist::{random_logic, ripple_carry_adder};
    use crate::spicelike::GoldenSimulator;
    use crate::tech::TechParams;
    use std::sync::OnceLock;

    fn lib() -> &'static Library {
        static LIB: OnceLock<Library> = OnceLock::new();
        LIB.get_or_init(|| {
            let sim = GoldenSimulator::new(TechParams::default()).unwrap();
            characterize_library(&sim, &Corner::default()).unwrap()
        })
    }

    #[test]
    fn roundtrip_preserves_structure_and_function() {
        let original = ripple_carry_adder(lib(), 4).unwrap();
        let text = write_netlist(&original, lib());
        let parsed = parse_netlist(&text, lib()).unwrap();
        assert_eq!(parsed.instance_count(), original.instance_count());
        assert_eq!(
            parsed.primary_inputs().len(),
            original.primary_inputs().len()
        );
        assert_eq!(
            parsed.primary_outputs().len(),
            original.primary_outputs().len()
        );
        // Logic function must be identical.
        for trial in 0..16u64 {
            let inputs: Vec<bool> = (0..9).map(|b| (trial >> b) & 1 == 1).collect();
            assert_eq!(
                original.evaluate(lib(), &inputs).unwrap(),
                parsed.evaluate(lib(), &inputs).unwrap(),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn roundtrip_preserves_activity() {
        let original = random_logic(lib(), 8, 60, 3).unwrap();
        let text = write_netlist(&original, lib());
        let parsed = parse_netlist(&text, lib()).unwrap();
        for (a, b) in original.instances().iter().zip(parsed.instances()) {
            assert!((a.activity - b.activity).abs() < 1e-9);
            assert_eq!(a.cell, b.cell);
        }
    }

    #[test]
    fn parser_rejects_unknown_cell() {
        let text = "input n0\ngate FROB_X1 n1 = n0\noutput n1\n";
        assert!(matches!(
            parse_netlist(text, lib()),
            Err(CircuitError::UnknownCell(_))
        ));
    }

    #[test]
    fn parser_rejects_use_before_definition() {
        let text = "input n0\ngate INV_X1 n1 = n99\noutput n1\n";
        assert!(matches!(
            parse_netlist(text, lib()),
            Err(CircuitError::DanglingReference { .. })
        ));
    }

    #[test]
    fn parser_rejects_malformed_statements() {
        assert!(parse_netlist("bogus n0\n", lib()).is_err());
        assert!(parse_netlist("gate INV_X1 n1 n0\n", lib()).is_err());
        assert!(parse_netlist("input\n", lib()).is_err());
        assert!(parse_netlist("gate INV_X1 n1 = n0 @zork\ninput n0\n", lib()).is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\ninput n0\n# mid\ngate INV_X1 n1 = n0 @0.2\noutput n1\n";
        let nl = parse_netlist(text, lib()).unwrap();
        assert_eq!(nl.instance_count(), 1);
        assert!((nl.instances()[0].activity - 0.2).abs() < 1e-12);
    }

    #[test]
    fn parser_rejects_bad_arity_via_validate() {
        // NAND2 with one input parses but fails netlist validation.
        let text = "input n0\ngate NAND2_X1 n1 = n0\noutput n1\n";
        assert!(parse_netlist(text, lib()).is_err());
    }
}
