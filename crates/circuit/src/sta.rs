//! Static timing analysis.
//!
//! A single-corner, max-delay STA: topological arrival-time and slew
//! propagation over the netlist, NLDM lookups per instance, per-net loads
//! from sink pin capacitances plus a simple wire model, critical-path
//! extraction, and SDF-style export.
//!
//! Three run modes:
//!
//! - [`run_sta`] — library lookup per instance (conventional flow);
//! - [`run_sta_with_overrides`] — per-instance delay/slew values, which is
//!   how instance-specific "libraries of thousands of cells" (Fig. 3, lower
//!   path) plug in without string lookups on the hot path;
//! - [`StaEngine`] — the incremental engine both wrappers are built on: it
//!   keeps arrival/slew/load state alive between runs and, on edit,
//!   re-times only the affected fanout cone via a topo-ordered worklist
//!   with exact-equality early termination. Every report it produces is
//!   bit-identical to a from-scratch pass — determinism is the contract,
//!   checked by the randomized edit-schedule suite and the CI
//!   `LORI_STA=legacy` byte-compare job.

use crate::cell::{CellId, Library};
use crate::error::CircuitError;
use crate::netlist::{Driver, InstId, NetId, Netlist, NetlistEdit};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Write as _;

/// STA configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StaConfig {
    /// Transition time assumed at primary inputs, in ps.
    pub input_slew_ps: f64,
    /// Wire capacitance added per fanout pin, in fF.
    pub wire_cap_per_fanout_ff: f64,
    /// Fixed wire capacitance per net, in fF.
    pub wire_cap_base_ff: f64,
    /// Load modeled on primary-output nets, in fF.
    pub output_load_ff: f64,
}

impl Default for StaConfig {
    fn default() -> Self {
        StaConfig {
            input_slew_ps: 20.0,
            wire_cap_per_fanout_ff: 0.25,
            wire_cap_base_ff: 0.1,
            output_load_ff: 2.0,
        }
    }
}

/// Per-instance timing override (delay and output slew in ps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceTiming {
    /// Propagation delay in ps.
    pub delay_ps: f64,
    /// Output slew in ps.
    pub out_slew_ps: f64,
}

/// The result of an STA run.
#[derive(Debug, Clone, PartialEq)]
pub struct StaReport {
    /// Arrival time per net (ps). Primary inputs arrive at 0.
    pub arrival_ps: Vec<f64>,
    /// Transition time per net (ps).
    pub slew_ps: Vec<f64>,
    /// Delay used for each instance (ps).
    pub instance_delay_ps: Vec<f64>,
    /// Input slew seen by each instance (worst input, ps).
    pub instance_input_slew_ps: Vec<f64>,
    /// Capacitive load driven by each instance (fF).
    pub instance_load_ff: Vec<f64>,
    /// Longest-path arrival over all primary outputs (ps).
    pub max_arrival_ps: f64,
    /// Instances along the critical path, source to sink.
    pub critical_path: Vec<InstId>,
}

impl StaReport {
    /// Required clock period for this circuit with the given setup margin.
    #[must_use]
    pub fn min_period_ps(&self, setup_margin_ps: f64) -> f64 {
        self.max_arrival_ps + setup_margin_ps
    }

    /// SDF-flavoured text dump: one line per instance with its delay. For a
    /// library produced by
    /// [`crate::characterize::she_as_delay_library`], these numbers are SHE
    /// temperatures instead of delays — exactly the Fig. 3 trick.
    #[must_use]
    pub fn to_sdf(&self, netlist: &Netlist, lib: &Library) -> String {
        let mut out = String::new();
        out.push_str("(DELAYFILE (SDFVERSION \"lori-3.0\")\n");
        for (i, inst) in netlist.instances().iter().enumerate() {
            let cell = lib.cell(inst.cell);
            let _ = writeln!(
                out,
                "  (CELL (CELLTYPE \"{}\") (INSTANCE u{}) (DELAY (ABSOLUTE (IOPATH i z ({:.4})))))",
                cell.name, i, self.instance_delay_ps[i]
            );
        }
        out.push_str(")\n");
        out
    }
}

/// Computes the capacitive load of one net from the CSR sink index: base
/// wire cap, one `pin + wire` term per sink pin in (instance, pin) order,
/// then the primary-output load once per marking. The accumulation order
/// matches the legacy whole-netlist scan exactly, so full and incremental
/// load computations agree to the last bit.
fn net_load(netlist: &Netlist, lib: &Library, config: &StaConfig, net: NetId) -> f64 {
    let mut load = config.wire_cap_base_ff;
    let index = netlist.index();
    for &sink in index.sink_pins(net) {
        let pin = lib.cell(netlist.instances()[sink.0].cell).pin_cap_ff;
        load += pin + config.wire_cap_per_fanout_ff;
    }
    for _ in 0..index.po_count(net) {
        load += config.output_load_ff;
    }
    load
}

/// Computes the capacitive load on every net, in one pass over the index.
fn net_loads(netlist: &Netlist, lib: &Library, config: &StaConfig) -> Vec<f64> {
    (0..netlist.net_count())
        .map(|n| net_load(netlist, lib, config, NetId(n)))
        .collect()
}

/// Runs a full STA pass with library lookups.
///
/// A thin wrapper over [`StaEngine::new`]: one engine build, one report.
///
/// # Errors
///
/// Propagates netlist validation and topological-order errors.
pub fn run_sta(
    netlist: &Netlist,
    lib: &Library,
    config: &StaConfig,
) -> Result<StaReport, CircuitError> {
    Ok(StaEngine::new(netlist, lib, config)?.into_report())
}

/// Runs a full STA pass with per-instance timing overrides (one entry per
/// instance). A thin wrapper over [`StaEngine::with_overrides`].
///
/// # Errors
///
/// Returns [`CircuitError::DanglingReference`] if `overrides.len()` differs
/// from the instance count, plus the usual validation errors.
pub fn run_sta_with_overrides(
    netlist: &Netlist,
    lib: &Library,
    config: &StaConfig,
    overrides: &[InstanceTiming],
) -> Result<StaReport, CircuitError> {
    Ok(StaEngine::with_overrides(netlist, lib, config, overrides)?.into_report())
}

/// The values one instance evaluation produces.
struct InstEval {
    worst_in: usize,
    in_slew: f64,
    delay: f64,
    out_slew: f64,
}

/// Evaluates one instance against the current arrival/slew/load state.
/// This is THE timing formula: the full pass and the incremental retime
/// both call it, which is what makes their results bit-identical.
#[inline]
fn eval_instance(
    netlist: &Netlist,
    lib: &Library,
    arrival: &[f64],
    slew: &[f64],
    load: f64,
    ov: Option<InstanceTiming>,
    inst_id: InstId,
) -> Result<InstEval, CircuitError> {
    let inst = &netlist.instances()[inst_id.0];
    // Worst (latest) input and worst slew.
    let (&worst_in, _) = inst
        .inputs
        .iter()
        .map(|n| (n, arrival[n.0]))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("cells have at least one input");
    let in_slew = inst.inputs.iter().map(|n| slew[n.0]).fold(0.0f64, f64::max);

    let (delay, out_slew) = match ov {
        Some(t) => (t.delay_ps, t.out_slew_ps),
        None => lib.cell(inst.cell).timing(in_slew, load),
    };
    // Layer-boundary NaN guard: a corrupted library read (real, or an
    // injected nan@circuit.lut) must surface as a typed error here,
    // not silently propagate NaN arrivals into timing reports.
    if !delay.is_finite() || !out_slew.is_finite() {
        lori_fault::detected("circuit.lut");
        return Err(CircuitError::NonFinite {
            site: "circuit.lut",
            what: if delay.is_finite() {
                "out_slew"
            } else {
                "delay"
            },
        });
    }
    Ok(InstEval {
        worst_in: worst_in.0,
        in_slew,
        delay,
        out_slew,
    })
}

/// Incremental static-timing engine.
///
/// One full pass at construction ([`StaEngine::new`] /
/// [`StaEngine::with_overrides`]) establishes per-net arrival/slew, per-net
/// loads, per-instance delay/slew-in/load, and the critical path. After
/// that, edits re-time only the affected fanout cone:
///
/// - [`StaEngine::set_timing`] / [`StaEngine::clear_timing`] /
///   [`StaEngine::set_all_timings`] change per-instance overrides (the
///   Fig.-3 instance-specific-library path) and seed the edited instances;
/// - [`StaEngine::swap_cell`] rebinds a cell, recomputes the loads of its
///   input nets from the CSR index, and seeds their drivers;
/// - [`StaEngine::refresh`] drains the netlist's timing-only dirty-set.
///
/// Seeded instances propagate through a worklist ordered by cached
/// topological position; propagation stops at any net whose (arrival,
/// slew) recompute to bit-identical values, which keeps single-edit cones
/// small. Every quantity is recomputed with exactly the full-pass formula
/// ([`eval_instance`], [`net_load`]), so [`StaEngine::report`] is always
/// bit-identical to a from-scratch pass over the same netlist state.
///
/// The engine detects staleness: structural netlist edits (tracked by
/// [`Netlist::generation`]) and failed edits (a non-finite override caught
/// mid-retime) poison it, and every subsequent call returns
/// [`CircuitError::StaleEngine`] until it is rebuilt.
#[derive(Debug, Clone)]
pub struct StaEngine {
    config: StaConfig,
    generation: u64,
    // Per-net state.
    loads: Vec<f64>,
    arrival: Vec<f64>,
    slew: Vec<f64>,
    from_net: Vec<Option<usize>>,
    // Per-instance state.
    inst_delay: Vec<f64>,
    inst_slew_in: Vec<f64>,
    inst_load: Vec<f64>,
    overrides: Vec<Option<InstanceTiming>>,
    // Endpoint state.
    max_arrival: f64,
    critical_path: Vec<InstId>,
    // Worklist scratch, persisted across retimes to avoid reallocation.
    queued: Vec<bool>,
    heap: BinaryHeap<Reverse<(u32, usize)>>,
    // Lifetime instance-evaluation counter (full pass + retimes).
    evals: u64,
    poisoned: bool,
}

impl StaEngine {
    /// Builds an engine with library timing for every instance (one full
    /// STA pass).
    ///
    /// # Errors
    ///
    /// Propagates netlist validation and topological-order errors.
    pub fn new(
        netlist: &Netlist,
        lib: &Library,
        config: &StaConfig,
    ) -> Result<StaEngine, CircuitError> {
        Self::build(netlist, lib, config, &|_| None)
    }

    /// Builds an engine with a dense per-instance override set (one full
    /// STA pass) — the from-scratch reference for
    /// [`run_sta_with_overrides`].
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DanglingReference`] on a length mismatch,
    /// plus the usual validation errors.
    pub fn with_overrides(
        netlist: &Netlist,
        lib: &Library,
        config: &StaConfig,
        overrides: &[InstanceTiming],
    ) -> Result<StaEngine, CircuitError> {
        if overrides.len() != netlist.instance_count() {
            return Err(CircuitError::DanglingReference {
                what: "override",
                index: overrides.len(),
            });
        }
        Self::build(netlist, lib, config, &|i| Some(overrides[i]))
    }

    /// Builds an engine with a sparse override set (one full STA pass):
    /// `None` entries use library timing. This is the from-scratch
    /// reference the equivalence tests compare incremental state against.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DanglingReference`] on a length mismatch,
    /// plus the usual validation errors.
    pub fn with_sparse_overrides(
        netlist: &Netlist,
        lib: &Library,
        config: &StaConfig,
        overrides: &[Option<InstanceTiming>],
    ) -> Result<StaEngine, CircuitError> {
        if overrides.len() != netlist.instance_count() {
            return Err(CircuitError::DanglingReference {
                what: "override",
                index: overrides.len(),
            });
        }
        Self::build(netlist, lib, config, &|i| overrides[i])
    }

    fn build(
        netlist: &Netlist,
        lib: &Library,
        config: &StaConfig,
        override_of: &dyn Fn(usize) -> Option<InstanceTiming>,
    ) -> Result<StaEngine, CircuitError> {
        let _span = lori_obs::span("circuit.sta.run");
        netlist.validate_cached(lib)?;
        let index = netlist.index();
        let loads = net_loads(netlist, lib, config);

        let n_nets = netlist.net_count();
        let mut arrival = vec![0.0f64; n_nets];
        let mut slew = vec![config.input_slew_ps; n_nets];
        // Which net determined each net's arrival (for path walking).
        let mut from_net: Vec<Option<usize>> = vec![None; n_nets];

        let n_inst = netlist.instance_count();
        let mut inst_delay = vec![0.0f64; n_inst];
        let mut inst_slew_in = vec![0.0f64; n_inst];
        let mut inst_load = vec![0.0f64; n_inst];
        let mut overrides = vec![None; n_inst];

        for &inst_id in index.topo()? {
            let i = inst_id.0;
            let out = netlist.instances()[i].output.0;
            let load = loads[out];
            overrides[i] = override_of(i);
            let e = eval_instance(netlist, lib, &arrival, &slew, load, overrides[i], inst_id)?;
            inst_delay[i] = e.delay;
            inst_slew_in[i] = e.in_slew;
            inst_load[i] = load;
            arrival[out] = arrival[e.worst_in] + e.delay;
            slew[out] = e.out_slew;
            from_net[out] = Some(e.worst_in);
        }
        lori_obs::counter("circuit.sta.instances").incr(n_inst as u64);

        let mut engine = StaEngine {
            config: config.clone(),
            generation: netlist.generation(),
            loads,
            arrival,
            slew,
            from_net,
            inst_delay,
            inst_slew_in,
            inst_load,
            overrides,
            max_arrival: 0.0,
            critical_path: Vec::new(),
            queued: vec![false; n_inst],
            heap: BinaryHeap::new(),
            evals: n_inst as u64,
            poisoned: false,
        };
        engine.update_endpoint(netlist);
        Ok(engine)
    }

    /// Recomputes the critical endpoint and path from current arrivals —
    /// exactly the legacy full-pass selection: the latest primary output,
    /// falling back to the global max for netlists without marked outputs.
    fn update_endpoint(&mut self, netlist: &Netlist) {
        let arrival = &self.arrival;
        let endpoint = netlist
            .primary_outputs()
            .iter()
            .map(|n| n.0)
            .max_by(|&a, &b| arrival[a].total_cmp(&arrival[b]))
            .or_else(|| (0..arrival.len()).max_by(|&a, &b| arrival[a].total_cmp(&arrival[b])));
        match endpoint {
            Some(end) => {
                let mut path = Vec::new();
                let mut cursor = Some(end);
                while let Some(net) = cursor {
                    if let Some(Driver::Instance(inst)) = netlist.driver(NetId(net)) {
                        path.push(inst);
                    }
                    cursor = self.from_net[net];
                }
                path.reverse();
                self.max_arrival = arrival[end];
                self.critical_path = path;
            }
            None => {
                self.max_arrival = 0.0;
                self.critical_path = Vec::new();
            }
        }
    }

    /// Guards every edit entry point: a poisoned engine or a structurally
    /// changed netlist can only mislead.
    fn check_live(&self, netlist: &Netlist) -> Result<(), CircuitError> {
        if self.poisoned {
            return Err(CircuitError::StaleEngine("a previous edit failed"));
        }
        if netlist.generation() != self.generation {
            return Err(CircuitError::StaleEngine("netlist structure changed"));
        }
        Ok(())
    }

    fn check_instance(&self, inst: InstId) -> Result<(), CircuitError> {
        if inst.0 >= self.inst_delay.len() {
            return Err(CircuitError::DanglingReference {
                what: "instance",
                index: inst.0,
            });
        }
        Ok(())
    }

    fn seed(&mut self, netlist: &Netlist, inst: InstId) {
        if !self.queued[inst.0] {
            self.queued[inst.0] = true;
            self.heap
                .push(Reverse((netlist.index().topo_pos(inst), inst.0)));
        }
    }

    /// Processes the worklist in topological order, stopping propagation
    /// at bit-identical (arrival, slew) recomputes, then refreshes the
    /// endpoint. On error the engine is poisoned.
    fn retime(&mut self, netlist: &Netlist, lib: &Library) -> Result<(), CircuitError> {
        let _span = lori_obs::span("circuit.sta.retime");
        let mut evals = 0u64;
        while let Some(Reverse((_, i))) = self.heap.pop() {
            self.queued[i] = false;
            let inst_id = InstId(i);
            let out = netlist.instances()[i].output.0;
            let load = self.loads[out];
            let e = match eval_instance(
                netlist,
                lib,
                &self.arrival,
                &self.slew,
                load,
                self.overrides[i],
                inst_id,
            ) {
                Ok(e) => e,
                Err(err) => {
                    // Arrivals downstream of already-applied updates are
                    // now inconsistent; refuse all further use.
                    self.poisoned = true;
                    self.heap.clear();
                    self.queued.fill(false);
                    return Err(err);
                }
            };
            evals += 1;
            self.inst_delay[i] = e.delay;
            self.inst_slew_in[i] = e.in_slew;
            self.inst_load[i] = load;

            let new_arrival = self.arrival[e.worst_in] + e.delay;
            let changed = self.arrival[out].to_bits() != new_arrival.to_bits()
                || self.slew[out].to_bits() != e.out_slew.to_bits();
            self.arrival[out] = new_arrival;
            self.slew[out] = e.out_slew;
            // from_net may move on arrival ties without changing any
            // downstream number; updating it in place keeps path walks
            // identical to a from-scratch pass.
            self.from_net[out] = Some(e.worst_in);
            if changed {
                let index = netlist.index();
                let mut last = usize::MAX;
                for &sink in index.sink_pins(NetId(out)) {
                    if sink.0 != last {
                        last = sink.0;
                        self.seed(netlist, sink);
                    }
                }
            }
        }
        self.evals += evals;
        lori_obs::counter("circuit.sta.retimed").incr(evals);
        self.update_endpoint(netlist);
        Ok(())
    }

    /// Sets one instance's timing override and re-times its cone.
    ///
    /// # Errors
    ///
    /// [`CircuitError::StaleEngine`] on a poisoned/outdated engine,
    /// [`CircuitError::DanglingReference`] for a bad id,
    /// [`CircuitError::NonFinite`] for a non-finite override (which also
    /// poisons the engine).
    pub fn set_timing(
        &mut self,
        netlist: &Netlist,
        lib: &Library,
        inst: InstId,
        timing: InstanceTiming,
    ) -> Result<(), CircuitError> {
        self.check_live(netlist)?;
        self.check_instance(inst)?;
        self.overrides[inst.0] = Some(timing);
        self.seed(netlist, inst);
        self.retime(netlist, lib)
    }

    /// Removes one instance's override (back to library timing) and
    /// re-times its cone.
    ///
    /// # Errors
    ///
    /// Same as [`StaEngine::set_timing`].
    pub fn clear_timing(
        &mut self,
        netlist: &Netlist,
        lib: &Library,
        inst: InstId,
    ) -> Result<(), CircuitError> {
        self.check_live(netlist)?;
        self.check_instance(inst)?;
        self.overrides[inst.0] = None;
        self.seed(netlist, inst);
        self.retime(netlist, lib)
    }

    /// Replaces the whole override set (one entry per instance), seeding
    /// only the instances whose override actually changed — the engine
    /// path `flow::run_she_flow` uses between its accurate and worst-case
    /// corners.
    ///
    /// # Errors
    ///
    /// Same as [`StaEngine::set_timing`], plus
    /// [`CircuitError::DanglingReference`] on a length mismatch.
    pub fn set_all_timings(
        &mut self,
        netlist: &Netlist,
        lib: &Library,
        overrides: &[InstanceTiming],
    ) -> Result<(), CircuitError> {
        self.check_live(netlist)?;
        if overrides.len() != self.overrides.len() {
            return Err(CircuitError::DanglingReference {
                what: "override",
                index: overrides.len(),
            });
        }
        // Bitwise comparison, not `==`: skipping a -0.0 -> 0.0 change
        // could leave a last-bit difference against a from-scratch pass.
        let same = |a: Option<InstanceTiming>, b: InstanceTiming| {
            a.is_some_and(|a| {
                a.delay_ps.to_bits() == b.delay_ps.to_bits()
                    && a.out_slew_ps.to_bits() == b.out_slew_ps.to_bits()
            })
        };
        for (i, &t) in overrides.iter().enumerate() {
            if !same(self.overrides[i], t) {
                self.overrides[i] = Some(t);
                self.seed(netlist, InstId(i));
            }
        }
        self.retime(netlist, lib)
    }

    /// Applies a cell swap/resize through the netlist's edit API and
    /// re-times: the loads of the instance's input nets are recomputed
    /// from the CSR index and their drivers re-timed along with the
    /// instance itself.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownCell`] if the new cell's arity differs (the
    /// netlist is left unmodified), plus the [`StaEngine::set_timing`]
    /// errors.
    pub fn swap_cell(
        &mut self,
        netlist: &mut Netlist,
        lib: &Library,
        inst: InstId,
        cell: CellId,
    ) -> Result<(), CircuitError> {
        self.check_live(netlist)?;
        self.check_instance(inst)?;
        if cell.0 >= lib.len() {
            return Err(CircuitError::DanglingReference {
                what: "cell",
                index: cell.0,
            });
        }
        let arity = netlist.instances()[inst.0].inputs.len();
        let kind = lib.cell(cell).kind;
        if arity != kind.input_count() {
            return Err(CircuitError::UnknownCell(format!(
                "swap to {} needs {} inputs, instance has {}",
                lib.cell(cell).name,
                kind.input_count(),
                arity
            )));
        }
        netlist.swap_cell(inst, cell)?;
        self.refresh(netlist, lib)
    }

    /// Drains the netlist's timing-only dirty-set and re-times the
    /// affected cones. Cell edits move the loads of the instance's input
    /// nets, so those nets' drivers are seeded too; activity edits are
    /// absorbed without any re-timing (activity never enters STA).
    ///
    /// # Errors
    ///
    /// [`CircuitError::StaleEngine`] on a poisoned/outdated engine,
    /// [`CircuitError::UnknownCell`] if a swapped cell's arity no longer
    /// matches (poisons the engine — the netlist already changed),
    /// [`CircuitError::NonFinite`] for non-finite timing (also poisons).
    pub fn refresh(&mut self, netlist: &mut Netlist, lib: &Library) -> Result<(), CircuitError> {
        self.check_live(netlist)?;
        let edits = netlist.take_dirty();
        for edit in edits {
            match edit {
                NetlistEdit::Cell(inst) => self.apply_cell_edit(netlist, lib, inst)?,
                NetlistEdit::Activity(_) => {}
            }
        }
        self.retime(netlist, lib)
    }

    fn apply_cell_edit(
        &mut self,
        netlist: &Netlist,
        lib: &Library,
        inst: InstId,
    ) -> Result<(), CircuitError> {
        self.check_instance(inst)?;
        let instance = &netlist.instances()[inst.0];
        if instance.cell.0 >= lib.len() {
            self.poisoned = true;
            return Err(CircuitError::DanglingReference {
                what: "cell",
                index: instance.cell.0,
            });
        }
        let kind = lib.cell(instance.cell).kind;
        if instance.inputs.len() != kind.input_count() {
            // The netlist was already mutated into an invalid state; the
            // engine can no longer trust its cached timing.
            self.poisoned = true;
            return Err(CircuitError::UnknownCell(format!(
                "instance of {} has {} inputs, expected {}",
                lib.cell(instance.cell).name,
                instance.inputs.len(),
                kind.input_count()
            )));
        }
        // New pin caps move the loads of the nets this instance taps;
        // each such net's driver sees a different load and must re-time.
        // Input lists are tiny (<= 3 pins), so the duplicate-net dedup is
        // a linear scan.
        for (p, &net) in instance.inputs.iter().enumerate() {
            if instance.inputs[..p].contains(&net) {
                continue;
            }
            let new_load = net_load(netlist, lib, &self.config, net);
            if self.loads[net.0].to_bits() != new_load.to_bits() {
                self.loads[net.0] = new_load;
                if let Some(Driver::Instance(driver)) = netlist.driver(net) {
                    self.seed(netlist, driver);
                }
            }
        }
        // And the instance itself: its timing surfaces changed.
        self.seed(netlist, inst);
        Ok(())
    }

    /// The current longest-path arrival over all primary outputs (ps).
    #[must_use]
    pub fn max_arrival_ps(&self) -> f64 {
        self.max_arrival
    }

    /// The current critical path, source to sink.
    #[must_use]
    pub fn critical_path(&self) -> &[InstId] {
        &self.critical_path
    }

    /// Lifetime count of instance evaluations (full pass + every retime).
    /// The incremental win is this number staying near the edit count
    /// instead of `edits x instance_count`.
    #[must_use]
    pub fn instance_evals(&self) -> u64 {
        self.evals
    }

    /// Materializes the current timing state as a report, bit-identical
    /// to a from-scratch pass over the same netlist state.
    #[must_use]
    pub fn report(&self) -> StaReport {
        StaReport {
            arrival_ps: self.arrival.clone(),
            slew_ps: self.slew.clone(),
            instance_delay_ps: self.inst_delay.clone(),
            instance_input_slew_ps: self.inst_slew_in.clone(),
            instance_load_ff: self.inst_load.clone(),
            max_arrival_ps: self.max_arrival,
            critical_path: self.critical_path.clone(),
        }
    }

    /// Consumes the engine into a report without copying the state.
    #[must_use]
    pub fn into_report(self) -> StaReport {
        StaReport {
            arrival_ps: self.arrival,
            slew_ps: self.slew,
            instance_delay_ps: self.inst_delay,
            instance_input_slew_ps: self.inst_slew_in,
            instance_load_ff: self.inst_load,
            max_arrival_ps: self.max_arrival,
            critical_path: self.critical_path,
        }
    }
}

/// Guardband analysis: compares a nominal and a degraded (aged / heated)
/// report for the same netlist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Guardband {
    /// Nominal critical-path delay (ps).
    pub nominal_ps: f64,
    /// Degraded critical-path delay (ps).
    pub degraded_ps: f64,
}

impl Guardband {
    /// Derives a guardband from two reports.
    #[must_use]
    pub fn from_reports(nominal: &StaReport, degraded: &StaReport) -> Guardband {
        Guardband {
            nominal_ps: nominal.max_arrival_ps,
            degraded_ps: degraded.max_arrival_ps,
        }
    }

    /// Absolute margin that must be added to the nominal period (ps).
    #[must_use]
    pub fn margin_ps(&self) -> f64 {
        (self.degraded_ps - self.nominal_ps).max(0.0)
    }

    /// Relative margin (fraction of nominal).
    #[must_use]
    pub fn relative(&self) -> f64 {
        if self.nominal_ps <= 0.0 {
            0.0
        } else {
            self.margin_ps() / self.nominal_ps
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_library, Corner};
    use crate::netlist::{random_logic, ripple_carry_adder};
    use crate::spicelike::GoldenSimulator;
    use crate::tech::TechParams;
    use lori_core::units::Volts;
    use std::sync::OnceLock;

    fn lib() -> &'static Library {
        static LIB: OnceLock<Library> = OnceLock::new();
        LIB.get_or_init(|| {
            let sim = GoldenSimulator::new(TechParams::default()).unwrap();
            characterize_library(&sim, &Corner::default()).unwrap()
        })
    }

    #[test]
    fn adder_delay_scales_with_width() {
        let cfg = StaConfig::default();
        let d4 = run_sta(&ripple_carry_adder(lib(), 4).unwrap(), lib(), &cfg)
            .unwrap()
            .max_arrival_ps;
        let d16 = run_sta(&ripple_carry_adder(lib(), 16).unwrap(), lib(), &cfg)
            .unwrap()
            .max_arrival_ps;
        assert!(d16 > 2.0 * d4, "4-bit {d4} ps vs 16-bit {d16} ps");
    }

    #[test]
    fn critical_path_is_carry_chain() {
        let nl = ripple_carry_adder(lib(), 8).unwrap();
        let report = run_sta(&nl, lib(), &StaConfig::default()).unwrap();
        // The carry chain has one MAJ3 per bit; the path should be long.
        assert!(
            report.critical_path.len() >= 8,
            "path length {}",
            report.critical_path.len()
        );
        // Path arrivals must be non-decreasing along the path.
        let mut prev = 0.0;
        for inst in &report.critical_path {
            let out = nl.instances()[inst.0].output;
            assert!(report.arrival_ps[out.0] >= prev);
            prev = report.arrival_ps[out.0];
        }
    }

    #[test]
    fn arrivals_are_nonnegative_and_finite() {
        let nl = random_logic(lib(), 12, 300, 9).unwrap();
        let report = run_sta(&nl, lib(), &StaConfig::default()).unwrap();
        for &a in &report.arrival_ps {
            assert!(a.is_finite() && a >= 0.0);
        }
        assert!(report.max_arrival_ps > 0.0);
    }

    #[test]
    fn overrides_change_timing() {
        let nl = ripple_carry_adder(lib(), 4).unwrap();
        let base = run_sta(&nl, lib(), &StaConfig::default()).unwrap();
        let overrides: Vec<InstanceTiming> = (0..nl.instance_count())
            .map(|_| InstanceTiming {
                delay_ps: 1.0,
                out_slew_ps: 10.0,
            })
            .collect();
        let fixed = run_sta_with_overrides(&nl, lib(), &StaConfig::default(), &overrides).unwrap();
        assert!(fixed.max_arrival_ps < base.max_arrival_ps);
        // Max arrival with unit delays = longest path in gate count.
        assert!((fixed.max_arrival_ps - fixed.critical_path.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn override_count_must_match() {
        let nl = ripple_carry_adder(lib(), 4).unwrap();
        assert!(run_sta_with_overrides(&nl, lib(), &StaConfig::default(), &[]).is_err());
    }

    #[test]
    fn aged_library_needs_guardband() {
        let sim = GoldenSimulator::new(TechParams::default()).unwrap();
        let aged_lib = characterize_library(
            &sim,
            &Corner {
                delta_vth: Volts(0.04),
                ..Corner::default()
            },
        )
        .unwrap();
        let nl = ripple_carry_adder(lib(), 8).unwrap();
        let cfg = StaConfig::default();
        let nominal = run_sta(&nl, lib(), &cfg).unwrap();
        let degraded = run_sta(&nl, &aged_lib, &cfg).unwrap();
        let gb = Guardband::from_reports(&nominal, &degraded);
        assert!(gb.margin_ps() > 0.0);
        assert!(gb.relative() > 0.0 && gb.relative() < 1.0);
    }

    #[test]
    fn sdf_export_mentions_every_instance() {
        let nl = ripple_carry_adder(lib(), 4).unwrap();
        let report = run_sta(&nl, lib(), &StaConfig::default()).unwrap();
        let sdf = report.to_sdf(&nl, lib());
        assert_eq!(
            sdf.matches("IOPATH").count(),
            nl.instance_count(),
            "one IOPATH per instance"
        );
        assert!(sdf.contains("XOR2_X1"));
    }

    #[test]
    fn min_period_adds_margin() {
        let nl = ripple_carry_adder(lib(), 4).unwrap();
        let report = run_sta(&nl, lib(), &StaConfig::default()).unwrap();
        assert!((report.min_period_ps(50.0) - report.max_arrival_ps - 50.0).abs() < 1e-12);
    }

    #[test]
    fn instance_features_populated() {
        let nl = ripple_carry_adder(lib(), 4).unwrap();
        let report = run_sta(&nl, lib(), &StaConfig::default()).unwrap();
        for i in 0..nl.instance_count() {
            assert!(report.instance_load_ff[i] > 0.0);
            assert!(report.instance_input_slew_ps[i] > 0.0);
            assert!(report.instance_delay_ps[i] > 0.0);
        }
    }
}
