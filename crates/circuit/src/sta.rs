//! Static timing analysis.
//!
//! A single-corner, max-delay STA: topological arrival-time and slew
//! propagation over the netlist, NLDM lookups per instance, per-net loads
//! from sink pin capacitances plus a simple wire model, critical-path
//! extraction, and SDF-style export.
//!
//! Two run modes:
//!
//! - [`run_sta`] — library lookup per instance (conventional flow);
//! - [`run_sta_with_overrides`] — per-instance delay/slew values, which is
//!   how instance-specific "libraries of thousands of cells" (Fig. 3, lower
//!   path) plug in without string lookups on the hot path.

use crate::cell::Library;
use crate::error::CircuitError;
use crate::netlist::{Driver, InstId, Netlist};
use std::fmt::Write as _;

/// STA configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StaConfig {
    /// Transition time assumed at primary inputs, in ps.
    pub input_slew_ps: f64,
    /// Wire capacitance added per fanout pin, in fF.
    pub wire_cap_per_fanout_ff: f64,
    /// Fixed wire capacitance per net, in fF.
    pub wire_cap_base_ff: f64,
    /// Load modeled on primary-output nets, in fF.
    pub output_load_ff: f64,
}

impl Default for StaConfig {
    fn default() -> Self {
        StaConfig {
            input_slew_ps: 20.0,
            wire_cap_per_fanout_ff: 0.25,
            wire_cap_base_ff: 0.1,
            output_load_ff: 2.0,
        }
    }
}

/// Per-instance timing override (delay and output slew in ps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceTiming {
    /// Propagation delay in ps.
    pub delay_ps: f64,
    /// Output slew in ps.
    pub out_slew_ps: f64,
}

/// The result of an STA run.
#[derive(Debug, Clone, PartialEq)]
pub struct StaReport {
    /// Arrival time per net (ps). Primary inputs arrive at 0.
    pub arrival_ps: Vec<f64>,
    /// Transition time per net (ps).
    pub slew_ps: Vec<f64>,
    /// Delay used for each instance (ps).
    pub instance_delay_ps: Vec<f64>,
    /// Input slew seen by each instance (worst input, ps).
    pub instance_input_slew_ps: Vec<f64>,
    /// Capacitive load driven by each instance (fF).
    pub instance_load_ff: Vec<f64>,
    /// Longest-path arrival over all primary outputs (ps).
    pub max_arrival_ps: f64,
    /// Instances along the critical path, source to sink.
    pub critical_path: Vec<InstId>,
}

impl StaReport {
    /// Required clock period for this circuit with the given setup margin.
    #[must_use]
    pub fn min_period_ps(&self, setup_margin_ps: f64) -> f64 {
        self.max_arrival_ps + setup_margin_ps
    }

    /// SDF-flavoured text dump: one line per instance with its delay. For a
    /// library produced by
    /// [`crate::characterize::she_as_delay_library`], these numbers are SHE
    /// temperatures instead of delays — exactly the Fig. 3 trick.
    #[must_use]
    pub fn to_sdf(&self, netlist: &Netlist, lib: &Library) -> String {
        let mut out = String::new();
        out.push_str("(DELAYFILE (SDFVERSION \"lori-3.0\")\n");
        for (i, inst) in netlist.instances().iter().enumerate() {
            let cell = lib.cell(inst.cell);
            let _ = writeln!(
                out,
                "  (CELL (CELLTYPE \"{}\") (INSTANCE u{}) (DELAY (ABSOLUTE (IOPATH i z ({:.4})))))",
                cell.name, i, self.instance_delay_ps[i]
            );
        }
        out.push_str(")\n");
        out
    }
}

/// Computes the capacitive load on every net.
fn net_loads(netlist: &Netlist, lib: &Library, config: &StaConfig) -> Vec<f64> {
    let mut loads = vec![config.wire_cap_base_ff; netlist.net_count()];
    for inst in netlist.instances() {
        let pin = lib.cell(inst.cell).pin_cap_ff;
        for &net in &inst.inputs {
            loads[net.0] += pin + config.wire_cap_per_fanout_ff;
        }
    }
    for &net in netlist.primary_outputs() {
        loads[net.0] += config.output_load_ff;
    }
    loads
}

/// Runs STA with library lookups.
///
/// # Errors
///
/// Propagates netlist validation and topological-order errors.
pub fn run_sta(
    netlist: &Netlist,
    lib: &Library,
    config: &StaConfig,
) -> Result<StaReport, CircuitError> {
    run_inner(netlist, lib, config, None)
}

/// Runs STA with per-instance timing overrides (one entry per instance).
///
/// # Errors
///
/// Returns [`CircuitError::DanglingReference`] if `overrides.len()` differs
/// from the instance count, plus the usual validation errors.
pub fn run_sta_with_overrides(
    netlist: &Netlist,
    lib: &Library,
    config: &StaConfig,
    overrides: &[InstanceTiming],
) -> Result<StaReport, CircuitError> {
    if overrides.len() != netlist.instance_count() {
        return Err(CircuitError::DanglingReference {
            what: "override",
            index: overrides.len(),
        });
    }
    run_inner(netlist, lib, config, Some(overrides))
}

fn run_inner(
    netlist: &Netlist,
    lib: &Library,
    config: &StaConfig,
    overrides: Option<&[InstanceTiming]>,
) -> Result<StaReport, CircuitError> {
    let _span = lori_obs::span("circuit.sta.run");
    netlist.validate(lib)?;
    let order = netlist.topological_order()?;
    let loads = net_loads(netlist, lib, config);

    let n_nets = netlist.net_count();
    let mut arrival = vec![0.0f64; n_nets];
    let mut slew = vec![config.input_slew_ps; n_nets];
    // Which net determined each net's arrival (for path walking).
    let mut from_net: Vec<Option<usize>> = vec![None; n_nets];

    let n_inst = netlist.instance_count();
    let mut inst_delay = vec![0.0f64; n_inst];
    let mut inst_slew_in = vec![0.0f64; n_inst];
    let mut inst_load = vec![0.0f64; n_inst];

    for inst_id in order {
        let inst = &netlist.instances()[inst_id.0];
        // Worst (latest) input and worst slew.
        let (&worst_in, _) = inst
            .inputs
            .iter()
            .map(|n| (n, arrival[n.0]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("cells have at least one input");
        let in_slew = inst.inputs.iter().map(|n| slew[n.0]).fold(0.0f64, f64::max);
        let load = loads[inst.output.0];

        let (delay, out_slew) = match overrides {
            Some(ov) => {
                let t = ov[inst_id.0];
                (t.delay_ps, t.out_slew_ps)
            }
            None => lib.cell(inst.cell).timing(in_slew, load),
        };
        // Layer-boundary NaN guard: a corrupted library read (real, or an
        // injected nan@circuit.lut) must surface as a typed error here,
        // not silently propagate NaN arrivals into timing reports.
        if !delay.is_finite() || !out_slew.is_finite() {
            lori_fault::detected("circuit.lut");
            return Err(CircuitError::NonFinite {
                site: "circuit.lut",
                what: if delay.is_finite() {
                    "out_slew"
                } else {
                    "delay"
                },
            });
        }

        inst_delay[inst_id.0] = delay;
        inst_slew_in[inst_id.0] = in_slew;
        inst_load[inst_id.0] = load;

        let out = inst.output.0;
        arrival[out] = arrival[worst_in.0] + delay;
        slew[out] = out_slew;
        from_net[out] = Some(worst_in.0);
    }
    lori_obs::counter("circuit.sta.instances").incr(n_inst as u64);

    // Critical endpoint: the latest primary output (fall back to global max
    // for netlists without marked outputs).
    let endpoint = netlist
        .primary_outputs()
        .iter()
        .map(|n| n.0)
        .max_by(|&a, &b| arrival[a].total_cmp(&arrival[b]))
        .or_else(|| (0..n_nets).max_by(|&a, &b| arrival[a].total_cmp(&arrival[b])));
    let (max_arrival, critical_path) = match endpoint {
        Some(end) => {
            let mut path = Vec::new();
            let mut cursor = Some(end);
            while let Some(net) = cursor {
                if let Some(Driver::Instance(inst)) = netlist.driver(crate::netlist::NetId(net)) {
                    path.push(inst);
                }
                cursor = from_net[net];
            }
            path.reverse();
            (arrival[end], path)
        }
        None => (0.0, Vec::new()),
    };

    Ok(StaReport {
        arrival_ps: arrival,
        slew_ps: slew,
        instance_delay_ps: inst_delay,
        instance_input_slew_ps: inst_slew_in,
        instance_load_ff: inst_load,
        max_arrival_ps: max_arrival,
        critical_path,
    })
}

/// Guardband analysis: compares a nominal and a degraded (aged / heated)
/// report for the same netlist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Guardband {
    /// Nominal critical-path delay (ps).
    pub nominal_ps: f64,
    /// Degraded critical-path delay (ps).
    pub degraded_ps: f64,
}

impl Guardband {
    /// Derives a guardband from two reports.
    #[must_use]
    pub fn from_reports(nominal: &StaReport, degraded: &StaReport) -> Guardband {
        Guardband {
            nominal_ps: nominal.max_arrival_ps,
            degraded_ps: degraded.max_arrival_ps,
        }
    }

    /// Absolute margin that must be added to the nominal period (ps).
    #[must_use]
    pub fn margin_ps(&self) -> f64 {
        (self.degraded_ps - self.nominal_ps).max(0.0)
    }

    /// Relative margin (fraction of nominal).
    #[must_use]
    pub fn relative(&self) -> f64 {
        if self.nominal_ps <= 0.0 {
            0.0
        } else {
            self.margin_ps() / self.nominal_ps
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_library, Corner};
    use crate::netlist::{random_logic, ripple_carry_adder};
    use crate::spicelike::GoldenSimulator;
    use crate::tech::TechParams;
    use lori_core::units::Volts;
    use std::sync::OnceLock;

    fn lib() -> &'static Library {
        static LIB: OnceLock<Library> = OnceLock::new();
        LIB.get_or_init(|| {
            let sim = GoldenSimulator::new(TechParams::default()).unwrap();
            characterize_library(&sim, &Corner::default()).unwrap()
        })
    }

    #[test]
    fn adder_delay_scales_with_width() {
        let cfg = StaConfig::default();
        let d4 = run_sta(&ripple_carry_adder(lib(), 4).unwrap(), lib(), &cfg)
            .unwrap()
            .max_arrival_ps;
        let d16 = run_sta(&ripple_carry_adder(lib(), 16).unwrap(), lib(), &cfg)
            .unwrap()
            .max_arrival_ps;
        assert!(d16 > 2.0 * d4, "4-bit {d4} ps vs 16-bit {d16} ps");
    }

    #[test]
    fn critical_path_is_carry_chain() {
        let nl = ripple_carry_adder(lib(), 8).unwrap();
        let report = run_sta(&nl, lib(), &StaConfig::default()).unwrap();
        // The carry chain has one MAJ3 per bit; the path should be long.
        assert!(
            report.critical_path.len() >= 8,
            "path length {}",
            report.critical_path.len()
        );
        // Path arrivals must be non-decreasing along the path.
        let mut prev = 0.0;
        for inst in &report.critical_path {
            let out = nl.instances()[inst.0].output;
            assert!(report.arrival_ps[out.0] >= prev);
            prev = report.arrival_ps[out.0];
        }
    }

    #[test]
    fn arrivals_are_nonnegative_and_finite() {
        let nl = random_logic(lib(), 12, 300, 9).unwrap();
        let report = run_sta(&nl, lib(), &StaConfig::default()).unwrap();
        for &a in &report.arrival_ps {
            assert!(a.is_finite() && a >= 0.0);
        }
        assert!(report.max_arrival_ps > 0.0);
    }

    #[test]
    fn overrides_change_timing() {
        let nl = ripple_carry_adder(lib(), 4).unwrap();
        let base = run_sta(&nl, lib(), &StaConfig::default()).unwrap();
        let overrides: Vec<InstanceTiming> = (0..nl.instance_count())
            .map(|_| InstanceTiming {
                delay_ps: 1.0,
                out_slew_ps: 10.0,
            })
            .collect();
        let fixed = run_sta_with_overrides(&nl, lib(), &StaConfig::default(), &overrides).unwrap();
        assert!(fixed.max_arrival_ps < base.max_arrival_ps);
        // Max arrival with unit delays = longest path in gate count.
        assert!((fixed.max_arrival_ps - fixed.critical_path.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn override_count_must_match() {
        let nl = ripple_carry_adder(lib(), 4).unwrap();
        assert!(run_sta_with_overrides(&nl, lib(), &StaConfig::default(), &[]).is_err());
    }

    #[test]
    fn aged_library_needs_guardband() {
        let sim = GoldenSimulator::new(TechParams::default()).unwrap();
        let aged_lib = characterize_library(
            &sim,
            &Corner {
                delta_vth: Volts(0.04),
                ..Corner::default()
            },
        )
        .unwrap();
        let nl = ripple_carry_adder(lib(), 8).unwrap();
        let cfg = StaConfig::default();
        let nominal = run_sta(&nl, lib(), &cfg).unwrap();
        let degraded = run_sta(&nl, &aged_lib, &cfg).unwrap();
        let gb = Guardband::from_reports(&nominal, &degraded);
        assert!(gb.margin_ps() > 0.0);
        assert!(gb.relative() > 0.0 && gb.relative() < 1.0);
    }

    #[test]
    fn sdf_export_mentions_every_instance() {
        let nl = ripple_carry_adder(lib(), 4).unwrap();
        let report = run_sta(&nl, lib(), &StaConfig::default()).unwrap();
        let sdf = report.to_sdf(&nl, lib());
        assert_eq!(
            sdf.matches("IOPATH").count(),
            nl.instance_count(),
            "one IOPATH per instance"
        );
        assert!(sdf.contains("XOR2_X1"));
    }

    #[test]
    fn min_period_adds_margin() {
        let nl = ripple_carry_adder(lib(), 4).unwrap();
        let report = run_sta(&nl, lib(), &StaConfig::default()).unwrap();
        assert!((report.min_period_ps(50.0) - report.max_arrival_ps - 50.0).abs() < 1e-12);
    }

    #[test]
    fn instance_features_populated() {
        let nl = ripple_carry_adder(lib(), 4).unwrap();
        let report = run_sta(&nl, lib(), &StaConfig::default()).unwrap();
        for i in 0..nl.instance_count() {
            assert!(report.instance_load_ff[i] > 0.0);
            assert!(report.instance_input_slew_ps[i] > 0.0);
            assert!(report.instance_delay_ps[i] > 0.0);
        }
    }
}
