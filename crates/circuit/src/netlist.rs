//! Gate-level netlists and circuit generators.
//!
//! A [`Netlist`] is a DAG of single-output cell instances over nets, with
//! primary inputs/outputs. Generators produce the processor-scale designs
//! the experiments run on: ripple-carry adders, array multipliers, random
//! control logic, and a composite "processor datapath" standing in for the
//! paper's RISC-V core case study (Fig. 2).
//!
//! The netlist carries an indexed graph core (see [`NetlistIndex`]): a
//! CSR-style sink index per net, primary-output multiplicities, and the
//! cached topological order. The index is built once on first use and
//! survives *timing-only* edits ([`Netlist::swap_cell`],
//! [`Netlist::set_activity`]), which instead land in a dirty-set that the
//! incremental STA engine (`crate::sta::StaEngine`) drains to re-time only
//! the affected fanout cones. Structural edits (adding nets, gates, or
//! outputs) bump a generation counter and drop the cached index, which
//! also invalidates any engine built on top of it.

use crate::cell::{CellId, CellKind, Library};
use crate::error::CircuitError;
use lori_core::Rng;
use std::sync::{Mutex, OnceLock};

/// Index of a net within a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub usize);

/// Index of an instance within a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub usize);

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// The net is a primary input.
    PrimaryInput,
    /// The net is driven by an instance's output.
    Instance(InstId),
}

/// A cell instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// The library cell this instance implements.
    pub cell: CellId,
    /// Input nets, in pin order.
    pub inputs: Vec<NetId>,
    /// Output net.
    pub output: NetId,
    /// Switching activity (transitions per cycle) for power/SHE/aging.
    pub activity: f64,
}

/// A timing-only netlist edit, recorded in the dirty-set for incremental
/// consumers (notably `crate::sta::StaEngine::refresh`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetlistEdit {
    /// The instance's cell binding changed (timing functions and input-pin
    /// capacitances — the loads of its input nets move with it).
    Cell(InstId),
    /// The instance's switching activity changed. Activity feeds power,
    /// SHE, and aging models but never STA, so this edit re-times nothing.
    Activity(InstId),
}

/// The indexed graph core of a netlist: CSR sink index, primary-output
/// multiplicities, and the cached topological order. Built lazily, shared
/// by `fanout`, `net_loads`, and the incremental STA engine; dropped on
/// any structural edit.
#[derive(Debug, Clone)]
pub(crate) struct NetlistIndex {
    /// CSR offsets into `sink_pins`, one slice per net (`net_count + 1`).
    sink_offsets: Vec<u32>,
    /// One entry per (instance, input pin) consuming the net, grouped by
    /// net in (instance, pin) order — the exact order the legacy
    /// `net_loads` scan visited them, which keeps float sums identical.
    sink_pins: Vec<InstId>,
    /// How many times each net appears in the primary-output list.
    po_count: Vec<u32>,
    /// Topological order of instances, or the cycle error.
    topo: Result<Vec<InstId>, CircuitError>,
    /// Position of each instance in `topo` (valid only when `topo` is Ok).
    topo_pos: Vec<u32>,
}

impl NetlistIndex {
    /// Per-pin sinks of a net, in (instance, pin) order. Out-of-range nets
    /// have no sinks.
    pub(crate) fn sink_pins(&self, net: NetId) -> &[InstId] {
        if net.0 + 1 >= self.sink_offsets.len() {
            return &[];
        }
        let lo = self.sink_offsets[net.0] as usize;
        let hi = self.sink_offsets[net.0 + 1] as usize;
        &self.sink_pins[lo..hi]
    }

    /// Number of times the net is marked as a primary output.
    pub(crate) fn po_count(&self, net: NetId) -> u32 {
        self.po_count.get(net.0).copied().unwrap_or(0)
    }

    /// The cached topological order.
    pub(crate) fn topo(&self) -> Result<&[InstId], CircuitError> {
        match &self.topo {
            Ok(order) => Ok(order),
            Err(err) => Err(err.clone()),
        }
    }

    /// Position of an instance in the topological order.
    pub(crate) fn topo_pos(&self, inst: InstId) -> u32 {
        self.topo_pos[inst.0]
    }
}

/// A cheap structural fingerprint of the library facts `validate` reads:
/// the cell count and, per cell, the logic kind (which fixes pin arity).
/// Two libraries with equal fingerprints validate identically against any
/// netlist, so the fingerprint is a sound cache key.
fn library_validation_fingerprint(lib: &Library) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for byte in lib.len().to_le_bytes() {
        eat(byte);
    }
    for (_, cell) in lib.iter() {
        for byte in cell.kind.prefix().bytes() {
            eat(byte);
        }
        eat(0xff);
    }
    h
}

/// A gate-level netlist.
#[derive(Debug, Default)]
pub struct Netlist {
    drivers: Vec<Option<Driver>>,
    instances: Vec<Instance>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    /// Bumped on every structural edit; incremental engines compare it to
    /// detect that their cached state no longer describes this netlist.
    generation: u64,
    /// Timing-only edits since the last `take_dirty` drain.
    dirty: Vec<NetlistEdit>,
    /// Lazily built graph index; dropped on structural edits.
    index: OnceLock<NetlistIndex>,
    /// Library fingerprints this structure has validated cleanly against.
    /// Cleared on structural and cell edits (activity cannot affect
    /// validation).
    validated: Mutex<Vec<u64>>,
}

impl Clone for Netlist {
    fn clone(&self) -> Self {
        Netlist {
            drivers: self.drivers.clone(),
            instances: self.instances.clone(),
            primary_inputs: self.primary_inputs.clone(),
            primary_outputs: self.primary_outputs.clone(),
            generation: self.generation,
            dirty: self.dirty.clone(),
            index: self.index.clone(),
            validated: Mutex::new(
                self.validated
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone(),
            ),
        }
    }
}

impl Netlist {
    /// An empty netlist.
    #[must_use]
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Invalidates every structure-derived cache. Called by all structural
    /// edits; timing-only edits must NOT call this (that is the point of
    /// the dirty-set).
    fn structural_edit(&mut self) {
        self.generation += 1;
        self.index.take();
        self.dirty.clear();
        self.validated
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }

    /// Adds a primary input net.
    pub fn add_input(&mut self) -> NetId {
        self.structural_edit();
        let id = NetId(self.drivers.len());
        self.drivers.push(Some(Driver::PrimaryInput));
        self.primary_inputs.push(id);
        id
    }

    /// Adds an instance of `cell` driven by `inputs`, returning its output
    /// net. `activity` defaults to 0.15 via [`Netlist::add_gate`].
    pub fn add_gate_with_activity(
        &mut self,
        cell: CellId,
        inputs: &[NetId],
        activity: f64,
    ) -> NetId {
        self.structural_edit();
        let out = NetId(self.drivers.len());
        self.drivers.push(None);
        let inst = InstId(self.instances.len());
        self.instances.push(Instance {
            cell,
            inputs: inputs.to_vec(),
            output: out,
            activity: activity.clamp(0.0, 1.0),
        });
        self.drivers[out.0] = Some(Driver::Instance(inst));
        out
    }

    /// Adds an instance with the default switching activity.
    pub fn add_gate(&mut self, cell: CellId, inputs: &[NetId]) -> NetId {
        self.add_gate_with_activity(cell, inputs, 0.15)
    }

    /// Marks a net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        self.structural_edit();
        self.primary_outputs.push(net);
    }

    /// The structural generation: bumped by every edit that changes the
    /// graph (nets, gates, outputs). Timing-only edits leave it untouched.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Rebinds an instance to a different library cell (resize / swap): a
    /// timing-only edit. The graph, the cached index, and the topological
    /// order all survive; the edit lands in the dirty-set for incremental
    /// consumers. The new cell must have the same pin arity — that is
    /// checked by `validate` and by the STA engine when the edit is
    /// consumed (this method has no library to check against).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DanglingReference`] for an out-of-range
    /// instance id.
    pub fn swap_cell(&mut self, inst: InstId, cell: CellId) -> Result<(), CircuitError> {
        let slot = self
            .instances
            .get_mut(inst.0)
            .ok_or(CircuitError::DanglingReference {
                what: "instance",
                index: inst.0,
            })?;
        slot.cell = cell;
        // A different cell may have a different arity: cached validation
        // verdicts no longer apply.
        self.validated
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        self.dirty.push(NetlistEdit::Cell(inst));
        Ok(())
    }

    /// Retunes an instance's switching activity (clamped to `[0, 1]`): a
    /// timing-only edit recorded in the dirty-set. Activity never enters
    /// STA, so consuming this edit re-times nothing.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DanglingReference`] for an out-of-range
    /// instance id.
    pub fn set_activity(&mut self, inst: InstId, activity: f64) -> Result<(), CircuitError> {
        let slot = self
            .instances
            .get_mut(inst.0)
            .ok_or(CircuitError::DanglingReference {
                what: "instance",
                index: inst.0,
            })?;
        slot.activity = activity.clamp(0.0, 1.0);
        self.dirty.push(NetlistEdit::Activity(inst));
        Ok(())
    }

    /// Drains the dirty-set of timing-only edits accumulated since the
    /// last drain. Single-consumer: the engine that drains it is the one
    /// that sees the edits.
    pub fn take_dirty(&mut self) -> Vec<NetlistEdit> {
        std::mem::take(&mut self.dirty)
    }

    /// The pending (undrained) timing-only edits.
    #[must_use]
    pub fn dirty(&self) -> &[NetlistEdit] {
        &self.dirty
    }

    /// The graph index, building it on first use.
    pub(crate) fn index(&self) -> &NetlistIndex {
        self.index.get_or_init(|| self.build_index())
    }

    fn build_index(&self) -> NetlistIndex {
        let n_nets = self.drivers.len();
        let n_inst = self.instances.len();

        // CSR sink index: count, prefix-sum, fill. Iterating instances in
        // id order (and pins in pin order) groups each net's entries in
        // (instance, pin) order. Out-of-range input nets (possible only in
        // netlists that fail validation) are skipped.
        let mut sink_offsets = vec![0u32; n_nets + 1];
        for inst in &self.instances {
            for &net in &inst.inputs {
                if net.0 < n_nets {
                    sink_offsets[net.0 + 1] += 1;
                }
            }
        }
        for i in 0..n_nets {
            sink_offsets[i + 1] += sink_offsets[i];
        }
        let mut cursor: Vec<u32> = sink_offsets[..n_nets].to_vec();
        let mut sink_pins = vec![InstId(0); sink_offsets[n_nets] as usize];
        for (i, inst) in self.instances.iter().enumerate() {
            for &net in &inst.inputs {
                if net.0 < n_nets {
                    sink_pins[cursor[net.0] as usize] = InstId(i);
                    cursor[net.0] += 1;
                }
            }
        }

        let mut po_count = vec![0u32; n_nets];
        for &net in &self.primary_outputs {
            if net.0 < n_nets {
                po_count[net.0] += 1;
            }
        }

        let topo = self.compute_topological_order();
        let mut topo_pos = vec![0u32; n_inst];
        if let Ok(order) = &topo {
            for (pos, inst) in order.iter().enumerate() {
                #[allow(clippy::cast_possible_truncation)]
                {
                    topo_pos[inst.0] = pos as u32;
                }
            }
        }

        NetlistIndex {
            sink_offsets,
            sink_pins,
            po_count,
            topo,
            topo_pos,
        }
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.drivers.len()
    }

    /// Number of instances.
    #[must_use]
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// The instances, indexed by [`InstId`].
    #[must_use]
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// The driver of a net (None for a malformed floating net).
    #[must_use]
    pub fn driver(&self, net: NetId) -> Option<Driver> {
        self.drivers.get(net.0).copied().flatten()
    }

    /// Primary inputs, in creation order.
    #[must_use]
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary outputs, in marking order.
    #[must_use]
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// The instances whose inputs include `net` (the net's fanout).
    ///
    /// Served from the CSR sink index in O(fanout) — the legacy
    /// implementation scanned every instance per call. An instance with
    /// several pins on the net appears once.
    #[must_use]
    pub fn fanout(&self, net: NetId) -> Vec<InstId> {
        let pins = self.index().sink_pins(net);
        let mut out = Vec::with_capacity(pins.len());
        for &inst in pins {
            // Same-instance pins are adjacent in the (instance, pin)-ordered
            // slice, so consecutive dedup is exact.
            if out.last() != Some(&inst) {
                out.push(inst);
            }
        }
        out
    }

    /// Validates the netlist against a library: pin arity, references, and
    /// drivers.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DanglingReference`] for bad ids,
    /// [`CircuitError::FloatingNet`] for an undriven net used as an input,
    /// or [`CircuitError::UnknownCell`] via arity checks.
    pub fn validate(&self, lib: &Library) -> Result<(), CircuitError> {
        self.validate_uncached(lib)
    }

    /// [`Netlist::validate`], memoized per library fingerprint: a clean
    /// verdict is cached and survives timing-only edits that cannot change
    /// it (activity retunes; cell swaps clear the cache because arity may
    /// change). Structural edits clear the cache. Errors are never cached.
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::validate`].
    pub fn validate_cached(&self, lib: &Library) -> Result<(), CircuitError> {
        let fp = library_validation_fingerprint(lib);
        {
            let seen = self
                .validated
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if seen.contains(&fp) {
                return Ok(());
            }
        }
        self.validate_uncached(lib)?;
        let mut seen = self
            .validated
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !seen.contains(&fp) {
            seen.push(fp);
        }
        Ok(())
    }

    fn validate_uncached(&self, lib: &Library) -> Result<(), CircuitError> {
        for inst in &self.instances {
            if inst.cell.0 >= lib.len() {
                return Err(CircuitError::DanglingReference {
                    what: "cell",
                    index: inst.cell.0,
                });
            }
            let kind = lib.cell(inst.cell).kind;
            if inst.inputs.len() != kind.input_count() {
                return Err(CircuitError::UnknownCell(format!(
                    "instance of {} has {} inputs, expected {}",
                    lib.cell(inst.cell).name,
                    inst.inputs.len(),
                    kind.input_count()
                )));
            }
            for &net in &inst.inputs {
                if net.0 >= self.drivers.len() {
                    return Err(CircuitError::DanglingReference {
                        what: "net",
                        index: net.0,
                    });
                }
                if self.drivers[net.0].is_none() {
                    return Err(CircuitError::FloatingNet(net.0));
                }
            }
        }
        for &net in &self.primary_outputs {
            if net.0 >= self.drivers.len() {
                return Err(CircuitError::DanglingReference {
                    what: "output net",
                    index: net.0,
                });
            }
        }
        Ok(())
    }

    /// A topological order of instances (every instance appears after the
    /// drivers of all its inputs). Served from the cached index; the order
    /// is computed once per structural generation.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::CombinationalCycle`] if no such order exists.
    pub fn topological_order(&self) -> Result<Vec<InstId>, CircuitError> {
        Ok(self.index().topo()?.to_vec())
    }

    fn compute_topological_order(&self) -> Result<Vec<InstId>, CircuitError> {
        let n = self.instances.len();
        // In-degree = number of input nets driven by instances not yet placed.
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, inst) in self.instances.iter().enumerate() {
            for &net in &inst.inputs {
                if let Some(Driver::Instance(src)) = self.driver(net) {
                    indegree[i] += 1;
                    dependents[src.0].push(i);
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(InstId(i));
            for &d in &dependents[i] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push(d);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(CircuitError::CombinationalCycle)
        }
    }

    /// Evaluates the logic function on boolean primary-input values.
    ///
    /// # Errors
    ///
    /// Propagates topological-order errors.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn evaluate(&self, lib: &Library, inputs: &[bool]) -> Result<Vec<bool>, CircuitError> {
        assert_eq!(
            inputs.len(),
            self.primary_inputs.len(),
            "primary input count mismatch"
        );
        let mut values = vec![false; self.drivers.len()];
        for (&net, &v) in self.primary_inputs.iter().zip(inputs) {
            values[net.0] = v;
        }
        for &inst_id in self.index().topo()? {
            let inst = &self.instances[inst_id.0];
            let ins: Vec<bool> = inst.inputs.iter().map(|&n| values[n.0]).collect();
            values[inst.output.0] = lib.cell(inst.cell).kind.eval(&ins);
        }
        Ok(self.primary_outputs.iter().map(|&n| values[n.0]).collect())
    }
}

/// Convenience handle bundling the cell ids a generator needs.
struct Gates {
    inv: CellId,
    buf: CellId,
    nand2: CellId,
    nor2: CellId,
    and2: CellId,
    or2: CellId,
    xor2: CellId,
    xnor2: CellId,
    aoi21: CellId,
    oai21: CellId,
    mux2: CellId,
    maj3: CellId,
}

impl Gates {
    fn from_library(lib: &Library, drive: f64) -> Result<Gates, CircuitError> {
        let pick = |kind: CellKind| {
            lib.closest_drive(kind, drive)
                .ok_or_else(|| CircuitError::UnknownCell(format!("{kind} missing from library")))
        };
        Ok(Gates {
            inv: pick(CellKind::Inv)?,
            buf: pick(CellKind::Buf)?,
            nand2: pick(CellKind::Nand2)?,
            nor2: pick(CellKind::Nor2)?,
            and2: pick(CellKind::And2)?,
            or2: pick(CellKind::Or2)?,
            xor2: pick(CellKind::Xor2)?,
            xnor2: pick(CellKind::Xnor2)?,
            aoi21: pick(CellKind::Aoi21)?,
            oai21: pick(CellKind::Oai21)?,
            mux2: pick(CellKind::Mux2)?,
            maj3: pick(CellKind::Maj3)?,
        })
    }
}

/// Builds an n-bit ripple-carry adder: `sum = a + b + cin`.
/// Inputs in order: `a[0..n], b[0..n], cin`; outputs: `sum[0..n], cout`.
///
/// # Errors
///
/// Returns [`CircuitError::UnknownCell`] if the library lacks XOR2/MAJ3.
pub fn ripple_carry_adder(lib: &Library, bits: usize) -> Result<Netlist, CircuitError> {
    let g = Gates::from_library(lib, 1.0)?;
    let mut nl = Netlist::new();
    let a: Vec<NetId> = (0..bits).map(|_| nl.add_input()).collect();
    let b: Vec<NetId> = (0..bits).map(|_| nl.add_input()).collect();
    let mut carry = nl.add_input(); // cin
    let mut sums = Vec::with_capacity(bits);
    for i in 0..bits {
        let axb = nl.add_gate(g.xor2, &[a[i], b[i]]);
        let sum = nl.add_gate(g.xor2, &[axb, carry]);
        let cout = nl.add_gate(g.maj3, &[a[i], b[i], carry]);
        sums.push(sum);
        carry = cout;
    }
    for s in sums {
        nl.mark_output(s);
    }
    nl.mark_output(carry);
    Ok(nl)
}

/// Builds an n×n array multiplier (`p = a × b`, 2n-bit product) from AND
/// partial products and ripple-carry rows.
/// Inputs: `a[0..n], b[0..n]`; outputs: `p[0..2n]`.
///
/// # Errors
///
/// Returns [`CircuitError::UnknownCell`] if required kinds are absent.
pub fn array_multiplier(lib: &Library, bits: usize) -> Result<Netlist, CircuitError> {
    let g = Gates::from_library(lib, 1.0)?;
    let mut nl = Netlist::new();
    let a: Vec<NetId> = (0..bits).map(|_| nl.add_input()).collect();
    let b: Vec<NetId> = (0..bits).map(|_| nl.add_input()).collect();
    // Partial products pp[i][j] = a[j] & b[i].
    let pp: Vec<Vec<NetId>> = (0..bits)
        .map(|i| {
            (0..bits)
                .map(|j| nl.add_gate(g.and2, &[a[j], b[i]]))
                .collect()
        })
        .collect();
    // Row-by-row addition; running[k] holds bit k of the accumulated sum.
    let mut product = Vec::with_capacity(2 * bits);
    let mut running: Vec<NetId> = pp[0].clone();
    product.push(running[0]);
    running.remove(0);
    for (i, row) in pp.iter().enumerate().skip(1) {
        // Add `row` to `running` with a ripple of full adders.
        let mut next = Vec::with_capacity(bits);
        let mut carry: Option<NetId> = None;
        for (j, &x) in row.iter().enumerate().take(bits) {
            let y = running.get(j).copied();
            match (y, carry) {
                (Some(y), Some(c)) => {
                    let axb = nl.add_gate(g.xor2, &[x, y]);
                    let sum = nl.add_gate(g.xor2, &[axb, c]);
                    let co = nl.add_gate(g.maj3, &[x, y, c]);
                    next.push(sum);
                    carry = Some(co);
                }
                (Some(y), None) => {
                    let sum = nl.add_gate(g.xor2, &[x, y]);
                    let co = nl.add_gate(g.and2, &[x, y]);
                    next.push(sum);
                    carry = Some(co);
                }
                (None, Some(c)) => {
                    let sum = nl.add_gate(g.xor2, &[x, c]);
                    let co = nl.add_gate(g.and2, &[x, c]);
                    next.push(sum);
                    carry = Some(co);
                }
                (None, None) => {
                    next.push(x);
                }
            }
        }
        if let Some(c) = carry {
            next.push(c);
        }
        product.push(next[0]);
        next.remove(0);
        running = next;
        let _ = i;
    }
    for bit in running {
        product.push(bit);
    }
    for p in product {
        nl.mark_output(p);
    }
    Ok(nl)
}

/// Builds a random combinational control block: `n_gates` gates over
/// `n_inputs` primary inputs, with random kinds, drives, fanin chosen from
/// recent nets (locality), and random activities.
///
/// # Errors
///
/// Returns [`CircuitError::UnknownCell`] if the library is missing kinds, or
/// [`CircuitError::InvalidParameter`] for zero inputs/gates.
pub fn random_logic(
    lib: &Library,
    n_inputs: usize,
    n_gates: usize,
    seed: u64,
) -> Result<Netlist, CircuitError> {
    if n_inputs == 0 {
        return Err(CircuitError::InvalidParameter {
            what: "n_inputs",
            value: 0.0,
        });
    }
    if n_gates == 0 {
        return Err(CircuitError::InvalidParameter {
            what: "n_gates",
            value: 0.0,
        });
    }
    let mut rng = Rng::from_seed(seed);
    let mut nl = Netlist::new();
    let mut pool: Vec<NetId> = (0..n_inputs).map(|_| nl.add_input()).collect();
    let kinds = CellKind::ALL;
    for _ in 0..n_gates {
        let kind = kinds[rng.below(kinds.len() as u64) as usize];
        let drive = crate::cell::DRIVE_STRENGTHS
            [rng.below(crate::cell::DRIVE_STRENGTHS.len() as u64) as usize];
        let cell = lib
            .closest_drive(kind, drive)
            .ok_or_else(|| CircuitError::UnknownCell(format!("{kind} missing from library")))?;
        // Pick inputs with a bias toward recent nets (gives depth).
        let mut ins = Vec::with_capacity(kind.input_count());
        for _ in 0..kind.input_count() {
            let span = pool.len().min(48);
            let base = pool.len() - span;
            #[allow(clippy::cast_possible_truncation)]
            let idx = base + rng.below(span as u64) as usize;
            ins.push(pool[idx]);
        }
        let out = nl.add_gate_with_activity(cell, &ins, rng.uniform_in(0.02, 0.5));
        pool.push(out);
    }
    // Last few nets become outputs.
    let n_out = pool.len().min(8);
    for &net in &pool[pool.len() - n_out..] {
        nl.mark_output(net);
    }
    Ok(nl)
}

/// Builds a processor-scale composite datapath: an adder, a multiplier,
/// random control blocks, and buffer trees, merged into one netlist. For
/// `width = 8` this lands in the thousands of instances — the scale regime
/// of the paper's Fig. 2 case study.
///
/// # Errors
///
/// Propagates generator errors.
pub fn processor_datapath(lib: &Library, width: usize, seed: u64) -> Result<Netlist, CircuitError> {
    let g = Gates::from_library(lib, 1.0)?;
    let mut rng = Rng::from_seed(seed);
    let mut nl = Netlist::new();
    let a: Vec<NetId> = (0..width).map(|_| nl.add_input()).collect();
    let b: Vec<NetId> = (0..width).map(|_| nl.add_input()).collect();
    let ctrl: Vec<NetId> = (0..8).map(|_| nl.add_input()).collect();

    // Adder slice.
    let mut carry = ctrl[0];
    let mut add_out = Vec::with_capacity(width);
    for i in 0..width {
        let axb = nl.add_gate(g.xor2, &[a[i], b[i]]);
        let sum = nl.add_gate(g.xor2, &[axb, carry]);
        carry = nl.add_gate(g.maj3, &[a[i], b[i], carry]);
        add_out.push(sum);
    }

    // Logic unit: AND / OR / XOR / NOR lanes muxed by control.
    let mut logic_out = Vec::with_capacity(width);
    for i in 0..width {
        let and = nl.add_gate(g.and2, &[a[i], b[i]]);
        let or = nl.add_gate(g.or2, &[a[i], b[i]]);
        let xor = nl.add_gate(g.xor2, &[a[i], b[i]]);
        let nor = nl.add_gate(g.nor2, &[a[i], b[i]]);
        let m0 = nl.add_gate(g.mux2, &[and, or, ctrl[1]]);
        let m1 = nl.add_gate(g.mux2, &[xor, nor, ctrl[1]]);
        let m = nl.add_gate(g.mux2, &[m0, m1, ctrl[2]]);
        logic_out.push(m);
    }

    // Multiplier partial array.
    let half = width.max(2);
    let mut mult_running: Vec<NetId> = (0..half)
        .map(|j| nl.add_gate(g.and2, &[a[j], b[0]]))
        .collect();
    for &bi in b.iter().take(half).skip(1) {
        let mut next = Vec::with_capacity(half);
        let mut c: Option<NetId> = None;
        for (j, &aj) in a.iter().enumerate().take(half) {
            let ppij = nl.add_gate(g.and2, &[aj, bi]);
            let y = mult_running.get(j + 1).copied();
            match (y, c) {
                (Some(y), Some(cc)) => {
                    let axb = nl.add_gate(g.xor2, &[ppij, y]);
                    next.push(nl.add_gate(g.xor2, &[axb, cc]));
                    c = Some(nl.add_gate(g.maj3, &[ppij, y, cc]));
                }
                (Some(y), None) => {
                    next.push(nl.add_gate(g.xor2, &[ppij, y]));
                    c = Some(nl.add_gate(g.and2, &[ppij, y]));
                }
                (None, prev) => {
                    next.push(ppij);
                    c = prev;
                }
            }
        }
        mult_running = next;
    }

    // Control blocks: random logic fed by control + data bits.
    let control_nets: Vec<NetId> = {
        let mut pool: Vec<NetId> = ctrl.clone();
        pool.extend(a.iter().take(4));
        let kinds = CellKind::ALL;
        let mut outs = Vec::new();
        for _ in 0..width * 48 {
            let kind = kinds[rng.below(kinds.len() as u64) as usize];
            let cell = lib
                .closest_drive(kind, crate::cell::DRIVE_STRENGTHS[rng.below(5) as usize])
                .ok_or_else(|| CircuitError::UnknownCell(format!("{kind} missing")))?;
            let mut ins = Vec::with_capacity(kind.input_count());
            for _ in 0..kind.input_count() {
                let span = pool.len().min(32);
                let base = pool.len() - span;
                #[allow(clippy::cast_possible_truncation)]
                let idx = base + rng.below(span as u64) as usize;
                ins.push(pool[idx]);
            }
            let out = nl.add_gate_with_activity(cell, &ins, rng.uniform_in(0.02, 0.5));
            pool.push(out);
            outs.push(out);
        }
        outs
    };

    // Writeback mux between adder and logic unit, buffered fan-out trees.
    for i in 0..width {
        let wb = nl.add_gate(g.mux2, &[add_out[i], logic_out[i], ctrl[3]]);
        let buf1 = nl.add_gate_with_activity(g.buf, &[wb], 0.3);
        let buf2 = nl.add_gate_with_activity(g.buf, &[buf1], 0.3);
        nl.mark_output(buf2);
        let inv = nl.add_gate(g.inv, &[wb]);
        nl.mark_output(inv);
    }
    for net in mult_running {
        nl.mark_output(net);
    }
    for &net in control_nets.iter().rev().take(8) {
        nl.mark_output(net);
    }
    // Tie a couple of AOI/OAI cells to exercise every kind at top level.
    let extra = nl.add_gate(g.aoi21, &[a[0], b[0], ctrl[4]]);
    let extra2 = nl.add_gate(g.oai21, &[a[1], b[1], extra]);
    let extra3 = nl.add_gate(g.xnor2, &[extra2, ctrl[5]]);
    let extra4 = nl.add_gate(g.nand2, &[extra3, ctrl[6]]);
    nl.mark_output(extra4);
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_library, Corner};
    use crate::spicelike::GoldenSimulator;
    use crate::tech::TechParams;
    use std::sync::OnceLock;

    fn lib() -> &'static Library {
        static LIB: OnceLock<Library> = OnceLock::new();
        LIB.get_or_init(|| {
            let sim = GoldenSimulator::new(TechParams::default()).unwrap();
            characterize_library(&sim, &Corner::default()).unwrap()
        })
    }

    fn to_bits(mut v: u64, n: usize) -> Vec<bool> {
        let mut bits = Vec::with_capacity(n);
        for _ in 0..n {
            bits.push(v & 1 == 1);
            v >>= 1;
        }
        bits
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn adder_adds() {
        let nl = ripple_carry_adder(lib(), 8).unwrap();
        nl.validate(lib()).unwrap();
        for (a, b, cin) in [(0u64, 0u64, 0u64), (5, 7, 0), (255, 1, 0), (200, 100, 1)] {
            let mut inputs = to_bits(a, 8);
            inputs.extend(to_bits(b, 8));
            inputs.push(cin == 1);
            let out = nl.evaluate(lib(), &inputs).unwrap();
            let got = from_bits(&out);
            assert_eq!(got, (a + b + cin) & 0x1FF, "a={a} b={b} cin={cin}");
        }
    }

    #[test]
    fn multiplier_multiplies() {
        let nl = array_multiplier(lib(), 4).unwrap();
        nl.validate(lib()).unwrap();
        assert_eq!(nl.primary_outputs().len(), 8);
        for (a, b) in [(0u64, 0u64), (3, 5), (15, 15), (7, 9), (12, 11)] {
            let mut inputs = to_bits(a, 4);
            inputs.extend(to_bits(b, 4));
            let out = nl.evaluate(lib(), &inputs).unwrap();
            assert_eq!(from_bits(&out), a * b, "a={a} b={b}");
        }
    }

    #[test]
    fn random_logic_is_valid_dag() {
        let nl = random_logic(lib(), 16, 500, 7).unwrap();
        nl.validate(lib()).unwrap();
        assert_eq!(nl.instance_count(), 500);
        let order = nl.topological_order().unwrap();
        assert_eq!(order.len(), 500);
        // Evaluation runs without panicking.
        let inputs = vec![true; 16];
        let out = nl.evaluate(lib(), &inputs).unwrap();
        assert_eq!(out.len(), nl.primary_outputs().len());
    }

    #[test]
    fn random_logic_deterministic_per_seed() {
        let a = random_logic(lib(), 8, 100, 3).unwrap();
        let b = random_logic(lib(), 8, 100, 3).unwrap();
        assert_eq!(a.instances(), b.instances());
    }

    #[test]
    fn datapath_is_processor_scale() {
        let nl = processor_datapath(lib(), 8, 1).unwrap();
        nl.validate(lib()).unwrap();
        assert!(
            nl.instance_count() > 400,
            "instances: {}",
            nl.instance_count()
        );
        assert!(nl.topological_order().is_ok());
    }

    #[test]
    fn validation_catches_floating_net() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let inv = lib().find("INV_X1").unwrap();
        // Manually construct a gate with a bogus input net.
        nl.add_gate(inv, &[a]);
        let bogus = NetId(999);
        nl.add_gate(inv, &[bogus]);
        assert!(matches!(
            nl.validate(lib()),
            Err(CircuitError::DanglingReference { .. })
        ));
    }

    #[test]
    fn validation_catches_bad_arity() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let nand = lib().find("NAND2_X1").unwrap();
        nl.add_gate(nand, &[a]); // NAND2 needs two inputs
        assert!(nl.validate(lib()).is_err());
    }

    #[test]
    fn fanout_lists_sinks() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let inv = lib().find("INV_X1").unwrap();
        let n1 = nl.add_gate(inv, &[a]);
        let _n2 = nl.add_gate(inv, &[n1]);
        let _n3 = nl.add_gate(inv, &[n1]);
        assert_eq!(nl.fanout(n1).len(), 2);
        assert_eq!(nl.fanout(a).len(), 1);
    }

    #[test]
    fn generators_validate_params() {
        assert!(random_logic(lib(), 0, 10, 1).is_err());
        assert!(random_logic(lib(), 10, 0, 1).is_err());
    }
}
