//! Gate-level netlists and circuit generators.
//!
//! A [`Netlist`] is a DAG of single-output cell instances over nets, with
//! primary inputs/outputs. Generators produce the processor-scale designs
//! the experiments run on: ripple-carry adders, array multipliers, random
//! control logic, and a composite "processor datapath" standing in for the
//! paper's RISC-V core case study (Fig. 2).

use crate::cell::{CellId, CellKind, Library};
use crate::error::CircuitError;
use lori_core::Rng;

/// Index of a net within a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub usize);

/// Index of an instance within a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub usize);

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// The net is a primary input.
    PrimaryInput,
    /// The net is driven by an instance's output.
    Instance(InstId),
}

/// A cell instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// The library cell this instance implements.
    pub cell: CellId,
    /// Input nets, in pin order.
    pub inputs: Vec<NetId>,
    /// Output net.
    pub output: NetId,
    /// Switching activity (transitions per cycle) for power/SHE/aging.
    pub activity: f64,
}

/// A gate-level netlist.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    drivers: Vec<Option<Driver>>,
    instances: Vec<Instance>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
}

impl Netlist {
    /// An empty netlist.
    #[must_use]
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Adds a primary input net.
    pub fn add_input(&mut self) -> NetId {
        let id = NetId(self.drivers.len());
        self.drivers.push(Some(Driver::PrimaryInput));
        self.primary_inputs.push(id);
        id
    }

    /// Adds an instance of `cell` driven by `inputs`, returning its output
    /// net. `activity` defaults to 0.15 via [`Netlist::add_gate`].
    pub fn add_gate_with_activity(
        &mut self,
        cell: CellId,
        inputs: &[NetId],
        activity: f64,
    ) -> NetId {
        let out = NetId(self.drivers.len());
        self.drivers.push(None);
        let inst = InstId(self.instances.len());
        self.instances.push(Instance {
            cell,
            inputs: inputs.to_vec(),
            output: out,
            activity: activity.clamp(0.0, 1.0),
        });
        self.drivers[out.0] = Some(Driver::Instance(inst));
        out
    }

    /// Adds an instance with the default switching activity.
    pub fn add_gate(&mut self, cell: CellId, inputs: &[NetId]) -> NetId {
        self.add_gate_with_activity(cell, inputs, 0.15)
    }

    /// Marks a net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        self.primary_outputs.push(net);
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.drivers.len()
    }

    /// Number of instances.
    #[must_use]
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// The instances, indexed by [`InstId`].
    #[must_use]
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// The driver of a net (None for a malformed floating net).
    #[must_use]
    pub fn driver(&self, net: NetId) -> Option<Driver> {
        self.drivers.get(net.0).copied().flatten()
    }

    /// Primary inputs, in creation order.
    #[must_use]
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary outputs, in marking order.
    #[must_use]
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// The instances whose inputs include `net` (the net's fanout).
    #[must_use]
    pub fn fanout(&self, net: NetId) -> Vec<InstId> {
        self.instances
            .iter()
            .enumerate()
            .filter(|(_, inst)| inst.inputs.contains(&net))
            .map(|(i, _)| InstId(i))
            .collect()
    }

    /// Validates the netlist against a library: pin arity, references, and
    /// drivers.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DanglingReference`] for bad ids,
    /// [`CircuitError::FloatingNet`] for an undriven net used as an input,
    /// or [`CircuitError::UnknownCell`] via arity checks.
    pub fn validate(&self, lib: &Library) -> Result<(), CircuitError> {
        for inst in &self.instances {
            if inst.cell.0 >= lib.len() {
                return Err(CircuitError::DanglingReference {
                    what: "cell",
                    index: inst.cell.0,
                });
            }
            let kind = lib.cell(inst.cell).kind;
            if inst.inputs.len() != kind.input_count() {
                return Err(CircuitError::UnknownCell(format!(
                    "instance of {} has {} inputs, expected {}",
                    lib.cell(inst.cell).name,
                    inst.inputs.len(),
                    kind.input_count()
                )));
            }
            for &net in &inst.inputs {
                if net.0 >= self.drivers.len() {
                    return Err(CircuitError::DanglingReference {
                        what: "net",
                        index: net.0,
                    });
                }
                if self.drivers[net.0].is_none() {
                    return Err(CircuitError::FloatingNet(net.0));
                }
            }
        }
        for &net in &self.primary_outputs {
            if net.0 >= self.drivers.len() {
                return Err(CircuitError::DanglingReference {
                    what: "output net",
                    index: net.0,
                });
            }
        }
        Ok(())
    }

    /// A topological order of instances (every instance appears after the
    /// drivers of all its inputs).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::CombinationalCycle`] if no such order exists.
    pub fn topological_order(&self) -> Result<Vec<InstId>, CircuitError> {
        let n = self.instances.len();
        // In-degree = number of input nets driven by instances not yet placed.
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, inst) in self.instances.iter().enumerate() {
            for &net in &inst.inputs {
                if let Some(Driver::Instance(src)) = self.driver(net) {
                    indegree[i] += 1;
                    dependents[src.0].push(i);
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(InstId(i));
            for &d in &dependents[i] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push(d);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(CircuitError::CombinationalCycle)
        }
    }

    /// Evaluates the logic function on boolean primary-input values.
    ///
    /// # Errors
    ///
    /// Propagates topological-order errors.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn evaluate(&self, lib: &Library, inputs: &[bool]) -> Result<Vec<bool>, CircuitError> {
        assert_eq!(
            inputs.len(),
            self.primary_inputs.len(),
            "primary input count mismatch"
        );
        let mut values = vec![false; self.drivers.len()];
        for (&net, &v) in self.primary_inputs.iter().zip(inputs) {
            values[net.0] = v;
        }
        for inst_id in self.topological_order()? {
            let inst = &self.instances[inst_id.0];
            let ins: Vec<bool> = inst.inputs.iter().map(|&n| values[n.0]).collect();
            values[inst.output.0] = lib.cell(inst.cell).kind.eval(&ins);
        }
        Ok(self.primary_outputs.iter().map(|&n| values[n.0]).collect())
    }
}

/// Convenience handle bundling the cell ids a generator needs.
struct Gates {
    inv: CellId,
    buf: CellId,
    nand2: CellId,
    nor2: CellId,
    and2: CellId,
    or2: CellId,
    xor2: CellId,
    xnor2: CellId,
    aoi21: CellId,
    oai21: CellId,
    mux2: CellId,
    maj3: CellId,
}

impl Gates {
    fn from_library(lib: &Library, drive: f64) -> Result<Gates, CircuitError> {
        let pick = |kind: CellKind| {
            lib.closest_drive(kind, drive)
                .ok_or_else(|| CircuitError::UnknownCell(format!("{kind} missing from library")))
        };
        Ok(Gates {
            inv: pick(CellKind::Inv)?,
            buf: pick(CellKind::Buf)?,
            nand2: pick(CellKind::Nand2)?,
            nor2: pick(CellKind::Nor2)?,
            and2: pick(CellKind::And2)?,
            or2: pick(CellKind::Or2)?,
            xor2: pick(CellKind::Xor2)?,
            xnor2: pick(CellKind::Xnor2)?,
            aoi21: pick(CellKind::Aoi21)?,
            oai21: pick(CellKind::Oai21)?,
            mux2: pick(CellKind::Mux2)?,
            maj3: pick(CellKind::Maj3)?,
        })
    }
}

/// Builds an n-bit ripple-carry adder: `sum = a + b + cin`.
/// Inputs in order: `a[0..n], b[0..n], cin`; outputs: `sum[0..n], cout`.
///
/// # Errors
///
/// Returns [`CircuitError::UnknownCell`] if the library lacks XOR2/MAJ3.
pub fn ripple_carry_adder(lib: &Library, bits: usize) -> Result<Netlist, CircuitError> {
    let g = Gates::from_library(lib, 1.0)?;
    let mut nl = Netlist::new();
    let a: Vec<NetId> = (0..bits).map(|_| nl.add_input()).collect();
    let b: Vec<NetId> = (0..bits).map(|_| nl.add_input()).collect();
    let mut carry = nl.add_input(); // cin
    let mut sums = Vec::with_capacity(bits);
    for i in 0..bits {
        let axb = nl.add_gate(g.xor2, &[a[i], b[i]]);
        let sum = nl.add_gate(g.xor2, &[axb, carry]);
        let cout = nl.add_gate(g.maj3, &[a[i], b[i], carry]);
        sums.push(sum);
        carry = cout;
    }
    for s in sums {
        nl.mark_output(s);
    }
    nl.mark_output(carry);
    Ok(nl)
}

/// Builds an n×n array multiplier (`p = a × b`, 2n-bit product) from AND
/// partial products and ripple-carry rows.
/// Inputs: `a[0..n], b[0..n]`; outputs: `p[0..2n]`.
///
/// # Errors
///
/// Returns [`CircuitError::UnknownCell`] if required kinds are absent.
pub fn array_multiplier(lib: &Library, bits: usize) -> Result<Netlist, CircuitError> {
    let g = Gates::from_library(lib, 1.0)?;
    let mut nl = Netlist::new();
    let a: Vec<NetId> = (0..bits).map(|_| nl.add_input()).collect();
    let b: Vec<NetId> = (0..bits).map(|_| nl.add_input()).collect();
    // Partial products pp[i][j] = a[j] & b[i].
    let pp: Vec<Vec<NetId>> = (0..bits)
        .map(|i| {
            (0..bits)
                .map(|j| nl.add_gate(g.and2, &[a[j], b[i]]))
                .collect()
        })
        .collect();
    // Row-by-row addition; running[k] holds bit k of the accumulated sum.
    let mut product = Vec::with_capacity(2 * bits);
    let mut running: Vec<NetId> = pp[0].clone();
    product.push(running[0]);
    running.remove(0);
    for (i, row) in pp.iter().enumerate().skip(1) {
        // Add `row` to `running` with a ripple of full adders.
        let mut next = Vec::with_capacity(bits);
        let mut carry: Option<NetId> = None;
        for (j, &x) in row.iter().enumerate().take(bits) {
            let y = running.get(j).copied();
            match (y, carry) {
                (Some(y), Some(c)) => {
                    let axb = nl.add_gate(g.xor2, &[x, y]);
                    let sum = nl.add_gate(g.xor2, &[axb, c]);
                    let co = nl.add_gate(g.maj3, &[x, y, c]);
                    next.push(sum);
                    carry = Some(co);
                }
                (Some(y), None) => {
                    let sum = nl.add_gate(g.xor2, &[x, y]);
                    let co = nl.add_gate(g.and2, &[x, y]);
                    next.push(sum);
                    carry = Some(co);
                }
                (None, Some(c)) => {
                    let sum = nl.add_gate(g.xor2, &[x, c]);
                    let co = nl.add_gate(g.and2, &[x, c]);
                    next.push(sum);
                    carry = Some(co);
                }
                (None, None) => {
                    next.push(x);
                }
            }
        }
        if let Some(c) = carry {
            next.push(c);
        }
        product.push(next[0]);
        next.remove(0);
        running = next;
        let _ = i;
    }
    for bit in running {
        product.push(bit);
    }
    for p in product {
        nl.mark_output(p);
    }
    Ok(nl)
}

/// Builds a random combinational control block: `n_gates` gates over
/// `n_inputs` primary inputs, with random kinds, drives, fanin chosen from
/// recent nets (locality), and random activities.
///
/// # Errors
///
/// Returns [`CircuitError::UnknownCell`] if the library is missing kinds, or
/// [`CircuitError::InvalidParameter`] for zero inputs/gates.
pub fn random_logic(
    lib: &Library,
    n_inputs: usize,
    n_gates: usize,
    seed: u64,
) -> Result<Netlist, CircuitError> {
    if n_inputs == 0 {
        return Err(CircuitError::InvalidParameter {
            what: "n_inputs",
            value: 0.0,
        });
    }
    if n_gates == 0 {
        return Err(CircuitError::InvalidParameter {
            what: "n_gates",
            value: 0.0,
        });
    }
    let mut rng = Rng::from_seed(seed);
    let mut nl = Netlist::new();
    let mut pool: Vec<NetId> = (0..n_inputs).map(|_| nl.add_input()).collect();
    let kinds = CellKind::ALL;
    for _ in 0..n_gates {
        let kind = kinds[rng.below(kinds.len() as u64) as usize];
        let drive = crate::cell::DRIVE_STRENGTHS
            [rng.below(crate::cell::DRIVE_STRENGTHS.len() as u64) as usize];
        let cell = lib
            .closest_drive(kind, drive)
            .ok_or_else(|| CircuitError::UnknownCell(format!("{kind} missing from library")))?;
        // Pick inputs with a bias toward recent nets (gives depth).
        let mut ins = Vec::with_capacity(kind.input_count());
        for _ in 0..kind.input_count() {
            let span = pool.len().min(48);
            let base = pool.len() - span;
            #[allow(clippy::cast_possible_truncation)]
            let idx = base + rng.below(span as u64) as usize;
            ins.push(pool[idx]);
        }
        let out = nl.add_gate_with_activity(cell, &ins, rng.uniform_in(0.02, 0.5));
        pool.push(out);
    }
    // Last few nets become outputs.
    let n_out = pool.len().min(8);
    for &net in &pool[pool.len() - n_out..] {
        nl.mark_output(net);
    }
    Ok(nl)
}

/// Builds a processor-scale composite datapath: an adder, a multiplier,
/// random control blocks, and buffer trees, merged into one netlist. For
/// `width = 8` this lands in the thousands of instances — the scale regime
/// of the paper's Fig. 2 case study.
///
/// # Errors
///
/// Propagates generator errors.
pub fn processor_datapath(lib: &Library, width: usize, seed: u64) -> Result<Netlist, CircuitError> {
    let g = Gates::from_library(lib, 1.0)?;
    let mut rng = Rng::from_seed(seed);
    let mut nl = Netlist::new();
    let a: Vec<NetId> = (0..width).map(|_| nl.add_input()).collect();
    let b: Vec<NetId> = (0..width).map(|_| nl.add_input()).collect();
    let ctrl: Vec<NetId> = (0..8).map(|_| nl.add_input()).collect();

    // Adder slice.
    let mut carry = ctrl[0];
    let mut add_out = Vec::with_capacity(width);
    for i in 0..width {
        let axb = nl.add_gate(g.xor2, &[a[i], b[i]]);
        let sum = nl.add_gate(g.xor2, &[axb, carry]);
        carry = nl.add_gate(g.maj3, &[a[i], b[i], carry]);
        add_out.push(sum);
    }

    // Logic unit: AND / OR / XOR / NOR lanes muxed by control.
    let mut logic_out = Vec::with_capacity(width);
    for i in 0..width {
        let and = nl.add_gate(g.and2, &[a[i], b[i]]);
        let or = nl.add_gate(g.or2, &[a[i], b[i]]);
        let xor = nl.add_gate(g.xor2, &[a[i], b[i]]);
        let nor = nl.add_gate(g.nor2, &[a[i], b[i]]);
        let m0 = nl.add_gate(g.mux2, &[and, or, ctrl[1]]);
        let m1 = nl.add_gate(g.mux2, &[xor, nor, ctrl[1]]);
        let m = nl.add_gate(g.mux2, &[m0, m1, ctrl[2]]);
        logic_out.push(m);
    }

    // Multiplier partial array.
    let half = width.max(2);
    let mut mult_running: Vec<NetId> = (0..half)
        .map(|j| nl.add_gate(g.and2, &[a[j], b[0]]))
        .collect();
    for &bi in b.iter().take(half).skip(1) {
        let mut next = Vec::with_capacity(half);
        let mut c: Option<NetId> = None;
        for (j, &aj) in a.iter().enumerate().take(half) {
            let ppij = nl.add_gate(g.and2, &[aj, bi]);
            let y = mult_running.get(j + 1).copied();
            match (y, c) {
                (Some(y), Some(cc)) => {
                    let axb = nl.add_gate(g.xor2, &[ppij, y]);
                    next.push(nl.add_gate(g.xor2, &[axb, cc]));
                    c = Some(nl.add_gate(g.maj3, &[ppij, y, cc]));
                }
                (Some(y), None) => {
                    next.push(nl.add_gate(g.xor2, &[ppij, y]));
                    c = Some(nl.add_gate(g.and2, &[ppij, y]));
                }
                (None, prev) => {
                    next.push(ppij);
                    c = prev;
                }
            }
        }
        mult_running = next;
    }

    // Control blocks: random logic fed by control + data bits.
    let control_nets: Vec<NetId> = {
        let mut pool: Vec<NetId> = ctrl.clone();
        pool.extend(a.iter().take(4));
        let kinds = CellKind::ALL;
        let mut outs = Vec::new();
        for _ in 0..width * 48 {
            let kind = kinds[rng.below(kinds.len() as u64) as usize];
            let cell = lib
                .closest_drive(kind, crate::cell::DRIVE_STRENGTHS[rng.below(5) as usize])
                .ok_or_else(|| CircuitError::UnknownCell(format!("{kind} missing")))?;
            let mut ins = Vec::with_capacity(kind.input_count());
            for _ in 0..kind.input_count() {
                let span = pool.len().min(32);
                let base = pool.len() - span;
                #[allow(clippy::cast_possible_truncation)]
                let idx = base + rng.below(span as u64) as usize;
                ins.push(pool[idx]);
            }
            let out = nl.add_gate_with_activity(cell, &ins, rng.uniform_in(0.02, 0.5));
            pool.push(out);
            outs.push(out);
        }
        outs
    };

    // Writeback mux between adder and logic unit, buffered fan-out trees.
    for i in 0..width {
        let wb = nl.add_gate(g.mux2, &[add_out[i], logic_out[i], ctrl[3]]);
        let buf1 = nl.add_gate_with_activity(g.buf, &[wb], 0.3);
        let buf2 = nl.add_gate_with_activity(g.buf, &[buf1], 0.3);
        nl.mark_output(buf2);
        let inv = nl.add_gate(g.inv, &[wb]);
        nl.mark_output(inv);
    }
    for net in mult_running {
        nl.mark_output(net);
    }
    for &net in control_nets.iter().rev().take(8) {
        nl.mark_output(net);
    }
    // Tie a couple of AOI/OAI cells to exercise every kind at top level.
    let extra = nl.add_gate(g.aoi21, &[a[0], b[0], ctrl[4]]);
    let extra2 = nl.add_gate(g.oai21, &[a[1], b[1], extra]);
    let extra3 = nl.add_gate(g.xnor2, &[extra2, ctrl[5]]);
    let extra4 = nl.add_gate(g.nand2, &[extra3, ctrl[6]]);
    nl.mark_output(extra4);
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_library, Corner};
    use crate::spicelike::GoldenSimulator;
    use crate::tech::TechParams;
    use std::sync::OnceLock;

    fn lib() -> &'static Library {
        static LIB: OnceLock<Library> = OnceLock::new();
        LIB.get_or_init(|| {
            let sim = GoldenSimulator::new(TechParams::default()).unwrap();
            characterize_library(&sim, &Corner::default()).unwrap()
        })
    }

    fn to_bits(mut v: u64, n: usize) -> Vec<bool> {
        let mut bits = Vec::with_capacity(n);
        for _ in 0..n {
            bits.push(v & 1 == 1);
            v >>= 1;
        }
        bits
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn adder_adds() {
        let nl = ripple_carry_adder(lib(), 8).unwrap();
        nl.validate(lib()).unwrap();
        for (a, b, cin) in [(0u64, 0u64, 0u64), (5, 7, 0), (255, 1, 0), (200, 100, 1)] {
            let mut inputs = to_bits(a, 8);
            inputs.extend(to_bits(b, 8));
            inputs.push(cin == 1);
            let out = nl.evaluate(lib(), &inputs).unwrap();
            let got = from_bits(&out);
            assert_eq!(got, (a + b + cin) & 0x1FF, "a={a} b={b} cin={cin}");
        }
    }

    #[test]
    fn multiplier_multiplies() {
        let nl = array_multiplier(lib(), 4).unwrap();
        nl.validate(lib()).unwrap();
        assert_eq!(nl.primary_outputs().len(), 8);
        for (a, b) in [(0u64, 0u64), (3, 5), (15, 15), (7, 9), (12, 11)] {
            let mut inputs = to_bits(a, 4);
            inputs.extend(to_bits(b, 4));
            let out = nl.evaluate(lib(), &inputs).unwrap();
            assert_eq!(from_bits(&out), a * b, "a={a} b={b}");
        }
    }

    #[test]
    fn random_logic_is_valid_dag() {
        let nl = random_logic(lib(), 16, 500, 7).unwrap();
        nl.validate(lib()).unwrap();
        assert_eq!(nl.instance_count(), 500);
        let order = nl.topological_order().unwrap();
        assert_eq!(order.len(), 500);
        // Evaluation runs without panicking.
        let inputs = vec![true; 16];
        let out = nl.evaluate(lib(), &inputs).unwrap();
        assert_eq!(out.len(), nl.primary_outputs().len());
    }

    #[test]
    fn random_logic_deterministic_per_seed() {
        let a = random_logic(lib(), 8, 100, 3).unwrap();
        let b = random_logic(lib(), 8, 100, 3).unwrap();
        assert_eq!(a.instances(), b.instances());
    }

    #[test]
    fn datapath_is_processor_scale() {
        let nl = processor_datapath(lib(), 8, 1).unwrap();
        nl.validate(lib()).unwrap();
        assert!(
            nl.instance_count() > 400,
            "instances: {}",
            nl.instance_count()
        );
        assert!(nl.topological_order().is_ok());
    }

    #[test]
    fn validation_catches_floating_net() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let inv = lib().find("INV_X1").unwrap();
        // Manually construct a gate with a bogus input net.
        nl.add_gate(inv, &[a]);
        let bogus = NetId(999);
        nl.add_gate(inv, &[bogus]);
        assert!(matches!(
            nl.validate(lib()),
            Err(CircuitError::DanglingReference { .. })
        ));
    }

    #[test]
    fn validation_catches_bad_arity() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let nand = lib().find("NAND2_X1").unwrap();
        nl.add_gate(nand, &[a]); // NAND2 needs two inputs
        assert!(nl.validate(lib()).is_err());
    }

    #[test]
    fn fanout_lists_sinks() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let inv = lib().find("INV_X1").unwrap();
        let n1 = nl.add_gate(inv, &[a]);
        let _n2 = nl.add_gate(inv, &[n1]);
        let _n3 = nl.add_gate(inv, &[n1]);
        assert_eq!(nl.fanout(n1).len(), 2);
        assert_eq!(nl.fanout(a).len(), 1);
    }

    #[test]
    fn generators_validate_params() {
        assert!(random_logic(lib(), 0, 10, 1).is_err());
        assert!(random_logic(lib(), 10, 0, 1).is_err());
    }
}
