//! Workload programs used as fault-injection targets.
//!
//! Five small but real kernels covering the behaviour classes the
//! architectural-reliability literature injects into: dense arithmetic
//! (matmul, dot product), control-heavy code (bubble sort), bit
//! manipulation (checksum), and pointer-free recursion turned iterative
//! (Fibonacci).

use crate::isa::{r, Instr, Program};

/// All built-in workloads.
#[must_use]
pub fn all() -> Vec<Program> {
    vec![
        matmul(),
        bubble_sort(),
        checksum(),
        dot_product(),
        fibonacci(),
    ]
}

/// 3×3 integer matrix multiply: `C = A × B`.
/// Memory: A at 0..9, B at 9..18, C at 18..27.
#[must_use]
pub fn matmul() -> Program {
    let mut instrs = Vec::new();
    // Fully unrolled: for i, j: C[i*3+j] = sum_k A[i*3+k] * B[k*3+j]
    for i in 0..3u32 {
        for j in 0..3u32 {
            instrs.push(Instr::Addi(r(4), r(0), 0)); // acc = 0
            for k in 0..3u32 {
                let a_addr = (i * 3 + k) as i32;
                let b_addr = (9 + k * 3 + j) as i32;
                instrs.push(Instr::Ld(r(2), r(0), a_addr));
                instrs.push(Instr::Ld(r(3), r(0), b_addr));
                instrs.push(Instr::Mul(r(5), r(2), r(3)));
                instrs.push(Instr::Add(r(4), r(4), r(5)));
            }
            instrs.push(Instr::St(r(4), r(0), (18 + i * 3 + j) as i32));
        }
    }
    instrs.push(Instr::Halt);
    let mut data = vec![0u32; 27];
    let a = [1, 2, 3, 4, 5, 6, 7, 8, 9u32];
    let b = [9, 8, 7, 6, 5, 4, 3, 2, 1u32];
    data[..9].copy_from_slice(&a);
    data[9..18].copy_from_slice(&b);
    Program::new("matmul3x3", instrs, data, 18..27).expect("non-empty")
}

/// Bubble sort of 10 words in place at 0..10.
#[must_use]
pub fn bubble_sort() -> Program {
    // r1 = i (outer), r2 = j (inner), r3/r4 = elements, r5 = n-1
    let instrs = vec![
        Instr::Addi(r(5), r(0), 9), // n-1
        Instr::Addi(r(1), r(0), 0), // i = 0
        // outer: if i == n-1 goto done
        Instr::Beq(r(1), r(5), 11), // -> done
        Instr::Addi(r(2), r(0), 0), // j = 0
        // inner: if j == n-1-i ... simplify: j == n-1 -> next_outer
        Instr::Beq(r(2), r(5), 7), // -> next outer
        Instr::Ld(r(3), r(2), 0),  // a[j]
        Instr::Ld(r(4), r(2), 1),  // a[j+1]
        Instr::Blt(r(3), r(4), 2), // in order -> skip swap
        Instr::St(r(4), r(2), 0),
        Instr::St(r(3), r(2), 1),
        Instr::Addi(r(2), r(2), 1), // j++
        Instr::Jmp(-8),             // -> inner
        Instr::Addi(r(1), r(1), 1), // i++
        Instr::Jmp(-12),            // -> outer
        Instr::Halt,                // done
    ];
    let data = vec![9, 3, 7, 1, 8, 2, 6, 0, 5, 4];
    Program::new("bubble_sort10", instrs, data, 0..10).expect("non-empty")
}

/// A rotating-XOR checksum over 16 words at 0..16; result at 16.
#[must_use]
pub fn checksum() -> Program {
    let instrs = vec![
        Instr::Addi(r(1), r(0), 0),  // idx
        Instr::Addi(r(2), r(0), 0),  // acc
        Instr::Addi(r(5), r(0), 16), // limit
        Instr::Addi(r(6), r(0), 5),  // rotate amount
        Instr::Addi(r(7), r(0), 27), // 32 - 5
        // loop:
        Instr::Ld(r(3), r(1), 0),
        Instr::Xor(r(2), r(2), r(3)),
        Instr::Sll(r(4), r(2), r(6)),
        Instr::Srl(r(2), r(2), r(7)),
        Instr::Or(r(2), r(2), r(4)),
        Instr::Addi(r(1), r(1), 1),
        Instr::Bne(r(1), r(5), -7),
        Instr::St(r(2), r(0), 16),
        Instr::Halt,
    ];
    let data: Vec<u32> = (0..16u32)
        .map(|i| i.wrapping_mul(0x9E37_79B9).wrapping_add(17))
        .chain(std::iter::once(0))
        .collect();
    Program::new("checksum16", instrs, data, 16..17).expect("non-empty")
}

/// Dot product of two 12-element vectors at 0..12 and 12..24; result at 24.
#[must_use]
pub fn dot_product() -> Program {
    let instrs = vec![
        Instr::Addi(r(1), r(0), 0),  // idx
        Instr::Addi(r(2), r(0), 0),  // acc
        Instr::Addi(r(5), r(0), 12), // limit
        // loop:
        Instr::Ld(r(3), r(1), 0),
        Instr::Ld(r(4), r(1), 12),
        Instr::Mul(r(6), r(3), r(4)),
        Instr::Add(r(2), r(2), r(6)),
        Instr::Addi(r(1), r(1), 1),
        Instr::Bne(r(1), r(5), -6),
        Instr::St(r(2), r(0), 24),
        Instr::Halt,
    ];
    let mut data = vec![0u32; 25];
    for i in 0..12u32 {
        data[i as usize] = i + 1;
        data[12 + i as usize] = 2 * i + 1;
    }
    Program::new("dot12", instrs, data, 24..25).expect("non-empty")
}

/// Iterative Fibonacci: fib(20) stored at 0.
#[must_use]
pub fn fibonacci() -> Program {
    let instrs = vec![
        Instr::Addi(r(1), r(0), 0),  // a
        Instr::Addi(r(2), r(0), 1),  // b
        Instr::Addi(r(3), r(0), 20), // n
        Instr::Addi(r(4), r(0), 0),  // i
        // loop:
        Instr::Add(r(5), r(1), r(2)), // t = a + b
        Instr::Addi(r(1), r(2), 0),   // a = b
        Instr::Addi(r(2), r(5), 0),   // b = t
        Instr::Addi(r(4), r(4), 1),
        Instr::Bne(r(4), r(3), -5),
        Instr::St(r(1), r(0), 0),
        Instr::Halt,
    ];
    Program::new("fib20", instrs, vec![0], 0..1).expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{run_golden, CpuConfig, StopReason};

    #[test]
    fn matmul_is_correct() {
        let res = run_golden(&matmul(), &CpuConfig::default());
        assert_eq!(res.stop, StopReason::Halted);
        // [1 2 3; 4 5 6; 7 8 9] × [9 8 7; 6 5 4; 3 2 1]
        assert_eq!(res.output, vec![30, 24, 18, 84, 69, 54, 138, 114, 90]);
    }

    #[test]
    fn sort_is_correct() {
        let res = run_golden(&bubble_sort(), &CpuConfig::default());
        assert_eq!(res.stop, StopReason::Halted);
        assert_eq!(res.output, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn checksum_runs_and_is_stable() {
        let res = run_golden(&checksum(), &CpuConfig::default());
        assert_eq!(res.stop, StopReason::Halted);
        let again = run_golden(&checksum(), &CpuConfig::default());
        assert_eq!(res.output, again.output);
        assert_ne!(res.output[0], 0);
    }

    #[test]
    fn dot_product_is_correct() {
        let res = run_golden(&dot_product(), &CpuConfig::default());
        assert_eq!(res.stop, StopReason::Halted);
        let expect: u32 = (0..12).map(|i| (i + 1) * (2 * i + 1)).sum();
        assert_eq!(res.output, vec![expect]);
    }

    #[test]
    fn fibonacci_is_correct() {
        let res = run_golden(&fibonacci(), &CpuConfig::default());
        assert_eq!(res.stop, StopReason::Halted);
        assert_eq!(res.output, vec![6765]); // fib(20)
    }

    #[test]
    fn all_workloads_halt() {
        for p in all() {
            let res = run_golden(&p, &CpuConfig::default());
            assert_eq!(res.stop, StopReason::Halted, "{} did not halt", p.name);
            assert!(res.cycles > 10, "{} suspiciously short", p.name);
        }
    }
}
