//! Protection mechanisms and their evaluation.
//!
//! - **Selective replication** (IPAS-style, ref \[27\]): protect only the
//!   instructions an ML classifier flags as SDC-prone, trading coverage for
//!   slowdown. [`evaluate_protection`] measures both.
//! - **Symptom-based detection** (ref \[29\]): watch executions for
//!   value-range anomalies learned from golden traces; cheap but prone to
//!   under-protection, which experiment E8/E10 quantifies.

use crate::cpu::{Cpu, CpuConfig, ExecResult, Protection, StopReason};
use crate::error::ArchError;
use crate::fault::{classify, FaultSpec, FaultTarget, Outcome, OutcomeCounts};
use crate::isa::{Program, NUM_REGS};
use lori_core::Rng;

/// Coverage/overhead report for a protection configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectionReport {
    /// Outcome tallies with the protection active.
    pub counts: OutcomeCounts,
    /// Fault-free cycles without protection.
    pub baseline_cycles: u64,
    /// Fault-free cycles with protection (replication + compare overhead).
    pub protected_cycles: u64,
}

impl ProtectionReport {
    /// Execution-time overhead of the protection (fraction over baseline).
    #[must_use]
    pub fn overhead(&self) -> f64 {
        if self.baseline_cycles == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.protected_cycles as f64 / self.baseline_cycles as f64 - 1.0
            }
        }
    }

    /// SDC rate under this protection.
    #[must_use]
    pub fn sdc_rate(&self) -> f64 {
        self.counts.fraction(Outcome::Sdc)
    }

    /// Detection rate among non-masked faults.
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        let non_masked = self.counts.total() - self.counts.count(Outcome::Masked);
        if non_masked == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.counts.count(Outcome::Detected) as f64 / non_masked as f64
            }
        }
    }
}

/// Evaluates a protection configuration with a random register campaign.
///
/// # Errors
///
/// Returns [`ArchError::NoTrials`] for `n == 0`.
pub fn evaluate_protection(
    program: &Program,
    config: &CpuConfig,
    protection: &Protection,
    n: usize,
    seed: u64,
) -> Result<ProtectionReport, ArchError> {
    if n == 0 {
        return Err(ArchError::NoTrials);
    }
    let baseline = crate::cpu::run_golden(program, config);
    let protected_golden = Cpu::new(program, config).run(program, protection);
    let campaign = crate::fault::random_register_campaign(program, config, protection, n, seed)?;
    Ok(ProtectionReport {
        counts: campaign.counts,
        baseline_cycles: baseline.cycles,
        protected_cycles: protected_golden.cycles,
    })
}

/// A symptom monitor: per-register value envelopes learned from the golden
/// execution, widened by a tolerance factor.
#[derive(Debug, Clone, PartialEq)]
pub struct SymptomMonitor {
    lo: [u32; NUM_REGS],
    hi: [u32; NUM_REGS],
}

impl SymptomMonitor {
    /// Learns register-value envelopes from a fault-free run.
    #[must_use]
    pub fn learn(program: &Program, config: &CpuConfig) -> Self {
        let mut lo = [u32::MAX; NUM_REGS];
        let mut hi = [0u32; NUM_REGS];
        let mut cpu = Cpu::new(program, config);
        let protection = Protection::none();
        loop {
            let info = cpu.step(program, &protection);
            if let Some((reg, v)) = info.wrote {
                lo[reg.index()] = lo[reg.index()].min(v);
                hi[reg.index()] = hi[reg.index()].max(v);
            }
            if info.stop.is_some() {
                break;
            }
        }
        // Widen envelopes slightly: values near the bounds are normal.
        for i in 0..NUM_REGS {
            if lo[i] <= hi[i] {
                let span = (hi[i] - lo[i]).max(16);
                lo[i] = lo[i].saturating_sub(span / 8);
                hi[i] = hi[i].saturating_add(span / 8);
            }
        }
        SymptomMonitor { lo, hi }
    }

    /// Whether a register write is anomalous.
    #[must_use]
    pub fn is_anomalous(&self, reg: usize, value: u32) -> bool {
        if self.lo[reg] > self.hi[reg] {
            // Register never written in golden run; any write is anomalous.
            return true;
        }
        value < self.lo[reg] || value > self.hi[reg]
    }

    /// Runs a faulty trial under symptom monitoring: an anomalous register
    /// write stops the run as *detected*. Returns the classified outcome.
    #[must_use]
    pub fn run_with_fault(
        &self,
        program: &Program,
        config: &CpuConfig,
        golden: &ExecResult,
        fault: &FaultSpec,
    ) -> Outcome {
        let mut cpu = Cpu::new(program, config);
        let protection = Protection::none();
        let mut injected = false;
        let mut executed: u64 = 0;
        let result = loop {
            if !injected && executed >= fault.cycle {
                match fault.target {
                    FaultTarget::Register { reg, bit } => cpu.flip_register_bit(reg, bit),
                    FaultTarget::Pc { bit } => cpu.flip_pc_bit(bit),
                    FaultTarget::Memory { addr, bit } => cpu.flip_memory_bit(addr, bit),
                }
                injected = true;
            }
            let info = cpu.step(program, &protection);
            executed += 1;
            if injected {
                if let Some((reg, v)) = info.wrote {
                    if self.is_anomalous(reg.index(), v) {
                        break cpu.finish(program, StopReason::DetectedMismatch);
                    }
                }
            }
            if let Some(stop) = info.stop {
                break cpu.finish(program, stop);
            }
        };
        classify(&result, golden)
    }
}

/// Evaluates symptom-based detection with a random register campaign.
///
/// # Errors
///
/// Returns [`ArchError::NoTrials`] for `n == 0`.
pub fn evaluate_symptom_detection(
    program: &Program,
    config: &CpuConfig,
    n: usize,
    seed: u64,
) -> Result<OutcomeCounts, ArchError> {
    if n == 0 {
        return Err(ArchError::NoTrials);
    }
    let golden = crate::cpu::run_golden(program, config);
    let monitor = SymptomMonitor::learn(program, config);
    let mut rng = Rng::from_seed(seed);
    let mut counts = OutcomeCounts::default();
    for _ in 0..n {
        #[allow(clippy::cast_possible_truncation)]
        let fault = FaultSpec {
            target: FaultTarget::Register {
                reg: crate::isa::Reg::new(rng.below(NUM_REGS as u64) as u8).expect("in range"),
                bit: rng.below(32) as u8,
            },
            cycle: rng.below(golden.cycles.max(1)),
        };
        counts.record(monitor.run_with_fault(program, config, &golden, &fault));
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn full_protection_has_high_overhead_and_high_detection() {
        let p = workload::dot_product();
        let cfg = CpuConfig::default();
        let report = evaluate_protection(&p, &cfg, &Protection::full(&p), 300, 1).unwrap();
        assert!(report.overhead() > 0.3, "overhead {}", report.overhead());
        assert!(
            report.detection_rate() > 0.5,
            "detection {}",
            report.detection_rate()
        );
    }

    #[test]
    fn no_protection_has_zero_overhead() {
        let p = workload::dot_product();
        let cfg = CpuConfig::default();
        let report = evaluate_protection(&p, &cfg, &Protection::none(), 100, 2).unwrap();
        assert_eq!(report.overhead(), 0.0);
        assert_eq!(report.counts.count(Outcome::Detected), 0);
    }

    #[test]
    fn selective_protection_cheaper_than_full() {
        let p = workload::dot_product();
        let cfg = CpuConfig::default();
        // Protect just the accumulator-chain instructions (5 and 6).
        let sel = Protection::for_instructions(&p, [5, 6]).unwrap();
        let full_report = evaluate_protection(&p, &cfg, &Protection::full(&p), 200, 3).unwrap();
        let sel_report = evaluate_protection(&p, &cfg, &sel, 200, 3).unwrap();
        assert!(sel_report.overhead() < full_report.overhead());
        assert!(sel_report.counts.count(Outcome::Detected) > 0);
    }

    #[test]
    fn symptom_monitor_learns_envelopes() {
        let p = workload::fibonacci();
        let cfg = CpuConfig::default();
        let m = SymptomMonitor::learn(&p, &cfg);
        // fib values stay below ~7000; a huge value is anomalous.
        assert!(m.is_anomalous(1, 0xFFFF_0000));
        assert!(!m.is_anomalous(1, 100));
        // A register never written in the golden run flags any write.
        assert!(m.is_anomalous(15, 0));
    }

    #[test]
    fn symptom_detection_catches_some_faults_cheaply() {
        let p = workload::fibonacci();
        let cfg = CpuConfig::default();
        let counts = evaluate_symptom_detection(&p, &cfg, 400, 4).unwrap();
        assert_eq!(counts.total(), 400);
        assert!(counts.count(Outcome::Detected) > 0, "no symptoms caught");
        // Under-protection: symptom detection misses some SDCs (the paper's
        // critique of symptom-based techniques).
        assert!(counts.count(Outcome::Sdc) > 0, "suspiciously perfect");
    }

    #[test]
    fn zero_trials_rejected() {
        let p = workload::fibonacci();
        let cfg = CpuConfig::default();
        assert!(evaluate_protection(&p, &cfg, &Protection::none(), 0, 1).is_err());
        assert!(evaluate_symptom_detection(&p, &cfg, 0, 1).is_err());
    }
}
