//! Structural feature extraction for ML-based vulnerability prediction.
//!
//! Two feature families mirror the surveyed approaches:
//!
//! - **Register ("flip-flop") features** — read/write counts, liveness —
//!   the fan-in/fan-out-style structural features ref \[20\] trains on;
//! - **Instruction features** — opcode class, operand structure, distance
//!   to the next store, dependent-instruction count — the graph-ish
//!   features refs \[24\]/\[27\] use to predict SDC-prone instructions.

use crate::cpu::{Cpu, CpuConfig, Protection};
use crate::isa::{Program, NUM_REGS};

/// Per-register structural/behavioural features over one program execution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegisterFeatures {
    /// Dynamic read count.
    pub reads: f64,
    /// Dynamic write count.
    pub writes: f64,
    /// Fraction of cycles the register is live (written earlier, read later).
    pub live_fraction: f64,
    /// Mean distance (in cycles) from a write to its last read.
    pub mean_lifetime: f64,
    /// Static number of instructions that read the register.
    pub static_readers: f64,
    /// Static number of instructions that write the register.
    pub static_writers: f64,
}

impl RegisterFeatures {
    /// Flattens into an ML feature row.
    #[must_use]
    pub fn to_row(&self) -> Vec<f64> {
        vec![
            self.reads,
            self.writes,
            self.live_fraction,
            self.mean_lifetime,
            self.static_readers,
            self.static_writers,
        ]
    }
}

/// Extracts per-register features by executing the program once.
#[must_use]
pub fn register_features(program: &Program, config: &CpuConfig) -> [RegisterFeatures; NUM_REGS] {
    let mut feats = [RegisterFeatures::default(); NUM_REGS];
    for (i, instr) in program.instrs.iter().enumerate() {
        let _ = i;
        for s in instr.sources() {
            feats[s.index()].static_readers += 1.0;
        }
        if let Some(d) = instr.dest() {
            feats[d.index()].static_writers += 1.0;
        }
    }

    // Dynamic pass: track reads/writes/liveness intervals.
    let mut cpu = Cpu::new(program, config);
    let protection = Protection::none();
    let mut last_write: [Option<u64>; NUM_REGS] = [None; NUM_REGS];
    let mut last_read: [Option<u64>; NUM_REGS] = [None; NUM_REGS];
    let mut live_cycles = [0.0f64; NUM_REGS];
    let mut lifetime_sum = [0.0f64; NUM_REGS];
    let mut lifetime_n = [0.0f64; NUM_REGS];
    let mut cycle: u64 = 0;
    loop {
        let pc = cpu.pc();
        let instr = program.instrs.get(pc).copied();
        let info = cpu.step(program, &protection);
        if let Some(instr) = instr {
            for s in instr.sources() {
                feats[s.index()].reads += 1.0;
                last_read[s.index()] = Some(cycle);
            }
            if let Some(d) = instr.dest() {
                let di = d.index();
                // Close the previous live interval.
                if let (Some(w), Some(r)) = (last_write[di], last_read[di]) {
                    if r >= w {
                        #[allow(clippy::cast_precision_loss)]
                        {
                            live_cycles[di] += (r - w + 1) as f64;
                            lifetime_sum[di] += (r - w) as f64;
                            lifetime_n[di] += 1.0;
                        }
                    }
                }
                feats[di].writes += 1.0;
                last_write[di] = Some(cycle);
                last_read[di] = None;
            }
        }
        cycle += 1;
        if info.stop.is_some() {
            break;
        }
    }
    // Close trailing intervals.
    for i in 0..NUM_REGS {
        if let (Some(w), Some(r)) = (last_write[i], last_read[i]) {
            if r >= w {
                #[allow(clippy::cast_precision_loss)]
                {
                    live_cycles[i] += (r - w + 1) as f64;
                    lifetime_sum[i] += (r - w) as f64;
                    lifetime_n[i] += 1.0;
                }
            }
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let total = cycle as f64;
    for i in 0..NUM_REGS {
        feats[i].live_fraction = if total > 0.0 {
            (live_cycles[i] / total).min(1.0)
        } else {
            0.0
        };
        feats[i].mean_lifetime = if lifetime_n[i] > 0.0 {
            lifetime_sum[i] / lifetime_n[i]
        } else {
            0.0
        };
    }
    feats
}

/// Per-static-instruction features.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct InstructionFeatures {
    /// Opcode class (see [`crate::isa::Instr::opcode_class`]).
    pub opcode_class: f64,
    /// Number of source operands.
    pub n_sources: f64,
    /// Whether the instruction writes a register.
    pub has_dest: f64,
    /// Whether it is a memory access.
    pub is_memory: f64,
    /// Whether it is a branch.
    pub is_branch: f64,
    /// Static distance (instructions) to the next store, capped at 32.
    pub dist_to_store: f64,
    /// Number of later static instructions reading this one's destination
    /// before it is overwritten (def-use fan-out).
    pub dependents: f64,
}

impl InstructionFeatures {
    /// Flattens into an ML feature row.
    #[must_use]
    pub fn to_row(&self) -> Vec<f64> {
        vec![
            self.opcode_class,
            self.n_sources,
            self.has_dest,
            self.is_memory,
            self.is_branch,
            self.dist_to_store,
            self.dependents,
        ]
    }
}

/// Extracts static features for every instruction.
#[must_use]
pub fn instruction_features(program: &Program) -> Vec<InstructionFeatures> {
    let n = program.len();
    let mut out = Vec::with_capacity(n);
    for (i, instr) in program.instrs.iter().enumerate() {
        // Distance to next store.
        let mut dist = 32.0;
        for (j, later) in program.instrs.iter().enumerate().skip(i) {
            if later.is_store() {
                #[allow(clippy::cast_precision_loss)]
                {
                    dist = ((j - i) as f64).min(32.0);
                }
                break;
            }
        }
        // Def-use fan-out (straight-line approximation).
        let mut dependents = 0.0;
        if let Some(d) = instr.dest() {
            for later in program.instrs.iter().skip(i + 1) {
                if later.sources().contains(&d) {
                    dependents += 1.0;
                }
                if later.dest() == Some(d) {
                    break;
                }
            }
        }
        #[allow(clippy::cast_precision_loss)]
        out.push(InstructionFeatures {
            opcode_class: instr.opcode_class() as f64,
            n_sources: instr.sources().len() as f64,
            has_dest: f64::from(u8::from(instr.dest().is_some())),
            is_memory: f64::from(u8::from(instr.is_memory())),
            is_branch: f64::from(u8::from(instr.is_branch())),
            dist_to_store: dist,
            dependents,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn register_features_reflect_usage() {
        let p = workload::fibonacci();
        let f = register_features(&p, &CpuConfig::default());
        // r1/r2 are loop-carried: many reads and writes, high liveness.
        assert!(f[1].reads > 10.0);
        assert!(f[2].writes > 10.0);
        assert!(f[1].live_fraction > 0.3);
        // r15 untouched.
        assert_eq!(f[15].reads, 0.0);
        assert_eq!(f[15].writes, 0.0);
        assert_eq!(f[15].live_fraction, 0.0);
    }

    #[test]
    fn register_feature_rows_have_fixed_width() {
        let p = workload::matmul();
        let f = register_features(&p, &CpuConfig::default());
        for rf in &f {
            assert_eq!(rf.to_row().len(), 6);
        }
    }

    #[test]
    fn instruction_features_reflect_structure() {
        let p = workload::dot_product();
        let f = instruction_features(&p);
        assert_eq!(f.len(), p.len());
        for (feat, instr) in f.iter().zip(&p.instrs) {
            assert_eq!(feat.is_branch > 0.5, instr.is_branch());
            assert_eq!(feat.is_memory > 0.5, instr.is_memory());
            assert_eq!(feat.has_dest > 0.5, instr.dest().is_some());
        }
        // The store itself has distance 0 to the next store.
        let store_idx = p
            .instrs
            .iter()
            .position(crate::isa::Instr::is_store)
            .unwrap();
        assert_eq!(f[store_idx].dist_to_store, 0.0);
    }

    #[test]
    fn dependents_counts_def_use() {
        let p = workload::fibonacci();
        let f = instruction_features(&p);
        // Instruction 4 (Add r5 = a+b) has r5 read by instruction 6.
        assert!(f[4].dependents >= 1.0);
    }

    #[test]
    fn all_workloads_have_finite_features() {
        for p in workload::all() {
            for rf in register_features(&p, &CpuConfig::default()) {
                assert!(rf.to_row().iter().all(|v| v.is_finite()));
            }
            for inf in instruction_features(&p) {
                assert!(inf.to_row().iter().all(|v| v.is_finite()));
            }
        }
    }
}
