//! Bit-parallel fault-injection lanes: one simulation pass, 64 scenarios.
//!
//! [`run_fault_block`] evaluates up to [`MAX_LANES`] single-bit-flip trials
//! of the same program/protection pair in a single pass over the
//! instruction stream. The engine exploits the structure of single-fault
//! campaigns: every trial is the fault-free execution plus a *sparse*
//! perturbation, so instead of 64 full architectural copies it keeps
//!
//! - **one reference CPU** — the fault-free machine, stepped normally;
//! - **structure-of-arrays diffs** — for each register (and shadow
//!   register) a `u64` lane mask marking which lanes currently differ from
//!   the reference, plus the per-lane differing values; memory diffs live
//!   in a sparse `addr → (mask, values)` map;
//! - **one `u64` active-lane mask** — a lane that crashes, hangs, or is
//!   caught by a protection compare drops out of the mask and records its
//!   outcome without stopping the other 63.
//!
//! Each step computes the *affected* mask — the union of the source
//! registers' diff masks (plus the memory-diff mask for loads) — and only
//! lanes in it pay per-lane work. Unaffected lanes ride the reference for
//! free, and a write whose lane value matches the reference *clears* the
//! diff bit, so masked faults re-converge and cost nothing from then on.
//! A lane whose control flow leaves the reference trace (divergent branch
//! direction, a PC-bit fault, or an access fate different from the
//! reference's) **detaches**: its full state is materialized from
//! reference + diffs into a scalar [`Cpu`] that runs the rest of the trial
//! alone. Detached lanes are the slow path; campaign faults land mostly in
//! dead or data registers, so blocks typically finish attached.
//!
//! The determinism contract: for every [`FaultSpec`] the block outcome is
//! identical to [`run_with_fault`]'s — same injection timing (the flip
//! lands just before executed step `cycle`), same protection cycle
//! accounting, same digest. The equivalence suite in
//! `tests/lane_equivalence.rs` checks this across workloads, protections,
//! widths, and edge cycles.

use crate::cpu::{Cpu, CpuConfig, ExecResult, Protection, StopReason};
use crate::fault::{classify, run_with_fault, FaultSpec, FaultTarget, Outcome};
use crate::isa::{Instr, Program, Reg, NUM_REGS};
use lori_obs::progress::Progress;
use lori_par::Parallelism;
use std::collections::HashMap;

/// Maximum trials per block: one bit of the active mask per lane.
pub const MAX_LANES: usize = 64;

/// Lane width from `LORI_LANES`: `1` selects the scalar path, values up to
/// 64 the lane engine. Unset, unparsable, or out-of-range values mean the
/// full 64-lane default.
#[must_use]
pub fn lanes_from_env() -> usize {
    match std::env::var("LORI_LANES") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if (1..=MAX_LANES).contains(&n) => n,
            _ => MAX_LANES,
        },
        Err(_) => MAX_LANES,
    }
}

/// Evaluates every fault in `specs` against one shared `golden` run,
/// returning outcomes in input order — bit-identical to mapping
/// [`run_with_fault`] over `specs`.
///
/// Specs are split into [`MAX_LANES`]-sized blocks and distributed over
/// `par` workers (block boundaries depend only on the input, so results
/// are identical at any worker count); within a block, `width` lanes run
/// per simulation pass (`width <= 1` selects the scalar reference path).
/// `progress` ticks once per completed trial.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn campaign_outcomes(
    program: &Program,
    config: &CpuConfig,
    protection: &Protection,
    golden: &ExecResult,
    specs: &[FaultSpec],
    width: usize,
    par: Parallelism,
    progress: Option<&Progress>,
) -> Vec<Outcome> {
    let width = width.clamp(1, MAX_LANES);
    let blocks: Vec<&[FaultSpec]> = specs.chunks(MAX_LANES).collect();
    let results = lori_par::par_map(par, &blocks, |_, block| {
        let out: Vec<Outcome> = if width == 1 {
            block
                .iter()
                .map(|f| run_with_fault(program, config, protection, golden, f))
                .collect()
        } else {
            block
                .chunks(width)
                .flat_map(|lanes| run_fault_block(program, config, protection, golden, lanes))
                .collect()
        };
        if let Some(p) = progress {
            p.add(block.len() as u64);
        }
        out
    });
    results.into_iter().flatten().collect()
}

/// Runs one block of up to [`MAX_LANES`] faulty trials in a single pass
/// and classifies each against `golden`. Outcomes are returned in spec
/// order and are bit-identical to [`run_with_fault`] per spec.
///
/// # Panics
///
/// Panics if `faults` is empty or holds more than [`MAX_LANES`] specs.
#[must_use]
pub fn run_fault_block(
    program: &Program,
    config: &CpuConfig,
    protection: &Protection,
    golden: &ExecResult,
    faults: &[FaultSpec],
) -> Vec<Outcome> {
    assert!(
        !faults.is_empty() && faults.len() <= MAX_LANES,
        "block must hold 1..={MAX_LANES} faults"
    );
    Block::new(program, config, protection, golden, faults).run()
}

/// Sparse per-word memory divergence: which lanes differ at one address,
/// and with what value.
struct MemCell {
    mask: u64,
    vals: [u32; MAX_LANES],
}

struct Block<'a> {
    program: &'a Program,
    protection: &'a Protection,
    golden: &'a ExecResult,
    faults: &'a [FaultSpec],
    /// The fault-free reference machine all attached lanes ride.
    cpu: Cpu,
    /// Lanes still attached to the reference and unfinished.
    active: u64,
    reg_diff: [u64; NUM_REGS],
    reg_val: [[u32; MAX_LANES]; NUM_REGS],
    shadow_diff: [u64; NUM_REGS],
    shadow_val: [[u32; MAX_LANES]; NUM_REGS],
    mem_diff: HashMap<usize, MemCell>,
    /// Per-lane count of set memory-diff bits (digest fast path).
    mem_diff_count: [u32; MAX_LANES],
    outcomes: [Option<Outcome>; MAX_LANES],
}

/// The value an ALU instruction writes, over an arbitrary register view.
fn alu_value(instr: Instr, get: impl Fn(Reg) -> u32) -> u32 {
    match instr {
        Instr::Add(_, a, b) => get(a).wrapping_add(get(b)),
        Instr::Sub(_, a, b) => get(a).wrapping_sub(get(b)),
        Instr::Mul(_, a, b) => get(a).wrapping_mul(get(b)),
        Instr::And(_, a, b) => get(a) & get(b),
        Instr::Or(_, a, b) => get(a) | get(b),
        Instr::Xor(_, a, b) => get(a) ^ get(b),
        Instr::Sll(_, a, b) => get(a) << (get(b) & 31),
        Instr::Srl(_, a, b) => get(a) >> (get(b) & 31),
        #[allow(clippy::cast_sign_loss)]
        Instr::Addi(_, a, imm) => get(a).wrapping_add(imm as u32),
        _ => unreachable!("not an ALU instruction"),
    }
}

/// Whether a conditional branch is taken, given its source values.
fn branch_taken(instr: Instr, a: u32, b: u32) -> bool {
    match instr {
        Instr::Beq(..) => a == b,
        Instr::Bne(..) => a != b,
        Instr::Blt(..) => a < b,
        _ => unreachable!("not a conditional branch"),
    }
}

/// The effective address of a memory access, `None` when out of bounds —
/// mirrors `Cpu::addr`.
fn addr_of(base: u32, offset: i32, mem_len: usize) -> Option<usize> {
    let a = i64::from(base) + i64::from(offset);
    if a < 0 || a as usize >= mem_len {
        None
    } else {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        Some(a as usize)
    }
}

impl<'a> Block<'a> {
    fn new(
        program: &'a Program,
        config: &'a CpuConfig,
        protection: &'a Protection,
        golden: &'a ExecResult,
        faults: &'a [FaultSpec],
    ) -> Self {
        let n = faults.len();
        let active = if n == MAX_LANES {
            u64::MAX
        } else {
            (1u64 << n) - 1
        };
        Block {
            program,
            protection,
            golden,
            faults,
            cpu: Cpu::new(program, config),
            active,
            reg_diff: [0; NUM_REGS],
            reg_val: [[0; MAX_LANES]; NUM_REGS],
            shadow_diff: [0; NUM_REGS],
            shadow_val: [[0; MAX_LANES]; NUM_REGS],
            mem_diff: HashMap::new(),
            mem_diff_count: [0; MAX_LANES],
            outcomes: [None; MAX_LANES],
        }
    }

    /// A lane's view of a register (reference pre-step state + diffs).
    fn get_reg(&self, lane: usize, r: Reg) -> u32 {
        if self.reg_diff[r.index()] >> lane & 1 == 1 {
            self.reg_val[r.index()][lane]
        } else {
            self.cpu.reg(r)
        }
    }

    /// A lane's view of a shadow register.
    fn get_shadow(&self, lane: usize, r: Reg) -> u32 {
        if self.shadow_diff[r.index()] >> lane & 1 == 1 {
            self.shadow_val[r.index()][lane]
        } else {
            self.cpu.shadow_reg(r)
        }
    }

    /// A lane's view of a memory word the reference holds at `ref_v`.
    fn get_mem(&self, lane: usize, addr: usize, ref_v: u32) -> u32 {
        match self.mem_diff.get(&addr) {
            Some(cell) if cell.mask >> lane & 1 == 1 => cell.vals[lane],
            _ => ref_v,
        }
    }

    /// Records that `lane` holds `lane_v` at `addr` where the reference
    /// holds `ref_v`, setting or clearing the diff bit as needed.
    fn mem_set(&mut self, lane: usize, addr: usize, lane_v: u32, ref_v: u32) {
        if lane_v == ref_v {
            self.mem_clear_mask(addr, 1u64 << lane);
        } else {
            let cell = self.mem_diff.entry(addr).or_insert_with(|| MemCell {
                mask: 0,
                vals: [0; MAX_LANES],
            });
            if cell.mask >> lane & 1 == 0 {
                cell.mask |= 1u64 << lane;
                self.mem_diff_count[lane] += 1;
            }
            cell.vals[lane] = lane_v;
        }
    }

    /// Clears the memory diffs of every lane in `lanes` at `addr` (they
    /// now agree with the reference there).
    fn mem_clear_mask(&mut self, addr: usize, lanes: u64) {
        if let Some(cell) = self.mem_diff.get_mut(&addr) {
            let mut cleared = cell.mask & lanes;
            cell.mask &= !lanes;
            let empty = cell.mask == 0;
            while cleared != 0 {
                let lane = cleared.trailing_zeros() as usize;
                cleared &= cleared - 1;
                self.mem_diff_count[lane] -= 1;
            }
            if empty {
                self.mem_diff.remove(&addr);
            }
        }
    }

    fn finish_lane(&mut self, lane: usize, outcome: Outcome) {
        self.outcomes[lane] = Some(outcome);
        self.active &= !(1u64 << lane);
        // Hygiene: stale register diffs of a dead lane must not keep
        // marking steps as affected.
        for r in 0..NUM_REGS {
            self.reg_diff[r] &= self.active;
            self.shadow_diff[r] &= self.active;
        }
    }

    /// Applies `lane`'s fault to its diff state. Register and memory flips
    /// become diffs; PC flips diverge immediately and detach.
    fn inject(&mut self, lane: usize) {
        match self.faults[lane].target {
            FaultTarget::Register { reg, bit } => {
                // The lane is diff-free before its single injection, so its
                // pre-flip value is the reference's; the flip always differs.
                let r = reg.index();
                self.reg_val[r][lane] = self.cpu.reg(reg) ^ (1u32 << (bit % 32));
                self.reg_diff[r] |= 1u64 << lane;
            }
            FaultTarget::Pc { bit } => {
                let pc = self.cpu.pc() ^ (1usize << (bit % 16));
                self.detach(lane, Some(pc));
            }
            FaultTarget::Memory { addr, bit } => {
                // Out-of-range flips are no-ops, mirroring
                // `Cpu::flip_memory_bit`.
                if let Some(ref_v) = self.cpu.mem(addr) {
                    self.mem_set(lane, addr, ref_v ^ (1u32 << (bit % 32)), ref_v);
                }
            }
        }
    }

    /// Materializes `lane` into a scalar CPU at the reference's *pre-step*
    /// state (plus the lane's diffs) and runs its trial to completion. The
    /// scalar machine re-executes the diverging instruction itself, so
    /// cycle accounting and stop classification stay exact.
    fn detach(&mut self, lane: usize, pc_override: Option<usize>) {
        let mut regs = self.cpu.reg_snapshot();
        let mut shadow = self.cpu.shadow_snapshot();
        for r in 0..NUM_REGS {
            if self.reg_diff[r] >> lane & 1 == 1 {
                regs[r] = self.reg_val[r][lane];
            }
            if self.shadow_diff[r] >> lane & 1 == 1 {
                shadow[r] = self.shadow_val[r][lane];
            }
        }
        let mut mem = self.cpu.mem_words().to_vec();
        for (&addr, cell) in &self.mem_diff {
            if cell.mask >> lane & 1 == 1 {
                mem[addr] = cell.vals[lane];
            }
        }
        let cpu = Cpu::from_parts(
            regs,
            shadow,
            pc_override.unwrap_or(self.cpu.pc()),
            mem,
            self.cpu.cycles(),
            self.cpu.max_cycles(),
        );
        // The accelerated replay collapses steady wander loops (flipped
        // bounds walking an index for millions of cycles) while staying
        // bit-identical to plain stepping — see `crate::accel`.
        let result = crate::accel::replay(cpu, self.program, self.protection);
        self.finish_lane(lane, classify(&result, self.golden));
    }

    /// Finishes every still-attached lane: the reference stopped with
    /// `stop`, and attached lanes share its control flow, cycles, and
    /// memory (modulo their diffs).
    fn finish_attached(&mut self, stop: StopReason) {
        // Lanes with no memory diffs share the reference digest exactly.
        let mut clean_digest: Option<u64> = None;
        let mut done: Vec<(usize, Outcome)> = Vec::new();
        let mut m = self.active;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            let outcome = match stop {
                StopReason::Halted => {
                    let digest = if self.mem_diff_count[lane] == 0 {
                        *clean_digest.get_or_insert_with(|| self.digest_for(lane))
                    } else {
                        self.digest_for(lane)
                    };
                    if digest == self.golden.digest {
                        Outcome::Masked
                    } else {
                        Outcome::Sdc
                    }
                }
                StopReason::OutOfBounds | StopReason::BadPc => Outcome::Crash,
                StopReason::CycleLimit => Outcome::Hang,
                StopReason::DetectedMismatch => {
                    unreachable!("fault-free reference never detects a mismatch")
                }
            };
            done.push((lane, outcome));
        }
        for (lane, outcome) in done {
            self.finish_lane(lane, outcome);
        }
    }

    /// A lane's output digest at a `Halted` stop — `Cpu::finish`'s FNV-1a
    /// over the stop kind and output range, with the lane's memory diffs
    /// patched in.
    fn digest_for(&self, lane: usize) -> u64 {
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            digest ^= v;
            digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
        };
        mix(1); // StopReason::Halted
        for addr in self.program.output_range.clone() {
            if let Some(ref_v) = self.cpu.mem(addr) {
                mix(u64::from(self.get_mem(lane, addr, ref_v)));
            }
        }
        digest
    }

    fn run(mut self) -> Vec<Outcome> {
        let n = self.faults.len();
        // Injection schedule: lanes ordered by fault cycle, applied just
        // before the executed-step counter reaches it — exactly
        // `run_with_fault`'s pre-step check.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&l| self.faults[l].cycle);
        let mut next = 0usize;
        let mut executed: u64 = 0;
        let stop = loop {
            while next < n && self.faults[order[next]].cycle <= executed {
                let lane = order[next];
                next += 1;
                if self.active >> lane & 1 == 1 {
                    self.inject(lane);
                }
            }
            if self.active == 0 {
                break None;
            }
            // Replicate `Cpu::step`'s entry checks against the shared state.
            if self.cpu.cycles() >= self.cpu.max_cycles() {
                break Some(StopReason::CycleLimit);
            }
            if self.cpu.pc() >= self.program.len() {
                break Some(StopReason::BadPc);
            }
            if let Some(stop) = self.step_lanes() {
                break Some(stop);
            }
            executed += 1;
        };
        if let Some(stop) = stop {
            self.finish_attached(stop);
        }
        (0..n)
            .map(|l| self.outcomes[l].expect("every lane classified"))
            .collect()
    }

    /// Executes one reference step and the per-lane divergence bookkeeping.
    /// Returns the reference's stop reason when it ends on this step; the
    /// caller then finishes the remaining attached lanes.
    #[allow(clippy::too_many_lines)]
    fn step_lanes(&mut self) -> Option<StopReason> {
        let pc = self.cpu.pc();
        let instr = self.program.instrs[pc];
        let protected = self.protection.covers(pc);
        let guard_active = !self.protection.is_empty();
        let is_guard = guard_active && (instr.is_store() || instr.is_branch());
        let srcs = instr.sources_fixed();

        // Which lanes can behave differently from the reference here: any
        // lane whose source registers diverge (shadow divergence matters
        // only where shadow state is read — protected compute and guard
        // compares).
        let mut affected: u64 = 0;
        for r in srcs.into_iter().flatten() {
            affected |= self.reg_diff[r.index()];
            if protected || is_guard {
                affected |= self.shadow_diff[r.index()];
            }
        }
        affected &= self.active;

        // Protection guard: stores and branches compare sources against
        // the shadow file before executing. The reference (and every
        // unaffected lane) passes by construction; affected lanes check
        // for real and drop out Detected on mismatch.
        if is_guard && affected != 0 {
            let mut m = affected;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                m &= m - 1;
                for r in srcs.into_iter().flatten() {
                    if self.get_reg(lane, r) != self.get_shadow(lane, r) {
                        self.finish_lane(lane, Outcome::Detected);
                        break;
                    }
                }
            }
            affected &= self.active;
        }

        match instr {
            Instr::Add(..)
            | Instr::Sub(..)
            | Instr::Mul(..)
            | Instr::And(..)
            | Instr::Or(..)
            | Instr::Xor(..)
            | Instr::Sll(..)
            | Instr::Srl(..)
            | Instr::Addi(..) => {
                let rd = instr.dest().expect("ALU writes a register").index();
                // Lane results from the pre-step view.
                let mut vals = [0u32; MAX_LANES];
                let mut svals = [0u32; MAX_LANES];
                let mut m = affected;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    vals[lane] = alu_value(instr, |r| self.get_reg(lane, r));
                    svals[lane] = if protected {
                        alu_value(instr, |r| self.get_shadow(lane, r))
                    } else {
                        vals[lane]
                    };
                }
                let info = self.cpu.step(self.program, self.protection);
                debug_assert!(info.stop.is_none(), "ALU never stops");
                let ref_v = info.wrote.expect("ALU writes").1;
                // Every live lane (affected or not) now holds a value in
                // rd; only affected lanes can differ from the reference.
                let mut new_rd = 0u64;
                let mut new_srd = 0u64;
                m = affected;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if vals[lane] != ref_v {
                        new_rd |= 1u64 << lane;
                        self.reg_val[rd][lane] = vals[lane];
                    }
                    if svals[lane] != ref_v {
                        new_srd |= 1u64 << lane;
                        self.shadow_val[rd][lane] = svals[lane];
                    }
                }
                self.reg_diff[rd] = new_rd;
                self.shadow_diff[rd] = new_srd;
                None
            }
            Instr::Ld(rd_reg, base, off) => {
                let mem_len = self.cpu.mem_words().len();
                let ref_addr = addr_of(self.cpu.reg(base), off, mem_len);
                let Some(ra) = ref_addr else {
                    // The reference crashes here. Affected lanes get their
                    // own fate: out-of-bounds crashes too, in-bounds keeps
                    // running — detached from the (dead) reference.
                    let mut m = affected;
                    while m != 0 {
                        let lane = m.trailing_zeros() as usize;
                        m &= m - 1;
                        match addr_of(self.get_reg(lane, base), off, mem_len) {
                            Some(_) => self.detach(lane, None),
                            None => self.finish_lane(lane, Outcome::Crash),
                        }
                    }
                    return Some(StopReason::OutOfBounds);
                };
                // Lanes differing at the reference's load address read a
                // different value even with an identical base register.
                if let Some(cell) = self.mem_diff.get(&ra) {
                    affected |= cell.mask & self.active;
                }
                let ref_at_ra = self.cpu.mem(ra).expect("in bounds");
                let mut vals = [0u32; MAX_LANES];
                let mut crashed = 0u64;
                let mut m = affected;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    match addr_of(self.get_reg(lane, base), off, mem_len) {
                        Some(la) if la == ra => vals[lane] = self.get_mem(lane, ra, ref_at_ra),
                        Some(la) => {
                            let ref_at_la = self.cpu.mem(la).expect("in bounds");
                            vals[lane] = self.get_mem(lane, la, ref_at_la);
                        }
                        None => crashed |= 1u64 << lane,
                    }
                }
                let info = self.cpu.step(self.program, self.protection);
                debug_assert!(info.stop.is_none(), "reference address in bounds");
                let ref_v = info.wrote.expect("load writes").1;
                let mut mc = crashed;
                while mc != 0 {
                    let lane = mc.trailing_zeros() as usize;
                    mc &= mc - 1;
                    self.finish_lane(lane, Outcome::Crash);
                }
                let rd = rd_reg.index();
                let mut new_rd = 0u64;
                m = affected & self.active;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if vals[lane] != ref_v {
                        new_rd |= 1u64 << lane;
                        self.reg_val[rd][lane] = vals[lane];
                        self.shadow_val[rd][lane] = vals[lane];
                    }
                }
                // Loads write regs and shadow identically.
                self.reg_diff[rd] = new_rd;
                self.shadow_diff[rd] = new_rd;
                None
            }
            Instr::St(src, base, off) => {
                let mem_len = self.cpu.mem_words().len();
                let ref_addr = addr_of(self.cpu.reg(base), off, mem_len);
                let Some(ra) = ref_addr else {
                    let mut m = affected;
                    while m != 0 {
                        let lane = m.trailing_zeros() as usize;
                        m &= m - 1;
                        match addr_of(self.get_reg(lane, base), off, mem_len) {
                            Some(_) => self.detach(lane, None),
                            None => self.finish_lane(lane, Outcome::Crash),
                        }
                    }
                    return Some(StopReason::OutOfBounds);
                };
                let ref_v = self.cpu.reg(src);
                let ref_old = self.cpu.mem(ra).expect("in bounds");
                // Per-lane store plans from the pre-step view.
                let mut laddr = [0usize; MAX_LANES];
                let mut lval = [0u32; MAX_LANES];
                let mut lold = [0u32; MAX_LANES];
                let mut lref_at = [0u32; MAX_LANES];
                let mut crashed = 0u64;
                let mut m = affected;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    match addr_of(self.get_reg(lane, base), off, mem_len) {
                        Some(la) => {
                            laddr[lane] = la;
                            lval[lane] = self.get_reg(lane, src);
                            lold[lane] = self.get_mem(lane, ra, ref_old);
                            // The reference only writes `ra`, so its value
                            // at any other address is the pre-step one.
                            lref_at[lane] = self.cpu.mem(la).expect("in bounds");
                        }
                        None => crashed |= 1u64 << lane,
                    }
                }
                let info = self.cpu.step(self.program, self.protection);
                debug_assert!(info.stop.is_none(), "reference address in bounds");
                let mut mc = crashed;
                while mc != 0 {
                    let lane = mc.trailing_zeros() as usize;
                    mc &= mc - 1;
                    self.finish_lane(lane, Outcome::Crash);
                }
                let survivors = affected & self.active;
                // Unaffected lanes stored the same value at the same
                // address as the reference: any stale diff there clears.
                self.mem_clear_mask(ra, self.active & !survivors);
                let mut ms = survivors;
                while ms != 0 {
                    let lane = ms.trailing_zeros() as usize;
                    ms &= ms - 1;
                    let (la, lv) = (laddr[lane], lval[lane]);
                    if la == ra {
                        self.mem_set(lane, ra, lv, ref_v);
                    } else {
                        self.mem_set(lane, ra, lold[lane], ref_v);
                        self.mem_set(lane, la, lv, lref_at[lane]);
                    }
                }
                None
            }
            Instr::Beq(a, b, _) | Instr::Bne(a, b, _) | Instr::Blt(a, b, _) => {
                let ref_taken = branch_taken(instr, self.cpu.reg(a), self.cpu.reg(b));
                let mut m = affected;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let taken = branch_taken(instr, self.get_reg(lane, a), self.get_reg(lane, b));
                    if taken != ref_taken {
                        self.detach(lane, None);
                    }
                }
                let info = self.cpu.step(self.program, self.protection);
                debug_assert!(info.stop.is_none(), "branches never stop");
                None
            }
            Instr::Jmp(_) | Instr::Nop => {
                let info = self.cpu.step(self.program, self.protection);
                debug_assert!(info.stop.is_none(), "jmp/nop never stop");
                None
            }
            Instr::Halt => {
                // No state changes: attached lanes halt exactly like the
                // reference, differing only through their memory diffs.
                Some(StopReason::Halted)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::run_golden;
    use crate::workload;
    use lori_core::rng::Rng;

    /// Random mixed-target specs in a fixed order, covering edge cycles.
    fn mixed_specs(
        rng: &mut Rng,
        golden: &ExecResult,
        mem_words: usize,
        n: usize,
    ) -> Vec<FaultSpec> {
        (0..n)
            .map(|i| {
                let cycle = match i {
                    0 => 0,
                    1 => golden.cycles,
                    2 => golden.cycles.saturating_sub(1),
                    _ => rng.below(golden.cycles.max(1) + 2),
                };
                let target = match rng.below(4) {
                    0 => FaultTarget::Pc {
                        bit: u8::try_from(rng.below(16)).unwrap(),
                    },
                    1 => FaultTarget::Memory {
                        addr: rng.below(mem_words as u64 + 8) as usize,
                        bit: u8::try_from(rng.below(32)).unwrap(),
                    },
                    _ => FaultTarget::Register {
                        reg: Reg::new(u8::try_from(rng.below(NUM_REGS as u64)).unwrap()).unwrap(),
                        bit: u8::try_from(rng.below(32)).unwrap(),
                    },
                };
                FaultSpec { target, cycle }
            })
            .collect()
    }

    #[test]
    fn block_matches_scalar_across_workloads_and_protections() {
        let config = CpuConfig::default();
        for (w, program) in workload::all().iter().enumerate() {
            let golden = run_golden(program, &config);
            let protections = [
                Protection::none(),
                Protection::full(program),
                Protection::for_instructions(program, (0..program.len()).step_by(3)).unwrap(),
            ];
            for (p, protection) in protections.iter().enumerate() {
                let mut rng = Rng::from_seed(0x1a9e + w as u64 * 31 + p as u64);
                let specs = mixed_specs(&mut rng, &golden, config.memory_words, 64);
                let scalar: Vec<Outcome> = specs
                    .iter()
                    .map(|f| run_with_fault(program, &config, protection, &golden, f))
                    .collect();
                let lanes = run_fault_block(program, &config, protection, &golden, &specs);
                assert_eq!(scalar, lanes, "{} protection #{p}", program.name);
            }
        }
    }

    #[test]
    fn ragged_and_narrow_widths_match_scalar() {
        let config = CpuConfig::default();
        let program = &workload::all()[1]; // bubble_sort: branch-heavy
        let golden = run_golden(program, &config);
        let protection = Protection::for_instructions(program, 0..program.len() / 2).unwrap();
        let mut rng = Rng::from_seed(0xbeef);
        let specs = mixed_specs(&mut rng, &golden, config.memory_words, 100);
        let scalar = campaign_outcomes(
            program,
            &config,
            &protection,
            &golden,
            &specs,
            1,
            Parallelism::serial(),
            None,
        );
        for width in [2, 7, 64] {
            for threads in [1, 4] {
                let lanes = campaign_outcomes(
                    program,
                    &config,
                    &protection,
                    &golden,
                    &specs,
                    width,
                    Parallelism::new(threads),
                    None,
                );
                assert_eq!(scalar, lanes, "width {width} threads {threads}");
            }
        }
    }

    #[test]
    fn lanes_env_parsing() {
        // Env mutation is process-global; exercise all cases in one test.
        std::env::remove_var("LORI_LANES");
        assert_eq!(lanes_from_env(), MAX_LANES);
        for (raw, want) in [
            ("1", 1),
            ("64", 64),
            ("7", 7),
            ("0", 64),
            ("65", 64),
            ("x", 64),
        ] {
            std::env::set_var("LORI_LANES", raw);
            assert_eq!(lanes_from_env(), want, "LORI_LANES={raw}");
        }
        std::env::remove_var("LORI_LANES");
    }
}
