//! A small RISC-style instruction set.
//!
//! 16 general-purpose 32-bit registers (`r0`–`r15`, all writable), word-
//! addressed memory, PC-relative branches. Rich enough to express the
//! workloads of [`crate::workload`], small enough that exhaustive-ish fault
//! campaigns stay cheap.

use crate::error::ArchError;
use std::fmt;

/// Number of architectural registers.
pub const NUM_REGS: usize = 16;

/// A register index (`0..16`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register index.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::BadRegister`] for indices ≥ 16.
    pub fn new(index: u8) -> Result<Self, ArchError> {
        if (index as usize) < NUM_REGS {
            Ok(Reg(index))
        } else {
            Err(ArchError::BadRegister(index))
        }
    }

    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Shorthand constructor used heavily by workload builders.
///
/// # Panics
///
/// Panics for indices ≥ 16 (workloads are static, so this is a programming
/// error, not input validation).
#[must_use]
pub fn r(index: u8) -> Reg {
    Reg::new(index).expect("register index below 16")
}

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `rd = rs1 + rs2` (wrapping).
    Add(Reg, Reg, Reg),
    /// `rd = rs1 - rs2` (wrapping).
    Sub(Reg, Reg, Reg),
    /// `rd = rs1 * rs2` (wrapping, low 32 bits).
    Mul(Reg, Reg, Reg),
    /// `rd = rs1 & rs2`.
    And(Reg, Reg, Reg),
    /// `rd = rs1 | rs2`.
    Or(Reg, Reg, Reg),
    /// `rd = rs1 ^ rs2`.
    Xor(Reg, Reg, Reg),
    /// `rd = rs1 << (rs2 & 31)`.
    Sll(Reg, Reg, Reg),
    /// `rd = rs1 >> (rs2 & 31)` (logical).
    Srl(Reg, Reg, Reg),
    /// `rd = rs1 + imm` (wrapping).
    Addi(Reg, Reg, i32),
    /// `rd = mem[rs1 + imm]`.
    Ld(Reg, Reg, i32),
    /// `mem[rs1 + imm] = rs2`.
    St(Reg, Reg, i32),
    /// `if rs1 == rs2 { pc += offset }` (offset in instructions, relative to
    /// the next instruction).
    Beq(Reg, Reg, i32),
    /// `if rs1 != rs2 { pc += offset }`.
    Bne(Reg, Reg, i32),
    /// `if rs1 < rs2 (unsigned) { pc += offset }`.
    Blt(Reg, Reg, i32),
    /// Unconditional relative jump.
    Jmp(i32),
    /// No operation.
    Nop,
    /// Stop execution successfully.
    Halt,
}

impl Instr {
    /// The destination register, if the instruction writes one.
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Instr::Add(rd, _, _)
            | Instr::Sub(rd, _, _)
            | Instr::Mul(rd, _, _)
            | Instr::And(rd, _, _)
            | Instr::Or(rd, _, _)
            | Instr::Xor(rd, _, _)
            | Instr::Sll(rd, _, _)
            | Instr::Srl(rd, _, _)
            | Instr::Addi(rd, _, _)
            | Instr::Ld(rd, _, _) => Some(rd),
            _ => None,
        }
    }

    /// The registers the instruction reads.
    #[must_use]
    pub fn sources(&self) -> Vec<Reg> {
        self.sources_fixed().into_iter().flatten().collect()
    }

    /// The registers the instruction reads, without allocating: at most two
    /// slots, in the same order as [`Instr::sources`], unused slots `None`.
    /// This is the per-step hot-path variant used by the simulator's guard
    /// compares and the lane engine's divergence masks.
    #[must_use]
    pub fn sources_fixed(&self) -> [Option<Reg>; 2] {
        match *self {
            Instr::Add(_, a, b)
            | Instr::Sub(_, a, b)
            | Instr::Mul(_, a, b)
            | Instr::And(_, a, b)
            | Instr::Or(_, a, b)
            | Instr::Xor(_, a, b)
            | Instr::Sll(_, a, b)
            | Instr::Srl(_, a, b) => [Some(a), Some(b)],
            Instr::Addi(_, a, _) | Instr::Ld(_, a, _) => [Some(a), None],
            Instr::St(b, a, _) => [Some(a), Some(b)],
            Instr::Beq(a, b, _) | Instr::Bne(a, b, _) | Instr::Blt(a, b, _) => [Some(a), Some(b)],
            Instr::Jmp(_) | Instr::Nop | Instr::Halt => [None, None],
        }
    }

    /// Whether this is a memory access.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(self, Instr::Ld(..) | Instr::St(..))
    }

    /// Whether this is a control-flow instruction.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Instr::Beq(..) | Instr::Bne(..) | Instr::Blt(..) | Instr::Jmp(..)
        )
    }

    /// Whether this is a store (externally visible side effect).
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::St(..))
    }

    /// A small integer encoding of the opcode class, for ML features.
    #[must_use]
    pub fn opcode_class(&self) -> usize {
        match self {
            Instr::Add(..) | Instr::Sub(..) | Instr::Addi(..) => 0, // arithmetic
            Instr::Mul(..) => 1,
            Instr::And(..) | Instr::Or(..) | Instr::Xor(..) | Instr::Sll(..) | Instr::Srl(..) => 2,
            Instr::Ld(..) => 3,
            Instr::St(..) => 4,
            Instr::Beq(..) | Instr::Bne(..) | Instr::Blt(..) | Instr::Jmp(..) => 5,
            Instr::Nop | Instr::Halt => 6,
        }
    }
}

/// A program: instructions plus initial data memory and the memory range
/// holding the architecturally-visible result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The instruction stream.
    pub instrs: Vec<Instr>,
    /// Initial data memory (word-addressed).
    pub data: Vec<u32>,
    /// The memory words that constitute the program's output.
    pub output_range: std::ops::Range<usize>,
    /// Human-readable name for reports.
    pub name: String,
}

impl Program {
    /// Creates a program.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::EmptyProgram`] for an empty instruction stream.
    pub fn new(
        name: impl Into<String>,
        instrs: Vec<Instr>,
        data: Vec<u32>,
        output_range: std::ops::Range<usize>,
    ) -> Result<Self, ArchError> {
        if instrs.is_empty() {
            return Err(ArchError::EmptyProgram);
        }
        Ok(Program {
            instrs,
            data,
            output_range,
            name: name.into(),
        })
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty (never true for constructed programs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_bounds() {
        assert!(Reg::new(15).is_ok());
        assert_eq!(Reg::new(16), Err(ArchError::BadRegister(16)));
        assert_eq!(r(3).index(), 3);
        assert_eq!(format!("{}", r(7)), "r7");
    }

    #[test]
    #[should_panic(expected = "register index below 16")]
    fn r_panics_out_of_range() {
        let _ = r(16);
    }

    #[test]
    fn dest_and_sources() {
        let add = Instr::Add(r(1), r(2), r(3));
        assert_eq!(add.dest(), Some(r(1)));
        assert_eq!(add.sources(), vec![r(2), r(3)]);
        let st = Instr::St(r(4), r(5), 0);
        assert_eq!(st.dest(), None);
        assert_eq!(st.sources(), vec![r(5), r(4)]);
        assert_eq!(Instr::Halt.sources(), vec![]);
        assert_eq!(Instr::Jmp(-2).dest(), None);
    }

    #[test]
    fn classification_flags() {
        assert!(Instr::Ld(r(0), r(1), 0).is_memory());
        assert!(Instr::St(r(0), r(1), 0).is_store());
        assert!(Instr::Beq(r(0), r(1), 2).is_branch());
        assert!(!Instr::Add(r(0), r(1), r(2)).is_branch());
        assert_eq!(Instr::Mul(r(0), r(1), r(2)).opcode_class(), 1);
        assert_eq!(Instr::Halt.opcode_class(), 6);
    }

    #[test]
    fn program_validation() {
        assert_eq!(
            Program::new("empty", vec![], vec![], 0..0),
            Err(ArchError::EmptyProgram)
        );
        let p = Program::new("one", vec![Instr::Halt], vec![1, 2], 0..2).unwrap();
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }
}
