//! The architectural CPU simulator.
//!
//! Executes [`crate::isa::Program`]s one instruction per cycle over an
//! architectural state of 16 registers, a PC, and word-addressed memory.
//! Supports shadow-register instruction replication (selective protection)
//! with compare points at stores and branches — the mechanism behind the
//! IPAS-style experiment E8.

use crate::error::ArchError;
use crate::isa::{Instr, Program, Reg, NUM_REGS};
use std::collections::BTreeSet;

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// `Halt` executed — normal completion.
    Halted,
    /// A load/store touched memory outside the address space.
    OutOfBounds,
    /// The PC left the program (and it wasn't a `Halt`).
    BadPc,
    /// The cycle limit was reached (hang).
    CycleLimit,
    /// A shadow-register compare caught a divergence.
    DetectedMismatch,
}

/// Execution configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuConfig {
    /// Size of data memory in 32-bit words.
    pub memory_words: usize,
    /// Cycle budget before the run is declared hung.
    pub max_cycles: u64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            memory_words: 4096,
            max_cycles: 2_000_000,
        }
    }
}

/// Selective-replication configuration: the instruction indices whose
/// computation is duplicated into a shadow register file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Protection {
    protected: BTreeSet<usize>,
}

impl Protection {
    /// No protection.
    #[must_use]
    pub fn none() -> Self {
        Protection::default()
    }

    /// Protects the given instruction indices.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::BadProtectionIndex`] if any index is outside the
    /// program.
    pub fn for_instructions(
        program: &Program,
        indices: impl IntoIterator<Item = usize>,
    ) -> Result<Self, ArchError> {
        let mut protected = BTreeSet::new();
        for i in indices {
            if i >= program.len() {
                return Err(ArchError::BadProtectionIndex(i));
            }
            protected.insert(i);
        }
        Ok(Protection { protected })
    }

    /// Protects every instruction (full DMR).
    #[must_use]
    pub fn full(program: &Program) -> Self {
        Protection {
            protected: (0..program.len()).collect(),
        }
    }

    /// Whether instruction `i` is protected.
    #[must_use]
    pub fn covers(&self, i: usize) -> bool {
        self.protected.contains(&i)
    }

    /// Number of protected instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.protected.len()
    }

    /// Whether no instruction is protected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.protected.is_empty()
    }
}

/// What one `step` did (for monitors and fault campaigns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepInfo {
    /// The instruction index that executed.
    pub instr_index: usize,
    /// The register written, with its new value, if any.
    pub wrote: Option<(Reg, u32)>,
    /// A stop reason, if execution ended on this step.
    pub stop: Option<StopReason>,
}

/// The result of running a program to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecResult {
    /// Why execution stopped.
    pub stop: StopReason,
    /// Cycles consumed (includes replication/compare overhead).
    pub cycles: u64,
    /// FNV-1a digest of the output memory range (plus the stop kind).
    pub digest: u64,
    /// The output memory words.
    pub output: Vec<u32>,
}

/// The architectural machine state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cpu {
    regs: [u32; NUM_REGS],
    shadow: [u32; NUM_REGS],
    pc: usize,
    mem: Vec<u32>,
    cycles: u64,
    max_cycles: u64,
}

impl Cpu {
    /// Creates a CPU loaded with the program's data memory.
    #[must_use]
    pub fn new(program: &Program, config: &CpuConfig) -> Self {
        let mut mem = vec![0u32; config.memory_words.max(program.data.len())];
        mem[..program.data.len()].copy_from_slice(&program.data);
        Cpu {
            regs: [0; NUM_REGS],
            shadow: [0; NUM_REGS],
            pc: 0,
            mem,
            cycles: 0,
            max_cycles: config.max_cycles,
        }
    }

    /// Rebuilds a CPU mid-run from explicit architectural state. This is
    /// the lane engine's detach path: a lane that diverges from the shared
    /// reference trace materializes into a scalar CPU and runs the rest of
    /// its trial alone (see `crate::lane`).
    pub(crate) fn from_parts(
        regs: [u32; NUM_REGS],
        shadow: [u32; NUM_REGS],
        pc: usize,
        mem: Vec<u32>,
        cycles: u64,
        max_cycles: u64,
    ) -> Self {
        Cpu {
            regs,
            shadow,
            pc,
            mem,
            cycles,
            max_cycles,
        }
    }

    /// The cycle budget this CPU was configured with.
    pub(crate) fn max_cycles(&self) -> u64 {
        self.max_cycles
    }

    /// Reads a shadow register.
    pub(crate) fn shadow_reg(&self, r: Reg) -> u32 {
        self.shadow[r.index()]
    }

    /// A snapshot of the shadow register file.
    pub(crate) fn shadow_snapshot(&self) -> [u32; NUM_REGS] {
        self.shadow
    }

    /// The full data memory.
    pub(crate) fn mem_words(&self) -> &[u32] {
        &self.mem
    }

    /// Teleports architectural state by an externally computed amount —
    /// the loop accelerator's skip (see `crate::accel`). Shadow registers
    /// are intentionally untouched: acceleration only runs with empty
    /// protection, where shadow state is never read.
    pub(crate) fn time_warp(&mut self, regs: [u32; NUM_REGS], cycles_delta: u64) {
        self.regs = regs;
        self.cycles += cycles_delta;
    }

    /// The current cycle count.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The current PC.
    #[must_use]
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Reads a register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// A snapshot of all registers (for anomaly detectors).
    #[must_use]
    pub fn reg_snapshot(&self) -> [u32; NUM_REGS] {
        self.regs
    }

    /// Reads a memory word (None if out of range).
    #[must_use]
    pub fn mem(&self, addr: usize) -> Option<u32> {
        self.mem.get(addr).copied()
    }

    /// Flips one bit of a register.
    pub fn flip_register_bit(&mut self, r: Reg, bit: u8) {
        self.regs[r.index()] ^= 1u32 << (bit % 32);
    }

    /// Flips one bit of the PC.
    pub fn flip_pc_bit(&mut self, bit: u8) {
        self.pc ^= 1usize << (bit % 16);
    }

    /// Flips one bit of a memory word (no-op when out of range — the fault
    /// landed in unimplemented address space).
    pub fn flip_memory_bit(&mut self, addr: usize, bit: u8) {
        if let Some(w) = self.mem.get_mut(addr) {
            *w ^= 1u32 << (bit % 32);
        }
    }

    fn addr(&self, base: Reg, offset: i32) -> Option<usize> {
        let a = i64::from(self.regs[base.index()]) + i64::from(offset);
        if a < 0 || a as usize >= self.mem.len() {
            None
        } else {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(a as usize)
        }
    }

    fn branch(&mut self, taken: bool, offset: i32) {
        // pc already points at the *next* instruction when this is called.
        if taken {
            let target = self.pc as i64 + i64::from(offset);
            self.pc = if target < 0 {
                usize::MAX
            } else {
                target as usize
            };
        }
    }

    /// Executes one instruction.
    ///
    /// When `protection` covers the executing instruction, its computation
    /// also runs on the shadow register file (costing one extra cycle);
    /// stores and branches compare their sources against the shadow copy
    /// when any protection is active, flagging divergence as
    /// [`StopReason::DetectedMismatch`].
    pub fn step(&mut self, program: &Program, protection: &Protection) -> StepInfo {
        if self.cycles >= self.max_cycles {
            return StepInfo {
                instr_index: self.pc.min(program.len().saturating_sub(1)),
                wrote: None,
                stop: Some(StopReason::CycleLimit),
            };
        }
        if self.pc >= program.len() {
            return StepInfo {
                instr_index: program.len().saturating_sub(1),
                wrote: None,
                stop: Some(StopReason::BadPc),
            };
        }
        let idx = self.pc;
        let instr = program.instrs[idx];
        self.pc += 1;
        self.cycles += 1;
        let protected = protection.covers(idx);
        if protected {
            self.cycles += 1; // duplicated execution
        }
        let guard_active = !protection.is_empty();

        // Compare sources at stores/branches when protection is active.
        if guard_active && (instr.is_store() || instr.is_branch()) {
            self.cycles += 1; // compare cost
            for src in instr.sources_fixed().into_iter().flatten() {
                if self.regs[src.index()] != self.shadow[src.index()] {
                    return StepInfo {
                        instr_index: idx,
                        wrote: None,
                        stop: Some(StopReason::DetectedMismatch),
                    };
                }
            }
        }

        let mut wrote = None;
        let mut stop = None;
        macro_rules! alu {
            ($rd:expr, $f:expr) => {{
                let v: u32 = $f(&self.regs);
                self.regs[$rd.index()] = v;
                if protected {
                    let sv: u32 = $f(&self.shadow);
                    self.shadow[$rd.index()] = sv;
                } else {
                    self.shadow[$rd.index()] = v;
                }
                wrote = Some(($rd, v));
            }};
        }

        match instr {
            Instr::Add(rd, a, b) => {
                alu!(rd, |r: &[u32; NUM_REGS]| r[a.index()]
                    .wrapping_add(r[b.index()]));
            }
            Instr::Sub(rd, a, b) => {
                alu!(rd, |r: &[u32; NUM_REGS]| r[a.index()]
                    .wrapping_sub(r[b.index()]));
            }
            Instr::Mul(rd, a, b) => {
                alu!(rd, |r: &[u32; NUM_REGS]| r[a.index()]
                    .wrapping_mul(r[b.index()]));
            }
            Instr::And(rd, a, b) => {
                alu!(rd, |r: &[u32; NUM_REGS]| r[a.index()] & r[b.index()]);
            }
            Instr::Or(rd, a, b) => {
                alu!(rd, |r: &[u32; NUM_REGS]| r[a.index()] | r[b.index()]);
            }
            Instr::Xor(rd, a, b) => {
                alu!(rd, |r: &[u32; NUM_REGS]| r[a.index()] ^ r[b.index()]);
            }
            Instr::Sll(rd, a, b) => {
                alu!(rd, |r: &[u32; NUM_REGS]| r[a.index()]
                    << (r[b.index()] & 31));
            }
            Instr::Srl(rd, a, b) => {
                alu!(rd, |r: &[u32; NUM_REGS]| r[a.index()]
                    >> (r[b.index()] & 31));
            }
            Instr::Addi(rd, a, imm) => {
                alu!(rd, |r: &[u32; NUM_REGS]| r[a.index()]
                    .wrapping_add(imm as u32));
            }
            Instr::Ld(rd, base, off) => match self.addr(base, off) {
                Some(a) => {
                    let v = self.mem[a];
                    self.regs[rd.index()] = v;
                    self.shadow[rd.index()] = v;
                    wrote = Some((rd, v));
                }
                None => stop = Some(StopReason::OutOfBounds),
            },
            Instr::St(src, base, off) => match self.addr(base, off) {
                Some(a) => self.mem[a] = self.regs[src.index()],
                None => stop = Some(StopReason::OutOfBounds),
            },
            Instr::Beq(a, b, off) => {
                let taken = self.regs[a.index()] == self.regs[b.index()];
                self.branch(taken, off);
            }
            Instr::Bne(a, b, off) => {
                let taken = self.regs[a.index()] != self.regs[b.index()];
                self.branch(taken, off);
            }
            Instr::Blt(a, b, off) => {
                let taken = self.regs[a.index()] < self.regs[b.index()];
                self.branch(taken, off);
            }
            Instr::Jmp(off) => self.branch(true, off),
            Instr::Nop => {}
            Instr::Halt => stop = Some(StopReason::Halted),
        }

        StepInfo {
            instr_index: idx,
            wrote,
            stop,
        }
    }

    /// Runs to completion and digests the output.
    #[must_use]
    pub fn run(mut self, program: &Program, protection: &Protection) -> ExecResult {
        loop {
            let info = self.step(program, protection);
            if let Some(stop) = info.stop {
                return self.finish(program, stop);
            }
        }
    }

    /// Finalizes a run into an [`ExecResult`].
    #[must_use]
    pub fn finish(self, program: &Program, stop: StopReason) -> ExecResult {
        let output: Vec<u32> = program
            .output_range
            .clone()
            .filter_map(|a| self.mem.get(a).copied())
            .collect();
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            digest ^= v;
            digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
        };
        mix(match stop {
            StopReason::Halted => 1,
            StopReason::OutOfBounds => 2,
            StopReason::BadPc => 3,
            StopReason::CycleLimit => 4,
            StopReason::DetectedMismatch => 5,
        });
        for &w in &output {
            mix(u64::from(w));
        }
        ExecResult {
            stop,
            cycles: self.cycles,
            digest,
            output,
        }
    }
}

/// Convenience: run a program fault-free with the default CPU configuration.
#[must_use]
pub fn run_golden(program: &Program, config: &CpuConfig) -> ExecResult {
    Cpu::new(program, config).run(program, &Protection::none())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::r;

    fn add_program() -> Program {
        // mem[2] = mem[0] + mem[1]
        Program::new(
            "add",
            vec![
                Instr::Addi(r(1), r(0), 0), // r1 = r0 + 0 (base addr 0... r0 starts at 0)
                Instr::Ld(r(2), r(1), 0),
                Instr::Ld(r(3), r(1), 1),
                Instr::Add(r(4), r(2), r(3)),
                Instr::St(r(4), r(1), 2),
                Instr::Halt,
            ],
            vec![20, 22, 0],
            2..3,
        )
        .unwrap()
    }

    #[test]
    fn executes_straight_line() {
        let p = add_program();
        let res = run_golden(&p, &CpuConfig::default());
        assert_eq!(res.stop, StopReason::Halted);
        assert_eq!(res.output, vec![42]);
        assert_eq!(res.cycles, 6);
    }

    #[test]
    fn branches_loop() {
        // r2 = 5 + 4 + 3 + 2 + 1 via a countdown loop.
        let p = Program::new(
            "loop",
            vec![
                Instr::Addi(r(1), r(0), 5),   // counter
                Instr::Addi(r(2), r(0), 0),   // acc
                Instr::Add(r(2), r(2), r(1)), // L: acc += counter
                Instr::Addi(r(1), r(1), -1),
                Instr::Bne(r(1), r(0), -3), // loop while counter != 0 (r0 == 0)
                Instr::St(r(2), r(0), 0),
                Instr::Halt,
            ],
            vec![0],
            0..1,
        )
        .unwrap();
        let res = run_golden(&p, &CpuConfig::default());
        assert_eq!(res.stop, StopReason::Halted);
        assert_eq!(res.output, vec![15]);
    }

    #[test]
    fn out_of_bounds_crashes() {
        let p = Program::new(
            "oob",
            vec![
                Instr::Addi(r(1), r(0), 100_000),
                Instr::Ld(r(2), r(1), 0),
                Instr::Halt,
            ],
            vec![0],
            0..1,
        )
        .unwrap();
        let res = run_golden(&p, &CpuConfig::default());
        assert_eq!(res.stop, StopReason::OutOfBounds);
    }

    #[test]
    fn runaway_pc_crashes() {
        let p = Program::new("runaway", vec![Instr::Nop, Instr::Nop], vec![], 0..0).unwrap();
        let res = run_golden(&p, &CpuConfig::default());
        assert_eq!(res.stop, StopReason::BadPc);
    }

    #[test]
    fn infinite_loop_hangs() {
        let p = Program::new("hang", vec![Instr::Jmp(-1)], vec![], 0..0).unwrap();
        let cfg = CpuConfig {
            max_cycles: 1000,
            ..CpuConfig::default()
        };
        let res = Cpu::new(&p, &cfg).run(&p, &Protection::none());
        assert_eq!(res.stop, StopReason::CycleLimit);
        assert_eq!(res.cycles, 1000);
    }

    #[test]
    fn digest_distinguishes_outputs() {
        let p = add_program();
        let good = run_golden(&p, &CpuConfig::default());
        let mut bad_prog = p.clone();
        bad_prog.data[0] = 21;
        let bad = run_golden(&bad_prog, &CpuConfig::default());
        assert_ne!(good.digest, bad.digest);
    }

    #[test]
    fn fault_in_dead_register_is_masked() {
        let p = add_program();
        let cfg = CpuConfig::default();
        let golden = run_golden(&p, &cfg);
        let mut cpu = Cpu::new(&p, &cfg);
        cpu.flip_register_bit(r(15), 7); // r15 never used
        let res = cpu.run(&p, &Protection::none());
        assert_eq!(res.digest, golden.digest);
    }

    #[test]
    fn fault_in_live_register_corrupts_output() {
        let p = add_program();
        let cfg = CpuConfig::default();
        let golden = run_golden(&p, &cfg);
        let mut cpu = Cpu::new(&p, &cfg);
        // Execute the two loads, then corrupt r2 before the add.
        for _ in 0..3 {
            let _ = cpu.step(&p, &Protection::none());
        }
        cpu.flip_register_bit(r(2), 4);
        let res = loop {
            let info = cpu.step(&p, &Protection::none());
            if let Some(stop) = info.stop {
                break cpu.finish(&p, stop);
            }
        };
        assert_eq!(res.stop, StopReason::Halted);
        assert_ne!(res.digest, golden.digest, "SDC expected");
    }

    #[test]
    fn protection_detects_register_corruption() {
        let p = add_program();
        let cfg = CpuConfig::default();
        let protection = Protection::full(&p);
        let mut cpu = Cpu::new(&p, &cfg);
        for _ in 0..3 {
            let _ = cpu.step(&p, &protection);
        }
        cpu.flip_register_bit(r(2), 4);
        loop {
            let info = cpu.step(&p, &protection);
            if let Some(stop) = info.stop {
                assert_eq!(stop, StopReason::DetectedMismatch);
                break;
            }
        }
    }

    #[test]
    fn protection_costs_cycles() {
        let p = add_program();
        let cfg = CpuConfig::default();
        let plain = Cpu::new(&p, &cfg).run(&p, &Protection::none());
        let dmr = Cpu::new(&p, &cfg).run(&p, &Protection::full(&p));
        assert_eq!(dmr.stop, StopReason::Halted);
        assert!(dmr.cycles > plain.cycles);
        assert_eq!(
            dmr.digest, plain.digest,
            "protection must not change results"
        );
    }

    #[test]
    fn protection_validation() {
        let p = add_program();
        assert!(Protection::for_instructions(&p, [0, 3]).is_ok());
        assert_eq!(
            Protection::for_instructions(&p, [99]),
            Err(ArchError::BadProtectionIndex(99))
        );
        assert!(Protection::none().is_empty());
        assert_eq!(Protection::full(&p).len(), p.len());
    }

    #[test]
    fn memory_bit_flip_out_of_range_is_noop() {
        let p = add_program();
        let mut cpu = Cpu::new(&p, &CpuConfig::default());
        cpu.flip_memory_bit(10_000_000, 3);
        let res = cpu.run(&p, &Protection::none());
        assert_eq!(res.stop, StopReason::Halted);
    }
}
