//! Sound affine loop acceleration for detached fault-trial replay.
//!
//! A detached lane (see [`crate::lane`]) replays the rest of its trial on a
//! private scalar [`Cpu`]. Faulty trials routinely wander into long loops —
//! a flipped loop bound walks an index over millions of iterations before
//! the cycle budget expires (`Hang`) or an address leaves memory (`Crash`)
//! — and stepping those loops one instruction at a time dominates campaign
//! wall time. [`replay`] collapses them *without changing a single
//! outcome*:
//!
//! 1. **Probe** one loop period concretely: anchor at the smallest pc seen
//!    in a short observation window (the head of the outermost steady loop,
//!    so nested loops expose their full outer period), then step until
//!    control returns to the anchor, recording the pc trace, load/store
//!    addresses, and stored values.
//! 2. **Validate** the period symbolically. Hypothesising that the state at
//!    the start of period `p` is `S + p·Δ` (per-register wrapping stride
//!    `Δ` measured from the probe), every traced instruction is re-executed
//!    over affine values `c + p·d (mod 2³²)`. Add/Sub/Addi and
//!    multiplication by a period-invariant factor are exact in this domain;
//!    anything else poisons its destination. Registers whose end-of-period
//!    value fails to reproduce `S + (p+1)·Δ` are poisoned and the pass
//!    repeats to a fixed point. Poisoned values are *inert data*: the
//!    moment one feeds a branch, an address, or a stored value, the attempt
//!    aborts.
//! 3. **Bound** the skip. For every traced branch the first period whose
//!    outcome differs (exact i64 linear arithmetic inside each operand's
//!    no-wrap window) caps validity; a striding access's first
//!    out-of-bounds period and the cycle budget's expiry period are
//!    *fates* — periods in which the run provably stops. A striding load
//!    whose whole in-bounds progression holds a single value (a wander
//!    across the untouched zero region) reads that constant; otherwise it
//!    poisons its destination. With a fully affine boundary the engine may
//!    skip to the earliest violation or fate; with poisoned registers it
//!    may skip only when a fate strictly precedes every violation, since
//!    then the trial dies — on a stop whose classification reads memory and
//!    stop reason, never registers — before any poisoned value becomes
//!    observable.
//! 4. **Teleport**: `regs += p·Δ`, `cycles += p·period`, memory and pc
//!    untouched. Stores must be provably idempotent — a constant value
//!    written to a constant address that already holds it, or a constant
//!    value striding across a region that holds it everywhere — or the
//!    attempt aborts. The fated or diverging period then executes
//!    concretely, so the stop reason, stop cycle, output, and digest are
//!    bit-identical to the unaccelerated run.
//!
//! Acceleration only engages when no protection is configured (shadow
//! state is never read then); protected replays take the plain path. The
//! scalar campaign engine (`run_with_fault`, `LORI_LANES=1`) never calls
//! into this module — it stays the measured baseline.

use crate::cpu::{Cpu, ExecResult, Protection};
use crate::isa::{Instr, Program, Reg, NUM_REGS};

/// Replay steps before the first acceleration attempt. Most divergent
/// trials halt or crash quickly; only long wanderers reach a probe.
const WARMUP: u64 = 256;
/// Longest loop period the probe will chase, in instructions.
const MAX_PERIOD: usize = 512;
/// Skips shorter than this are not worth a teleport.
const MIN_SKIP: u64 = 4;
/// Attempt delay after a successful skip (a new loop phase often follows).
const RETRY: u64 = 128;

/// Runs a detached trial to completion, accelerating steady loops.
/// Bit-identical to `cpu.run(program, protection)` — same stop reason,
/// stop cycle, output, and digest.
pub(crate) fn replay(mut cpu: Cpu, program: &Program, protection: &Protection) -> ExecResult {
    if !protection.is_empty() {
        return cpu.run(program, protection);
    }
    let mut steps: u64 = 0;
    let mut next_attempt = WARMUP;
    let mut last_anchor: Option<usize> = None;
    loop {
        let info = cpu.step(program, protection);
        if let Some(stop) = info.stop {
            return cpu.finish(program, stop);
        }
        steps += 1;
        if steps >= next_attempt {
            match try_accelerate(&mut cpu, program, protection, &mut steps, &mut last_anchor) {
                Ok(true) => next_attempt = steps + RETRY,
                Ok(false) => next_attempt = steps.saturating_mul(2),
                Err(stop) => return cpu.finish(program, stop),
            }
        }
    }
}

/// One recorded probe step: the pc executed, plus the resolved address and
/// stored value for memory instructions.
struct Probe {
    pc: usize,
    addr: usize,
    st_val: u32,
}

/// A register's value as a function of the period index `p`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Sym {
    /// `value(p) = c + p·d (mod 2³²)`; `d == 0` means period-invariant.
    Aff { c: u32, d: u32 },
    /// Not affine in `p` — inert data, unusable for control or memory.
    Poison,
}

fn aff(c: u32, d: u32) -> Sym {
    Sym::Aff { c, d }
}

/// A stride reinterpreted as a signed step for exact i64 modelling.
fn signed(d: u32) -> i64 {
    #[allow(clippy::cast_possible_wrap)]
    i64::from(d as i32)
}

/// Last period index for which `c + p·signed(d)` has stayed inside
/// `[0, 2³²)` — the window where the linear i64 model equals the wrapping
/// u32 value.
fn horizon(c: u32, d: u32) -> u64 {
    let ds = signed(d);
    #[allow(clippy::cast_sign_loss)]
    if ds == 0 {
        u64::MAX
    } else if ds > 0 {
        ((0xFFFF_FFFF_i64 - i64::from(c)) / ds) as u64
    } else {
        (i64::from(c) / -ds) as u64
    }
}

/// Everything `analyze` learns from one symbolic pass.
struct PassOut {
    fin: [Sym; NUM_REGS],
    /// First period index at which validity may break (branch flip or a
    /// value leaving its no-wrap window).
    viol: u64,
    /// First period index in which the run provably stops (cycle budget or
    /// a striding access leaving memory).
    fate: u64,
    /// Idempotence obligations: `addr -> last stored value` per period.
    stores: Vec<(usize, u32)>,
}

/// Attempts acceleration at the current execution point. `Ok(true)` means
/// state was teleported at least once; `Ok(false)` means no (or no
/// worthwhile) skip; `Err` is a stop that fired while seeking or probing
/// (those steps are real execution). A teleport leaves the pc at the
/// anchor, so after each success the same anchor is re-probed immediately —
/// a long wander collapses in a handful of probes even when individual
/// skips are capped by the scan window.
fn try_accelerate(
    cpu: &mut Cpu,
    program: &Program,
    protection: &Protection,
    steps: &mut u64,
    last_anchor: &mut Option<usize>,
) -> Result<bool, crate::cpu::StopReason> {
    if !seek_anchor(cpu, program, protection, steps, last_anchor)? {
        return Ok(false);
    }
    let mut skipped = false;
    while probe_and_skip(cpu, program, protection, steps)? {
        skipped = true;
        *last_anchor = Some(cpu.pc());
    }
    if !skipped {
        *last_anchor = None;
    }
    Ok(skipped)
}

/// Steps until the pc equals `target`, bounded by one probe window.
fn walk_to(
    cpu: &mut Cpu,
    program: &Program,
    protection: &Protection,
    steps: &mut u64,
    target: usize,
) -> Result<bool, crate::cpu::StopReason> {
    for _ in 0..MAX_PERIOD {
        if cpu.pc() == target {
            return Ok(true);
        }
        let info = cpu.step(program, protection);
        *steps += 1;
        if let Some(stop) = info.stop {
            return Err(stop);
        }
    }
    Ok(cpu.pc() == target)
}

/// Positions the pc on a probe anchor: the previously successful anchor if
/// it is still reachable, else the smallest pc visited in an observation
/// window — the head of the outermost steady loop, so nested loops expose
/// their full outer period rather than a single inner iteration.
fn seek_anchor(
    cpu: &mut Cpu,
    program: &Program,
    protection: &Protection,
    steps: &mut u64,
    last_anchor: &mut Option<usize>,
) -> Result<bool, crate::cpu::StopReason> {
    if let Some(a) = *last_anchor {
        if walk_to(cpu, program, protection, steps, a)? {
            return Ok(true);
        }
        *last_anchor = None;
    }
    let mut min_pc = cpu.pc();
    for _ in 0..MAX_PERIOD {
        let info = cpu.step(program, protection);
        *steps += 1;
        if let Some(stop) = info.stop {
            return Err(stop);
        }
        min_pc = min_pc.min(cpu.pc());
    }
    walk_to(cpu, program, protection, steps, min_pc)
}

/// One probe-validate-teleport attempt anchored at the current pc.
fn probe_and_skip(
    cpu: &mut Cpu,
    program: &Program,
    protection: &Protection,
    steps: &mut u64,
) -> Result<bool, crate::cpu::StopReason> {
    let anchor_pc = cpu.pc();
    let s0 = cpu.reg_snapshot();
    let mem_len = cpu.mem_words().len();

    // Probe one period: step until control returns to the anchor.
    let mut trace: Vec<Probe> = Vec::new();
    loop {
        if trace.len() >= MAX_PERIOD {
            return Ok(false);
        }
        let pc = cpu.pc();
        let mut rec = Probe {
            pc,
            addr: usize::MAX,
            st_val: 0,
        };
        if pc < program.len() {
            match program.instrs[pc] {
                Instr::Ld(_, base, off) => {
                    if let Some(a) = addr_checked(cpu.reg(base), off, mem_len) {
                        rec.addr = a;
                    }
                }
                Instr::St(src, base, off) => {
                    if let Some(a) = addr_checked(cpu.reg(base), off, mem_len) {
                        rec.addr = a;
                    }
                    rec.st_val = cpu.reg(src);
                }
                _ => {}
            }
        }
        let info = cpu.step(program, protection);
        *steps += 1;
        if let Some(stop) = info.stop {
            return Err(stop);
        }
        trace.push(rec);
        if cpu.pc() == anchor_pc {
            break;
        }
    }

    let s1 = cpu.reg_snapshot();
    let mut delta = [0u32; NUM_REGS];
    for r in 0..NUM_REGS {
        delta[r] = s1[r].wrapping_sub(s0[r]);
    }
    let period = trace.len() as u64;
    let p_budget = cpu.max_cycles().saturating_sub(cpu.cycles()) / period;

    // Two analysis modes, poison-first: treating striding loads as poison
    // costs no scans and lets a fate-bound skip run to its full length,
    // while the uniform-region mode (striding loads over single-valued
    // memory read a constant) validates control that depends on them at
    // the price of a scan-capped skip. The first mode to produce a
    // worthwhile plan wins.
    let mut plan: Option<(u64, [bool; NUM_REGS])> = None;
    'modes: for assume_uniform in [false, true] {
        // Poison fixed point: registers whose end-of-period symbol fails
        // to reproduce the affine hypothesis are untrusted, and distrust
        // spreads.
        let mut bad = [false; NUM_REGS];
        let out = loop {
            let Some(out) = analyze(
                cpu,
                program,
                &trace,
                &s1,
                &delta,
                &bad,
                p_budget,
                assume_uniform,
            ) else {
                continue 'modes;
            };
            let mut grew = false;
            for r in 0..NUM_REGS {
                let want = aff(s1[r].wrapping_add(delta[r]), delta[r]);
                if !bad[r] && out.fin[r] != want {
                    bad[r] = true;
                    grew = true;
                }
            }
            if !grew {
                break out;
            }
        };

        // Memory must be period-invariant: every store re-writes what
        // memory already holds.
        if out.stores.iter().any(|&(addr, v)| cpu.mem(addr) != Some(v)) {
            continue 'modes;
        }

        let clean = !bad.iter().any(|&b| b);
        let p_skip = if clean {
            out.viol.min(out.fate)
        } else if out.fate < out.viol {
            // Poisoned registers are only unobservable if the trial
            // provably stops (on a memory-and-stop-reason classification)
            // while the trace is still valid.
            out.fate
        } else {
            continue 'modes;
        };
        if p_skip >= MIN_SKIP {
            plan = Some((p_skip, bad));
            break 'modes;
        }
    }
    let Some((p_skip, bad)) = plan else {
        return Ok(false);
    };

    let mut regs = s1;
    for r in 0..NUM_REGS {
        if !bad[r] {
            // Δ·p mod 2³² — poisoned registers keep their (inert) values.
            #[allow(clippy::cast_possible_truncation)]
            let stride = u64::from(delta[r]).wrapping_mul(p_skip) as u32;
            regs[r] = s1[r].wrapping_add(stride);
        }
    }
    cpu.time_warp(regs, p_skip * period);
    Ok(true)
}

/// The effective address of a memory access, `None` when out of bounds —
/// mirrors `Cpu::addr`.
fn addr_checked(base: u32, offset: i32, mem_len: usize) -> Option<usize> {
    let a = i64::from(base) + i64::from(offset);
    if a < 0 || a as usize >= mem_len {
        None
    } else {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        Some(a as usize)
    }
}

/// First period index at which the striding access `a0 + p·ds` leaves
/// `[0, mem_len)`.
#[allow(clippy::cast_sign_loss, clippy::cast_possible_wrap)]
fn first_oob(a0: i64, ds: i64, mem_len: usize) -> u64 {
    if a0 < 0 || a0 >= mem_len as i64 {
        0
    } else if ds > 0 {
        ((mem_len as i64 - a0) + ds - 1).div_euclid(ds) as u64
    } else {
        (a0 / -ds + 1) as u64
    }
}

/// Longest scan per striding access, in periods. A capped scan turns into
/// a validity bound rather than an abort, and the immediate re-probe after
/// each teleport picks up where the window ended.
const SCAN_CAP: u64 = 1024;

/// Length of the leading run of words along the progression `a0 + p·ds`
/// that hold `v`, scanning at most `min(n, SCAN_CAP)` periods. The caller
/// guarantees `a0 + p·ds` is in bounds for `p < n`.
fn uniform_prefix(cpu: &Cpu, a0: i64, ds: i64, n: u64, v: u32) -> u64 {
    let n = n.min(SCAN_CAP);
    let mut a = a0;
    for p in 0..n {
        #[allow(clippy::cast_sign_loss)]
        if cpu.mem(a as usize) != Some(v) {
            return p;
        }
        a += ds;
    }
    n
}

/// One symbolic pass over the probed trace. Returns `None` when the period
/// cannot be modelled at all (poison reaching control or memory, a
/// non-constant store, a constant address that moved).
#[allow(clippy::too_many_lines)]
#[allow(clippy::too_many_arguments)]
fn analyze(
    cpu: &Cpu,
    program: &Program,
    trace: &[Probe],
    s1: &[u32; NUM_REGS],
    delta: &[u32; NUM_REGS],
    bad: &[bool; NUM_REGS],
    p_budget: u64,
    assume_uniform: bool,
) -> Option<PassOut> {
    let mem_len = cpu.mem_words().len();
    let mut syms = [Sym::Poison; NUM_REGS];
    for r in 0..NUM_REGS {
        if !bad[r] {
            syms[r] = aff(s1[r], delta[r]);
        }
    }
    let mut stores: Vec<(usize, u32)> = Vec::new();
    let mut viol = u64::MAX;
    let mut fate = p_budget;

    let get = |syms: &[Sym; NUM_REGS], r: Reg| syms[r.index()];
    for (i, rec) in trace.iter().enumerate() {
        let instr = program.instrs[rec.pc];
        let next_pc = if i + 1 < trace.len() {
            trace[i + 1].pc
        } else {
            trace[0].pc
        };
        match instr {
            Instr::Add(rd, a, b)
            | Instr::Sub(rd, a, b)
            | Instr::Mul(rd, a, b)
            | Instr::And(rd, a, b)
            | Instr::Or(rd, a, b)
            | Instr::Xor(rd, a, b)
            | Instr::Sll(rd, a, b)
            | Instr::Srl(rd, a, b) => {
                syms[rd.index()] = alu_sym(instr, get(&syms, a), get(&syms, b));
            }
            Instr::Addi(rd, a, imm) => {
                #[allow(clippy::cast_sign_loss)]
                let v = match get(&syms, a) {
                    Sym::Aff { c, d } => aff(c.wrapping_add(imm as u32), d),
                    Sym::Poison => Sym::Poison,
                };
                syms[rd.index()] = v;
            }
            Instr::Ld(rd, base, off) => match get(&syms, base) {
                Sym::Aff { c, d: 0 } => {
                    // Constant address: must match the probe and stay in
                    // bounds; the loaded value is period-invariant.
                    let addr = addr_checked(c, off, mem_len)?;
                    if addr != rec.addr {
                        return None;
                    }
                    let v = stores
                        .iter()
                        .rev()
                        .find(|&&(a, _)| a == addr)
                        .map(|&(_, v)| v)
                        .or_else(|| cpu.mem(addr))?;
                    syms[rd.index()] = aff(v, 0);
                }
                Sym::Aff { c, d } => {
                    // Striding address: the first out-of-bounds period is a
                    // fate. In uniform mode a load across single-valued
                    // memory (a wander over the untouched zero region)
                    // reads that constant, valid as far as the scan
                    // confirmed; otherwise the value is poison.
                    let a0 = i64::from(c) + i64::from(off);
                    let ds = signed(d);
                    let p_oob = first_oob(a0, ds, mem_len);
                    if p_oob <= horizon(c, d) {
                        fate = fate.min(p_oob);
                    } else {
                        viol = viol.min(horizon(c, d).saturating_add(1));
                    }
                    syms[rd.index()] = if assume_uniform && p_oob > 0 {
                        #[allow(clippy::cast_sign_loss)]
                        let v = cpu.mem(a0 as usize)?;
                        let k = uniform_prefix(cpu, a0, ds, p_oob, v);
                        if k < p_oob {
                            viol = viol.min(k);
                        }
                        aff(v, 0)
                    } else {
                        Sym::Poison
                    };
                }
                Sym::Poison => return None,
            },
            Instr::St(src, base, off) => match (get(&syms, base), get(&syms, src)) {
                (Sym::Aff { c: cb, d: 0 }, Sym::Aff { c: cv, d: 0 }) => {
                    let addr = addr_checked(cb, off, mem_len)?;
                    if addr != rec.addr {
                        return None;
                    }
                    stores.push((addr, cv));
                }
                (Sym::Aff { c: cb, d }, Sym::Aff { c: cv, d: 0 }) => {
                    // Striding idempotent store: one constant re-written
                    // over a region that already holds it, so memory stays
                    // invariant as far as the scan confirmed; the first
                    // out-of-bounds period is a fate.
                    let a0 = i64::from(cb) + i64::from(off);
                    let ds = signed(d);
                    let p_oob = first_oob(a0, ds, mem_len);
                    if p_oob <= horizon(cb, d) {
                        fate = fate.min(p_oob);
                    } else {
                        viol = viol.min(horizon(cb, d).saturating_add(1));
                    }
                    let k = uniform_prefix(cpu, a0, ds, p_oob, cv);
                    if k < p_oob {
                        viol = viol.min(k);
                    }
                }
                _ => return None,
            },
            Instr::Beq(a, b, off) | Instr::Bne(a, b, off) | Instr::Blt(a, b, off) => {
                if off == 0 {
                    continue; // Taken and fall-through coincide.
                }
                let (Sym::Aff { c: ca, d: da }, Sym::Aff { c: cb, d: db }) =
                    (get(&syms, a), get(&syms, b))
                else {
                    return None;
                };
                let taken = next_pc != rec.pc + 1;
                for (c, d) in [(ca, da), (cb, db)] {
                    if d != 0 {
                        viol = viol.min(horizon(c, d).saturating_add(1));
                    }
                }
                match branch_first_flip(instr, (ca, da), (cb, db), taken) {
                    Flip::Never => {}
                    Flip::At(p) => viol = viol.min(p),
                    Flip::Immediate => return None,
                }
            }
            Instr::Jmp(_) | Instr::Nop => {}
            Instr::Halt => return None, // A halting period never re-probes.
        }
    }

    Some(PassOut {
        fin: syms,
        viol,
        fate,
        stores,
    })
}

/// Symbolic ALU over affine values: exact mod 2³² for linear forms,
/// poison otherwise.
fn alu_sym(instr: Instr, a: Sym, b: Sym) -> Sym {
    let (Sym::Aff { c: ca, d: da }, Sym::Aff { c: cb, d: db }) = (a, b) else {
        return Sym::Poison;
    };
    match instr {
        Instr::Add(..) => aff(ca.wrapping_add(cb), da.wrapping_add(db)),
        Instr::Sub(..) => aff(ca.wrapping_sub(cb), da.wrapping_sub(db)),
        Instr::Mul(..) if da == 0 => aff(ca.wrapping_mul(cb), ca.wrapping_mul(db)),
        Instr::Mul(..) if db == 0 => aff(ca.wrapping_mul(cb), cb.wrapping_mul(da)),
        Instr::And(..) if da == 0 && db == 0 => aff(ca & cb, 0),
        Instr::Or(..) if da == 0 && db == 0 => aff(ca | cb, 0),
        Instr::Xor(..) if da == 0 && db == 0 => aff(ca ^ cb, 0),
        Instr::Sll(..) if da == 0 && db == 0 => aff(ca << (cb & 31), 0),
        Instr::Srl(..) if da == 0 && db == 0 => aff(ca >> (cb & 31), 0),
        _ => Sym::Poison,
    }
}

/// When a traced branch's outcome first differs from the probed one.
enum Flip {
    Never,
    At(u64),
    /// The symbolic period-0 outcome already disagrees with the probe —
    /// the loop is not steady yet.
    Immediate,
}

/// Exact first-flip computation inside both operands' no-wrap windows
/// (window exits are capped separately by the caller via [`horizon`]).
fn branch_first_flip(instr: Instr, a: (u32, u32), b: (u32, u32), taken: bool) -> Flip {
    let d0 = i64::from(a.0) - i64::from(b.0);
    let s = signed(a.1) - signed(b.1);
    #[allow(clippy::cast_sign_loss)]
    match instr {
        Instr::Blt(..) => {
            if (d0 < 0) != taken {
                return Flip::Immediate;
            }
            if taken {
                // diff < 0 holds until it climbs to 0.
                if s <= 0 {
                    Flip::Never
                } else {
                    Flip::At((((-d0) + s - 1) / s) as u64)
                }
            } else if s >= 0 {
                Flip::Never
            } else {
                Flip::At((d0 / -s + 1) as u64)
            }
        }
        Instr::Beq(..) | Instr::Bne(..) => {
            let want_equal = matches!(instr, Instr::Beq(..)) == taken;
            if (d0 == 0) != want_equal {
                return Flip::Immediate;
            }
            if want_equal {
                // Equality with any relative stride breaks in one period.
                if s == 0 {
                    Flip::Never
                } else {
                    Flip::At(1)
                }
            } else if s != 0 && (-d0) % s == 0 && (-d0) / s >= 1 {
                Flip::At(((-d0) / s) as u64)
            } else {
                Flip::Never
            }
        }
        _ => unreachable!("not a conditional branch"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{run_golden, CpuConfig, StopReason};
    use crate::isa::{r, Program};
    use crate::workload;

    /// Builds a CPU that ran fault-free for `cycle` steps and then had one
    /// register bit flipped — the state a wandering trial replays from.
    fn faulty_cpu(program: &Program, config: &CpuConfig, cycle: u64, reg: u8, bit: u8) -> Cpu {
        let mut cpu = Cpu::new(program, config);
        let none = Protection::none();
        for _ in 0..cycle {
            let info = cpu.step(program, &none);
            assert!(info.stop.is_none(), "fault cycle within the golden run");
        }
        cpu.flip_register_bit(r(reg), bit);
        cpu
    }

    fn assert_replay_matches(program: &Program, config: &CpuConfig, cycle: u64, reg: u8, bit: u8) {
        let none = Protection::none();
        let plain = faulty_cpu(program, config, cycle, reg, bit).run(program, &none);
        let fast = replay(faulty_cpu(program, config, cycle, reg, bit), program, &none);
        assert_eq!(
            plain, fast,
            "{}: replay diverged for reg r{reg} bit {bit} at cycle {cycle}",
            program.name
        );
    }

    #[test]
    fn replay_matches_plain_run_across_workloads() {
        let config = CpuConfig::default();
        for program in workload::all() {
            let golden = run_golden(&program, &config);
            for (reg, bit) in [(1u8, 31u8), (2, 30), (3, 31), (4, 29), (5, 31), (5, 4)] {
                for cycle in [0, golden.cycles / 2, golden.cycles.saturating_sub(2)] {
                    assert_replay_matches(&program, &config, cycle, reg, bit);
                }
            }
        }
    }

    #[test]
    fn accelerates_pure_counter_hang_to_exact_cycle_limit() {
        // Counter climbs to an unreachable bound: a pure ALU hang whose
        // data register (the doubling accumulator) is non-affine poison.
        let program = Program::new(
            "hangs",
            vec![
                Instr::Addi(r(1), r(0), 0),   // i = 0
                Instr::Addi(r(2), r(0), 1),   // acc = 1
                Instr::Addi(r(3), r(0), 7),   // bound (never hit: i += 2)
                Instr::Add(r(2), r(2), r(2)), // L: acc *= 2  (poison)
                Instr::Addi(r(1), r(1), 2),
                Instr::Bne(r(1), r(3), -3),
                Instr::St(r(2), r(0), 0),
                Instr::Halt,
            ],
            vec![0],
            0..1,
        )
        .expect("valid program");
        let config = CpuConfig {
            max_cycles: 5_000_000,
            ..CpuConfig::default()
        };
        let none = Protection::none();
        let fast = replay(Cpu::new(&program, &config), &program, &none);
        let plain = Cpu::new(&program, &config).run(&program, &none);
        assert_eq!(plain, fast);
        assert_eq!(fast.stop, StopReason::CycleLimit);
    }

    #[test]
    fn accelerates_striding_load_to_exact_oob_crash() {
        // An index walks loads off the end of memory; the accumulated sum
        // is poison but the crash point and digest must stay exact.
        let program = Program::new(
            "strider",
            vec![
                Instr::Addi(r(1), r(0), 0), // idx
                Instr::Addi(r(2), r(0), 0), // acc
                Instr::Addi(r(3), r(0), 0), // bound 0: Bne loops ~2^32 times
                Instr::Ld(r(4), r(1), 0),   // L: a[idx] -> crashes at mem_len
                Instr::Add(r(2), r(2), r(4)),
                Instr::Addi(r(1), r(1), 1),
                Instr::Bne(r(1), r(3), -4),
                Instr::Halt,
            ],
            vec![3, 1, 4, 1, 5],
            0..1,
        )
        .expect("valid program");
        let config = CpuConfig::default();
        let none = Protection::none();
        let fast = replay(Cpu::new(&program, &config), &program, &none);
        let plain = Cpu::new(&program, &config).run(&program, &none);
        assert_eq!(plain, fast);
        assert_eq!(fast.stop, StopReason::OutOfBounds);
    }

    #[test]
    fn accelerates_finite_loop_and_preserves_digest() {
        // A long but finite counted loop that ends in a store and Halt: the
        // skip must land exactly where the exit branch flips so the stored
        // value (and digest) match the plain run.
        let program = Program::new(
            "finite",
            vec![
                Instr::Addi(r(1), r(0), 0),       // i
                Instr::Addi(r(2), r(0), 0),       // sum of constants
                Instr::Addi(r(3), r(0), 3),       // step
                Instr::Addi(r(4), r(1), 300_000), // bound
                Instr::Add(r(2), r(2), r(3)),     // L: sum += 3
                Instr::Addi(r(1), r(1), 1),
                Instr::Bne(r(1), r(4), -3),
                Instr::St(r(2), r(0), 0),
                Instr::Halt,
            ],
            vec![0],
            0..1,
        )
        .expect("valid program");
        let config = CpuConfig::default();
        let none = Protection::none();
        let fast = replay(Cpu::new(&program, &config), &program, &none);
        let plain = Cpu::new(&program, &config).run(&program, &none);
        assert_eq!(plain, fast);
        assert_eq!(fast.stop, StopReason::Halted);
        assert_eq!(fast.output, vec![900_000]);
    }

    #[test]
    fn idempotent_store_loop_accelerates() {
        // The loop body re-writes a constant to the same address each
        // period: memory is period-invariant, so the hang still skips.
        let program = Program::new(
            "idem",
            vec![
                Instr::Addi(r(1), r(0), 0), // i
                Instr::Addi(r(2), r(0), 9), // constant
                Instr::Addi(r(3), r(0), 1),
                Instr::St(r(2), r(0), 0), // L: mem[0] = 9 (idempotent)
                Instr::Add(r(1), r(1), r(3)),
                Instr::Bne(r(1), r(0), -2),
                Instr::Halt,
            ],
            vec![0],
            0..1,
        )
        .expect("valid program");
        let config = CpuConfig::default();
        let none = Protection::none();
        let fast = replay(Cpu::new(&program, &config), &program, &none);
        let plain = Cpu::new(&program, &config).run(&program, &none);
        assert_eq!(plain, fast);
        assert_eq!(fast.stop, StopReason::CycleLimit);
    }

    #[test]
    fn protected_replay_takes_the_plain_path() {
        let program = workload::fibonacci();
        let config = CpuConfig::default();
        let full = Protection::full(&program);
        let plain = Cpu::new(&program, &config).run(&program, &full);
        let fast = replay(Cpu::new(&program, &config), &program, &full);
        assert_eq!(plain, fast);
    }

    #[test]
    fn horizon_and_flip_math_edges() {
        assert_eq!(horizon(10, 0), u64::MAX);
        assert_eq!(horizon(0xFFFF_FFFE, 1), 1);
        assert_eq!(horizon(10, u32::MAX), 10); // stride -1
                                               // Blt taken, closing gap of 10 at +3/period: flips at ceil(10/3).
        let Flip::At(p) = branch_first_flip(Instr::Blt(r(1), r(2), -1), (0, 3), (10, 0), true)
        else {
            panic!("expected a flip")
        };
        assert_eq!(p, 4);
        // Bne not-taken at equality with stride: breaks next period.
        let Flip::At(p) = branch_first_flip(Instr::Bne(r(1), r(2), -1), (5, 1), (5, 0), false)
        else {
            panic!("expected a flip")
        };
        assert_eq!(p, 1);
        // Bne taken, counter meets bound exactly 7 periods out.
        let Flip::At(p) = branch_first_flip(Instr::Bne(r(1), r(2), -1), (3, 2), (17, 0), true)
        else {
            panic!("expected a flip")
        };
        assert_eq!(p, 7);
    }
}
