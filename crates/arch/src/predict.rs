//! Dataset builders for ML-based vulnerability prediction.
//!
//! - [`ff_vulnerability_dataset`] builds a per-flip-flop (register bit)
//!   dataset: structural features → "vulnerable" label derived from real
//!   injections. Experiment E7 trains on a 20 % subset and shows prediction
//!   accuracy comparable to running the full campaign (ref \[20\]).
//! - [`instruction_sdc_dataset`] builds a per-instruction dataset:
//!   structural features → SDC-prone label (refs \[24\]/\[27\]); experiment E8
//!   feeds it to an SVM for IPAS-style selective replication.

use crate::cpu::{CpuConfig, Protection};
use crate::error::ArchError;
use crate::fault::{FaultSpec, FaultTarget, Outcome};
use crate::features::{instruction_features, register_features};
use crate::isa::{Program, Reg, NUM_REGS};
use crate::lane;
use lori_core::Rng;
use lori_ml::data::Dataset;
use lori_ml::MlError;
use lori_obs::progress::Progress;
use lori_par::Parallelism;

/// Builds the per-flip-flop vulnerability dataset for one or more programs.
///
/// One sample per (program, register, bit): features are the register's
/// structural/behavioural features plus the normalized bit position; the
/// label is 1 when more than `vuln_threshold` of `trials_per_ff` injections
/// into that exact bit were *not* masked.
///
/// # Errors
///
/// Returns [`ArchError::NoTrials`] for `trials_per_ff == 0` or an ML error
/// (propagated as [`MlError`]) if the assembled dataset is malformed.
pub fn ff_vulnerability_dataset(
    programs: &[Program],
    config: &CpuConfig,
    trials_per_ff: usize,
    vuln_threshold: f64,
    seed: u64,
) -> Result<Dataset, ArchError> {
    ff_vulnerability_dataset_with(
        programs,
        config,
        trials_per_ff,
        vuln_threshold,
        seed,
        lane::lanes_from_env(),
        lori_par::global(),
    )
}

/// [`ff_vulnerability_dataset`] with explicit lane width and parallelism.
///
/// # Errors
///
/// Returns [`ArchError::NoTrials`] for `trials_per_ff == 0` or an ML error
/// (propagated as [`MlError`]) if the assembled dataset is malformed.
pub fn ff_vulnerability_dataset_with(
    programs: &[Program],
    config: &CpuConfig,
    trials_per_ff: usize,
    vuln_threshold: f64,
    seed: u64,
    lanes: usize,
    par: Parallelism,
) -> Result<Dataset, ArchError> {
    if trials_per_ff == 0 {
        return Err(ArchError::NoTrials);
    }
    let mut rng = Rng::from_seed(seed);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    let total = (programs.len() * NUM_REGS * 32 * trials_per_ff) as u64;
    let progress = Progress::start("fault.ff_dataset", total);
    for program in programs {
        let golden = crate::cpu::run_golden(program, config);
        let feats = register_features(program, config);
        let protection = Protection::none();
        // Specs for the whole program in the scalar loop's draw order:
        // register-major, then bit, then trial.
        let mut specs = Vec::with_capacity(NUM_REGS * 32 * trials_per_ff);
        for reg_idx in 0..NUM_REGS {
            for bit in 0..32u8 {
                for _ in 0..trials_per_ff {
                    specs.push(FaultSpec {
                        target: FaultTarget::Register {
                            reg: Reg::new(reg_idx as u8).expect("in range"),
                            bit,
                        },
                        cycle: rng.below(golden.cycles.max(1)),
                    });
                }
            }
        }
        let outcomes = lane::campaign_outcomes(
            program,
            config,
            &protection,
            &golden,
            &specs,
            lanes,
            par,
            Some(&progress),
        );
        let mut chunks = outcomes.chunks(trials_per_ff);
        for feat in feats.iter().take(NUM_REGS) {
            for bit in 0..32u8 {
                let chunk = chunks.next().expect("one chunk per (reg, bit)");
                let vulnerable = chunk.iter().filter(|&&o| o != Outcome::Masked).count();
                #[allow(clippy::cast_precision_loss)]
                let frac = vulnerable as f64 / trials_per_ff as f64;
                let mut row = feat.to_row();
                row.push(f64::from(bit) / 31.0);
                rows.push(row);
                labels.push(f64::from(u8::from(frac > vuln_threshold)));
            }
        }
    }
    Dataset::from_rows(rows, labels).map_err(|e: MlError| ArchError::BadFaultTarget(e.to_string()))
}

/// Builds the per-instruction SDC-proneness dataset for one program.
///
/// # Errors
///
/// Returns [`ArchError::NoTrials`] for `trials_per_instr == 0`.
pub fn instruction_sdc_dataset(
    program: &Program,
    config: &CpuConfig,
    trials_per_instr: usize,
    sdc_threshold: f64,
    seed: u64,
) -> Result<Dataset, ArchError> {
    let sdc = crate::fault::per_instruction_sdc(program, config, trials_per_instr, seed)?;
    let feats = instruction_features(program);
    let rows: Vec<Vec<f64>> = feats
        .iter()
        .map(super::features::InstructionFeatures::to_row)
        .collect();
    let labels: Vec<f64> = sdc
        .iter()
        .map(|&f| f64::from(u8::from(f > sdc_threshold)))
        .collect();
    Dataset::from_rows(rows, labels).map_err(|e| ArchError::BadFaultTarget(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use lori_ml::knn::Knn;
    use lori_ml::metrics::accuracy;
    use lori_ml::traits::Classifier;

    #[test]
    fn ff_dataset_shape() {
        let programs = [workload::fibonacci()];
        let ds = ff_vulnerability_dataset(&programs, &CpuConfig::default(), 2, 0.0, 1).unwrap();
        assert_eq!(ds.len(), NUM_REGS * 32);
        assert_eq!(ds.n_features(), 7);
        // Both classes should appear (dead vs loop-carried registers).
        let classes = ds.class_targets();
        assert!(classes.contains(&0));
        assert!(classes.contains(&1));
    }

    #[test]
    fn ff_dataset_supports_prediction_from_subset() {
        // Miniature version of E7: train a kNN on 20 % of flip-flops and
        // check it beats the majority-class baseline on the rest.
        let programs = [workload::fibonacci(), workload::dot_product()];
        let ds = ff_vulnerability_dataset(&programs, &CpuConfig::default(), 3, 0.0, 2).unwrap();
        let mut rng = lori_core::Rng::from_seed(3);
        let (train, test) = ds.split(0.2, &mut rng).unwrap();
        let knn = Knn::fit(&train, 5).unwrap();
        let preds = knn.predict_batch(test.features());
        let truth = test.class_targets();
        let acc = accuracy(&truth, &preds).unwrap();
        #[allow(clippy::cast_precision_loss)]
        let majority = {
            let ones = truth.iter().filter(|&&c| c == 1).count() as f64 / truth.len() as f64;
            ones.max(1.0 - ones)
        };
        assert!(
            acc >= majority - 0.02,
            "kNN accuracy {acc} vs majority {majority}"
        );
    }

    #[test]
    fn instruction_dataset_shape() {
        let p = workload::dot_product();
        let ds = instruction_sdc_dataset(&p, &CpuConfig::default(), 16, 0.2, 4).unwrap();
        assert_eq!(ds.len(), p.len());
        assert_eq!(ds.n_features(), 7);
    }

    #[test]
    fn zero_trials_rejected() {
        let programs = [workload::fibonacci()];
        assert!(ff_vulnerability_dataset(&programs, &CpuConfig::default(), 0, 0.0, 1).is_err());
        assert!(instruction_sdc_dataset(&programs[0], &CpuConfig::default(), 0, 0.2, 1).is_err());
    }
}
