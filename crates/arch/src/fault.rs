//! Fault injection campaigns and outcome classification.
//!
//! One trial = run the program with a single bit flip at a chosen cycle in a
//! chosen architectural element, then compare against the golden run:
//!
//! - **Detected** — a protection mechanism stopped the run;
//! - **Masked** — identical output digest;
//! - **SDC** — silent data corruption: run "succeeded" with a wrong digest;
//! - **Crash** — out-of-bounds access or runaway PC;
//! - **Hang** — cycle-limit exhaustion.

use crate::cpu::{Cpu, CpuConfig, ExecResult, Protection, StopReason};
use crate::error::ArchError;
use crate::isa::{Program, Reg, NUM_REGS};
use crate::lane;
use lori_core::Rng;
use lori_obs::progress::Progress;
use lori_par::Parallelism;

/// Where a fault lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// An architectural register bit.
    Register {
        /// Which register.
        reg: Reg,
        /// Which bit (0–31).
        bit: u8,
    },
    /// A program-counter bit.
    Pc {
        /// Which bit (0–15).
        bit: u8,
    },
    /// A data-memory bit.
    Memory {
        /// Word address.
        addr: usize,
        /// Which bit (0–31).
        bit: u8,
    },
}

/// A fully-specified single-fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Where the bit flips.
    pub target: FaultTarget,
    /// After how many executed instructions the flip is applied.
    pub cycle: u64,
}

/// The classified outcome of one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The output digest matched the golden run.
    Masked,
    /// Silent data corruption.
    Sdc,
    /// Architectural crash (bad memory access / runaway PC).
    Crash,
    /// Cycle-limit hang.
    Hang,
    /// Protection detected the fault.
    Detected,
}

impl Outcome {
    /// All outcome kinds, for tabulation.
    pub const ALL: [Outcome; 5] = [
        Outcome::Masked,
        Outcome::Sdc,
        Outcome::Crash,
        Outcome::Hang,
        Outcome::Detected,
    ];

    /// The outcome's position in [`Outcome::ALL`] — the tabulation index
    /// used by [`OutcomeCounts`]. Constant-time; the per-trial hot path
    /// must not scan.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Outcome::Masked => 0,
            Outcome::Sdc => 1,
            Outcome::Crash => 2,
            Outcome::Hang => 3,
            Outcome::Detected => 4,
        }
    }

    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::Sdc => "sdc",
            Outcome::Crash => "crash",
            Outcome::Hang => "hang",
            Outcome::Detected => "detected",
        }
    }
}

/// Runs one faulty trial and classifies it against `golden`.
#[must_use]
pub fn run_with_fault(
    program: &Program,
    config: &CpuConfig,
    protection: &Protection,
    golden: &ExecResult,
    fault: &FaultSpec,
) -> Outcome {
    let mut cpu = Cpu::new(program, config);
    let mut injected = false;
    let mut executed: u64 = 0;
    let result = loop {
        if !injected && executed >= fault.cycle {
            match fault.target {
                FaultTarget::Register { reg, bit } => cpu.flip_register_bit(reg, bit),
                FaultTarget::Pc { bit } => cpu.flip_pc_bit(bit),
                FaultTarget::Memory { addr, bit } => cpu.flip_memory_bit(addr, bit),
            }
            injected = true;
        }
        let info = cpu.step(program, protection);
        executed += 1;
        if let Some(stop) = info.stop {
            break cpu.finish(program, stop);
        }
    };
    classify(&result, golden)
}

/// Classifies a faulty result against the golden result.
#[must_use]
pub fn classify(faulty: &ExecResult, golden: &ExecResult) -> Outcome {
    match faulty.stop {
        StopReason::DetectedMismatch => Outcome::Detected,
        StopReason::OutOfBounds | StopReason::BadPc => Outcome::Crash,
        StopReason::CycleLimit => Outcome::Hang,
        StopReason::Halted => {
            if faulty.digest == golden.digest {
                Outcome::Masked
            } else {
                Outcome::Sdc
            }
        }
    }
}

/// One campaign trial record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// The injected fault.
    pub fault: FaultSpec,
    /// The instruction index that was about to execute at injection time
    /// (approximated as `cycle` clamped to the golden instruction stream —
    /// exact for the 1-instruction-per-cycle model).
    pub outcome: Outcome,
}

/// Aggregate campaign statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OutcomeCounts {
    /// Count per outcome kind, indexed as in [`Outcome::ALL`].
    counts: [usize; 5],
}

impl OutcomeCounts {
    /// Tallies one outcome.
    pub fn record(&mut self, o: Outcome) {
        self.counts[o.index()] += 1;
    }

    /// The count for one outcome kind.
    #[must_use]
    pub fn count(&self, o: Outcome) -> usize {
        self.counts[o.index()]
    }

    /// Total trials recorded.
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Fraction of trials with the given outcome (0 when empty).
    #[must_use]
    pub fn fraction(&self, o: Outcome) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.count(o) as f64 / self.total() as f64
            }
        }
    }

    /// Architectural vulnerability: fraction of trials that end in SDC,
    /// crash, or hang (i.e. not masked and not detected).
    #[must_use]
    pub fn vulnerability(&self) -> f64 {
        self.fraction(Outcome::Sdc) + self.fraction(Outcome::Crash) + self.fraction(Outcome::Hang)
    }
}

/// Campaign results: all trials plus aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Campaign {
    /// Every trial, in injection order.
    pub trials: Vec<Trial>,
    /// Aggregate counts.
    pub counts: OutcomeCounts,
    /// The golden cycle count the faults were injected within.
    pub golden_cycles: u64,
}

/// Runs `n` random register-bit injections at uniformly random cycles.
///
/// Trials run on the lane engine at the `LORI_LANES` width across the
/// process-global worker pool; results are bit-identical for any width and
/// worker count (see [`crate::lane`]).
///
/// # Errors
///
/// Returns [`ArchError::NoTrials`] for `n == 0`.
pub fn random_register_campaign(
    program: &Program,
    config: &CpuConfig,
    protection: &Protection,
    n: usize,
    seed: u64,
) -> Result<Campaign, ArchError> {
    random_register_campaign_with(
        program,
        config,
        protection,
        n,
        seed,
        lane::lanes_from_env(),
        lori_par::global(),
    )
}

/// [`random_register_campaign`] with explicit lane width and parallelism.
///
/// # Errors
///
/// Returns [`ArchError::NoTrials`] for `n == 0`.
pub fn random_register_campaign_with(
    program: &Program,
    config: &CpuConfig,
    protection: &Protection,
    n: usize,
    seed: u64,
    lanes: usize,
    par: Parallelism,
) -> Result<Campaign, ArchError> {
    if n == 0 {
        return Err(ArchError::NoTrials);
    }
    let golden = crate::cpu::run_golden(program, config);
    // All specs are drawn up front, in exactly the order the scalar loop
    // would draw them — the lane width never touches the RNG stream.
    let mut rng = Rng::from_seed(seed);
    let specs: Vec<FaultSpec> = (0..n)
        .map(|_| {
            #[allow(clippy::cast_possible_truncation)]
            FaultSpec {
                target: FaultTarget::Register {
                    reg: Reg::new(rng.below(NUM_REGS as u64) as u8).expect("in range"),
                    bit: rng.below(32) as u8,
                },
                cycle: rng.below(golden.cycles.max(1)),
            }
        })
        .collect();
    let progress = Progress::start("fault.campaign", n as u64);
    let outcomes = lane::campaign_outcomes(
        program,
        config,
        protection,
        &golden,
        &specs,
        lanes,
        par,
        Some(&progress),
    );
    let mut counts = OutcomeCounts::default();
    let trials: Vec<Trial> = specs
        .into_iter()
        .zip(outcomes)
        .map(|(fault, outcome)| {
            counts.record(outcome);
            Trial { fault, outcome }
        })
        .collect();
    Ok(Campaign {
        trials,
        counts,
        golden_cycles: golden.cycles,
    })
}

/// Per-register vulnerability: `n_per_reg` random-bit/random-cycle trials
/// for each architectural register, returning each register's AVF-style
/// vulnerability fraction.
///
/// # Errors
///
/// Returns [`ArchError::NoTrials`] for `n_per_reg == 0`.
pub fn per_register_vulnerability(
    program: &Program,
    config: &CpuConfig,
    n_per_reg: usize,
    seed: u64,
) -> Result<Vec<f64>, ArchError> {
    per_register_vulnerability_with(
        program,
        config,
        n_per_reg,
        seed,
        lane::lanes_from_env(),
        lori_par::global(),
    )
}

/// [`per_register_vulnerability`] with explicit lane width and parallelism.
///
/// # Errors
///
/// Returns [`ArchError::NoTrials`] for `n_per_reg == 0`.
pub fn per_register_vulnerability_with(
    program: &Program,
    config: &CpuConfig,
    n_per_reg: usize,
    seed: u64,
    lanes: usize,
    par: Parallelism,
) -> Result<Vec<f64>, ArchError> {
    if n_per_reg == 0 {
        return Err(ArchError::NoTrials);
    }
    let golden = crate::cpu::run_golden(program, config);
    let protection = Protection::none();
    // Register-major spec generation, one shared RNG stream — the draw
    // order of the original nested loops.
    let mut rng = Rng::from_seed(seed);
    let mut specs = Vec::with_capacity(NUM_REGS * n_per_reg);
    for reg_idx in 0..NUM_REGS {
        for _ in 0..n_per_reg {
            #[allow(clippy::cast_possible_truncation)]
            specs.push(FaultSpec {
                target: FaultTarget::Register {
                    reg: Reg::new(reg_idx as u8).expect("in range"),
                    bit: rng.below(32) as u8,
                },
                cycle: rng.below(golden.cycles.max(1)),
            });
        }
    }
    let progress = Progress::start("fault.vulnerability", specs.len() as u64);
    let outcomes = lane::campaign_outcomes(
        program,
        config,
        &protection,
        &golden,
        &specs,
        lanes,
        par,
        Some(&progress),
    );
    let result = outcomes
        .chunks(n_per_reg)
        .map(|chunk| {
            let mut counts = OutcomeCounts::default();
            for &o in chunk {
                counts.record(o);
            }
            counts.vulnerability()
        })
        .collect();
    Ok(result)
}

/// Per-instruction SDC proneness: inject faults into the destination
/// register *immediately after* each dynamic execution of each static
/// instruction, `n_per_instr` times, and report the SDC fraction per static
/// instruction. Instructions without a destination get 0.
///
/// # Errors
///
/// Returns [`ArchError::NoTrials`] for `n_per_instr == 0`.
pub fn per_instruction_sdc(
    program: &Program,
    config: &CpuConfig,
    n_per_instr: usize,
    seed: u64,
) -> Result<Vec<f64>, ArchError> {
    per_instruction_sdc_with(
        program,
        config,
        n_per_instr,
        seed,
        lane::lanes_from_env(),
        lori_par::global(),
    )
}

/// [`per_instruction_sdc`] with explicit lane width and parallelism.
///
/// # Errors
///
/// Returns [`ArchError::NoTrials`] for `n_per_instr == 0`.
pub fn per_instruction_sdc_with(
    program: &Program,
    config: &CpuConfig,
    n_per_instr: usize,
    seed: u64,
    lanes: usize,
    par: Parallelism,
) -> Result<Vec<f64>, ArchError> {
    if n_per_instr == 0 {
        return Err(ArchError::NoTrials);
    }
    let protection = Protection::none();

    // One golden pass yields both the reference result and the map from
    // each static instruction to the cycles at which it executes.
    let mut exec_cycles: Vec<Vec<u64>> = vec![Vec::new(); program.len()];
    let golden = {
        let mut cpu = Cpu::new(program, config);
        let mut cycle: u64 = 0;
        loop {
            let info = cpu.step(program, &protection);
            exec_cycles[info.instr_index].push(cycle);
            cycle += 1;
            if let Some(stop) = info.stop {
                break cpu.finish(program, stop);
            }
        }
    };

    // Specs drawn up front in the scalar loop's exact order: instructions
    // without a destination or never executed draw nothing.
    let mut rng = Rng::from_seed(seed);
    let mut specs = Vec::new();
    let mut sampled: Vec<bool> = Vec::with_capacity(program.len());
    for (i, instr) in program.instrs.iter().enumerate() {
        let Some(dest) = instr.dest() else {
            sampled.push(false);
            continue;
        };
        if exec_cycles[i].is_empty() {
            sampled.push(false);
            continue;
        }
        sampled.push(true);
        for _ in 0..n_per_instr {
            let &cycle = rng.choose(&exec_cycles[i]).expect("non-empty");
            #[allow(clippy::cast_possible_truncation)]
            specs.push(FaultSpec {
                target: FaultTarget::Register {
                    reg: dest,
                    bit: rng.below(32) as u8,
                },
                // Inject right after the instruction writes its result.
                cycle: cycle + 1,
            });
        }
    }
    let progress = Progress::start("fault.instr_sdc", specs.len() as u64);
    let outcomes = lane::campaign_outcomes(
        program,
        config,
        &protection,
        &golden,
        &specs,
        lanes,
        par,
        Some(&progress),
    );

    let mut chunks = outcomes.chunks(n_per_instr);
    let result = sampled
        .into_iter()
        .map(|has_specs| {
            if !has_specs {
                return 0.0;
            }
            let chunk = chunks.next().expect("one chunk per sampled instruction");
            let sdc = chunk.iter().filter(|&&o| o == Outcome::Sdc).count();
            #[allow(clippy::cast_precision_loss)]
            {
                sdc as f64 / n_per_instr as f64
            }
        })
        .collect();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::run_golden;
    use crate::workload;

    #[test]
    fn campaign_outcome_distribution_sane() {
        let p = workload::checksum();
        let cfg = CpuConfig::default();
        let c = random_register_campaign(&p, &cfg, &Protection::none(), 400, 1).unwrap();
        assert_eq!(c.counts.total(), 400);
        // Faults in mostly-dead registers are often masked; some are not.
        assert!(c.counts.fraction(Outcome::Masked) > 0.3);
        assert!(c.counts.vulnerability() > 0.02);
        assert_eq!(c.counts.count(Outcome::Detected), 0, "no protection active");
    }

    #[test]
    fn protection_converts_sdc_to_detected() {
        let p = workload::dot_product();
        let cfg = CpuConfig::default();
        let unprotected = random_register_campaign(&p, &cfg, &Protection::none(), 300, 2).unwrap();
        let protected = random_register_campaign(&p, &cfg, &Protection::full(&p), 300, 2).unwrap();
        assert!(protected.counts.count(Outcome::Detected) > 0);
        assert!(
            protected.counts.fraction(Outcome::Sdc) < unprotected.counts.fraction(Outcome::Sdc),
            "full protection should reduce SDC: {} vs {}",
            protected.counts.fraction(Outcome::Sdc),
            unprotected.counts.fraction(Outcome::Sdc)
        );
    }

    #[test]
    fn per_register_vulnerability_varies() {
        let p = workload::fibonacci();
        let cfg = CpuConfig::default();
        let v = per_register_vulnerability(&p, &cfg, 60, 3).unwrap();
        assert_eq!(v.len(), NUM_REGS);
        // Loop-carried registers must be far more vulnerable than unused ones.
        let max = v.iter().copied().fold(0.0f64, f64::max);
        let min = v.iter().copied().fold(1.0f64, f64::min);
        assert!(max > 0.2, "max vulnerability {max}");
        assert!(min < 0.05, "min vulnerability {min}");
    }

    #[test]
    fn per_instruction_sdc_shapes() {
        let p = workload::dot_product();
        let cfg = CpuConfig::default();
        let sdc = per_instruction_sdc(&p, &cfg, 24, 4).unwrap();
        assert_eq!(sdc.len(), p.len());
        // Store/branch/halt have no dest → zero by construction.
        for (i, instr) in p.instrs.iter().enumerate() {
            if instr.dest().is_none() {
                assert_eq!(sdc[i], 0.0);
            }
        }
        // The accumulator-updating instruction is highly SDC-prone.
        assert!(sdc.iter().copied().fold(0.0f64, f64::max) > 0.3);
    }

    #[test]
    fn classify_matrix() {
        let p = workload::fibonacci();
        let cfg = CpuConfig::default();
        let golden = run_golden(&p, &cfg);
        assert_eq!(classify(&golden, &golden), Outcome::Masked);
        let mut sdc = golden.clone();
        sdc.digest ^= 1;
        assert_eq!(classify(&sdc, &golden), Outcome::Sdc);
        let mut crash = golden.clone();
        crash.stop = StopReason::BadPc;
        assert_eq!(classify(&crash, &golden), Outcome::Crash);
        let mut hang = golden.clone();
        hang.stop = StopReason::CycleLimit;
        assert_eq!(classify(&hang, &golden), Outcome::Hang);
        let mut det = golden.clone();
        det.stop = StopReason::DetectedMismatch;
        assert_eq!(classify(&det, &golden), Outcome::Detected);
    }

    #[test]
    fn zero_trials_rejected() {
        let p = workload::fibonacci();
        let cfg = CpuConfig::default();
        assert!(random_register_campaign(&p, &cfg, &Protection::none(), 0, 1).is_err());
        assert!(per_register_vulnerability(&p, &cfg, 0, 1).is_err());
        assert!(per_instruction_sdc(&p, &cfg, 0, 1).is_err());
    }

    #[test]
    fn campaigns_deterministic_per_seed() {
        let p = workload::checksum();
        let cfg = CpuConfig::default();
        let a = random_register_campaign(&p, &cfg, &Protection::none(), 100, 7).unwrap();
        let b = random_register_campaign(&p, &cfg, &Protection::none(), 100, 7).unwrap();
        assert_eq!(a, b);
    }
}
