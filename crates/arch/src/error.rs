//! Error type for `lori-arch`.

use std::fmt;

/// Errors produced by program construction and campaign configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// A register index was out of range.
    BadRegister(u8),
    /// A program was empty.
    EmptyProgram,
    /// A campaign was configured with zero trials.
    NoTrials,
    /// A fault target refers to state that does not exist.
    BadFaultTarget(String),
    /// A protection configuration referenced an instruction out of range.
    BadProtectionIndex(usize),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::BadRegister(r) => write!(f, "register r{r} out of range"),
            ArchError::EmptyProgram => write!(f, "program must contain at least one instruction"),
            ArchError::NoTrials => write!(f, "campaign needs at least one trial"),
            ArchError::BadFaultTarget(what) => write!(f, "invalid fault target: {what}"),
            ArchError::BadProtectionIndex(i) => {
                write!(f, "protected instruction index {i} out of range")
            }
        }
    }
}

impl std::error::Error for ArchError {}
