//! # lori-arch
//!
//! Architectural reliability substrate for LORI, implementing Sec. III of
//! the paper:
//!
//! - [`isa`] — a small RISC-style instruction set;
//! - [`cpu`] — an architectural simulator with registers, PC, and memory,
//!   plus optional shadow-register replication and symptom monitors;
//! - [`workload`] — real little programs (matrix multiply, sort, checksum,
//!   dot product, Fibonacci) used as injection targets;
//! - [`fault`] — bit-flip fault injection campaigns with outcome
//!   classification (Masked / SDC / Crash / Hang / Detected) and AVF
//!   estimation;
//! - [`lane`] — a bit-parallel injection engine evaluating up to 64 fault
//!   scenarios per simulation pass, bit-identical to the scalar path;
//! - [`features`] — structural feature extraction for registers
//!   ("flip-flops") and instructions, feeding the ML predictors;
//! - [`predict`] — dataset builders for vulnerability prediction (the
//!   ref-\[20\] "train on 20 % of injections" experiment and the ref-\[24\]
//!   SDC-proneness experiment);
//! - [`protect`] — selective instruction replication (IPAS-style, ref \[27\])
//!   and symptom-based detection (ref \[29\]).

pub(crate) mod accel;
pub mod cpu;
pub mod error;
pub mod fault;
pub mod features;
pub mod isa;
pub mod lane;
pub mod predict;
pub mod protect;
pub mod workload;

pub use error::ArchError;
