//! Property-based tests for the architectural simulator.

use lori_arch::cpu::{run_golden, Cpu, CpuConfig, Protection, StopReason};
use lori_arch::fault::{run_with_fault, FaultSpec, FaultTarget, Outcome};
use lori_arch::isa::{r, Instr, Program, Reg};
use lori_arch::workload;
use proptest::prelude::*;

proptest! {
    /// Golden runs are deterministic for every workload.
    #[test]
    fn golden_runs_deterministic(which in 0usize..5) {
        let p = &workload::all()[which];
        let cfg = CpuConfig::default();
        let a = run_golden(p, &cfg);
        let b = run_golden(p, &cfg);
        prop_assert_eq!(a, b);
    }

    /// A fault injected after the program halts can never change anything.
    #[test]
    fn late_faults_are_masked(which in 0usize..5, reg in 0u8..16, bit in 0u8..32) {
        let p = &workload::all()[which];
        let cfg = CpuConfig::default();
        let golden = run_golden(p, &cfg);
        let fault = FaultSpec {
            target: FaultTarget::Register { reg: Reg::new(reg).unwrap(), bit },
            cycle: golden.cycles + 10,
        };
        let o = run_with_fault(p, &cfg, &Protection::none(), &golden, &fault);
        prop_assert_eq!(o, Outcome::Masked);
    }

    /// Flipping the same register bit twice before execution restores the
    /// golden outcome.
    #[test]
    fn double_flip_cancels(which in 0usize..5, reg in 0u8..16, bit in 0u8..32) {
        let p = &workload::all()[which];
        let cfg = CpuConfig::default();
        let golden = run_golden(p, &cfg);
        let mut cpu = Cpu::new(p, &cfg);
        let reg = Reg::new(reg).unwrap();
        cpu.flip_register_bit(reg, bit);
        cpu.flip_register_bit(reg, bit);
        let res = cpu.run(p, &Protection::none());
        prop_assert_eq!(res.digest, golden.digest);
    }

    /// Protection never changes the computed result of a fault-free run.
    #[test]
    fn protection_preserves_results(which in 0usize..5, density in 0usize..4) {
        let p = &workload::all()[which];
        let cfg = CpuConfig::default();
        let golden = run_golden(p, &cfg);
        let indices: Vec<usize> = (0..p.len()).filter(|i| density == 0 || i % (density + 1) == 0).collect();
        let prot = Protection::for_instructions(p, indices).unwrap();
        let res = Cpu::new(p, &cfg).run(p, &prot);
        prop_assert_eq!(res.stop, StopReason::Halted);
        prop_assert_eq!(res.digest, golden.digest);
        prop_assert!(res.cycles >= golden.cycles);
    }

    /// Arithmetic instruction semantics match Rust's wrapping ops.
    #[test]
    fn alu_semantics(a in any::<u32>(), b in any::<u32>()) {
        let make = |op: Instr| -> Program {
            Program::new(
                "alu",
                vec![
                    Instr::Addi(r(1), r(0), 0),
                    op,
                    Instr::St(r(3), r(0), 0),
                    Instr::Halt,
                ],
                vec![0],
                0..1,
            )
            .unwrap()
        };
        let cfg = CpuConfig::default();
        // Seed registers via memory-free init: use Addi chains on small
        // values is impractical for arbitrary u32, so poke registers
        // directly through the fault API (bit flips compose any value).
        let run_op = |op: Instr| -> u32 {
            let p = make(op);
            let mut cpu = Cpu::new(&p, &cfg);
            for bit in 0..32 {
                if a & (1 << bit) != 0 {
                    cpu.flip_register_bit(r(4), bit as u8);
                }
                if b & (1 << bit) != 0 {
                    cpu.flip_register_bit(r(5), bit as u8);
                }
            }
            let res = cpu.run(&p, &Protection::none());
            res.output[0]
        };
        prop_assert_eq!(run_op(Instr::Add(r(3), r(4), r(5))), a.wrapping_add(b));
        prop_assert_eq!(run_op(Instr::Sub(r(3), r(4), r(5))), a.wrapping_sub(b));
        prop_assert_eq!(run_op(Instr::Mul(r(3), r(4), r(5))), a.wrapping_mul(b));
        prop_assert_eq!(run_op(Instr::Xor(r(3), r(4), r(5))), a ^ b);
        prop_assert_eq!(run_op(Instr::And(r(3), r(4), r(5))), a & b);
        prop_assert_eq!(run_op(Instr::Or(r(3), r(4), r(5))), a | b);
    }
}
