//! Scalar-vs-lane equivalence: the bit-parallel engine must be
//! indistinguishable from the scalar loop at every public API.
//!
//! The lane engine's contract (DESIGN.md §13) is *bit-identical trials,
//! counts, and artifacts* for any seed, lane width, and worker count.
//! These tests pin that across workloads, protections, ragged blocks, and
//! the edge cycles (0 and `golden_cycles`, where the flip lands before the
//! first step or never lands at all).

use lori_arch::cpu::{run_golden, CpuConfig, Protection};
use lori_arch::fault::{
    per_instruction_sdc_with, per_register_vulnerability_with, random_register_campaign_with,
    FaultSpec, FaultTarget,
};
use lori_arch::isa::{Reg, NUM_REGS};
use lori_arch::lane::{campaign_outcomes, run_fault_block, MAX_LANES};
use lori_arch::predict::ff_vulnerability_dataset_with;
use lori_arch::workload;
use lori_core::Rng;
use lori_par::Parallelism;

const WIDTHS: [usize; 4] = [2, 7, 33, 64];

#[test]
fn random_campaign_trials_identical_across_widths_and_threads() {
    let config = CpuConfig::default();
    for program in workload::all() {
        for (protection, tag) in [
            (Protection::none(), "none"),
            (Protection::full(&program), "full"),
            (
                Protection::for_instructions(&program, (0..program.len()).step_by(2)).unwrap(),
                "partial",
            ),
        ] {
            for seed in [1u64, 99] {
                // 100 trials: one full 64-lane block plus a ragged tail.
                let scalar = random_register_campaign_with(
                    &program,
                    &config,
                    &protection,
                    100,
                    seed,
                    1,
                    Parallelism::serial(),
                )
                .unwrap();
                for width in WIDTHS {
                    for threads in [1, 4] {
                        let lanes = random_register_campaign_with(
                            &program,
                            &config,
                            &protection,
                            100,
                            seed,
                            width,
                            Parallelism::new(threads),
                        )
                        .unwrap();
                        assert_eq!(
                            scalar, lanes,
                            "{} protection={tag} seed={seed} width={width} threads={threads}",
                            program.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn per_register_vulnerability_identical() {
    let config = CpuConfig::default();
    for program in [workload::fibonacci(), workload::bubble_sort()] {
        let scalar =
            per_register_vulnerability_with(&program, &config, 40, 5, 1, Parallelism::serial())
                .unwrap();
        for width in WIDTHS {
            let lanes = per_register_vulnerability_with(
                &program,
                &config,
                40,
                5,
                width,
                Parallelism::new(4),
            )
            .unwrap();
            assert_eq!(scalar, lanes, "{} width={width}", program.name);
        }
    }
}

#[test]
fn per_instruction_sdc_identical() {
    let config = CpuConfig::default();
    for program in [workload::dot_product(), workload::checksum()] {
        let scalar =
            per_instruction_sdc_with(&program, &config, 16, 7, 1, Parallelism::serial()).unwrap();
        for width in WIDTHS {
            let lanes =
                per_instruction_sdc_with(&program, &config, 16, 7, width, Parallelism::new(4))
                    .unwrap();
            assert_eq!(scalar, lanes, "{} width={width}", program.name);
        }
    }
}

#[test]
fn ff_dataset_identical() {
    let config = CpuConfig::default();
    let programs = [workload::fibonacci(), workload::dot_product()];
    let scalar =
        ff_vulnerability_dataset_with(&programs, &config, 2, 0.0, 3, 1, Parallelism::serial())
            .unwrap();
    for (width, threads) in [(64, 1), (64, 4), (7, 4)] {
        let lanes = ff_vulnerability_dataset_with(
            &programs,
            &config,
            2,
            0.0,
            3,
            width,
            Parallelism::new(threads),
        )
        .unwrap();
        assert_eq!(
            scalar.features(),
            lanes.features(),
            "width={width} threads={threads}"
        );
        assert_eq!(
            scalar.class_targets(),
            lanes.class_targets(),
            "width={width} threads={threads}"
        );
    }
}

#[test]
fn edge_cycles_and_mixed_targets_match() {
    // Faults at cycle 0 (flip before the first step), at golden_cycles
    // (never injected: the run halts first), and past it, mixed across all
    // three target kinds — block vs scalar, every workload.
    let config = CpuConfig::default();
    for program in workload::all() {
        let golden = run_golden(&program, &config);
        let protection = Protection::full(&program);
        let mut rng = Rng::from_seed(0xedce);
        let mut specs = Vec::new();
        for cycle in [
            0,
            1,
            golden.cycles,
            golden.cycles + 17,
            golden.cycles / 2,
            golden.cycles.saturating_sub(1),
        ] {
            for bit in [0u8, 5, 13, 31] {
                specs.push(FaultSpec {
                    target: FaultTarget::Register {
                        reg: Reg::new((rng.below(NUM_REGS as u64)) as u8).unwrap(),
                        bit,
                    },
                    cycle,
                });
                specs.push(FaultSpec {
                    target: FaultTarget::Pc { bit: bit % 16 },
                    cycle,
                });
                specs.push(FaultSpec {
                    target: FaultTarget::Memory {
                        addr: rng.below(config.memory_words as u64 + 4) as usize,
                        bit,
                    },
                    cycle,
                });
            }
        }
        assert!(specs.len() > MAX_LANES, "forces a ragged final block");
        let scalar = campaign_outcomes(
            &program,
            &config,
            &protection,
            &golden,
            &specs,
            1,
            Parallelism::serial(),
            None,
        );
        let lanes = run_fault_block(&program, &config, &protection, &golden, &specs[..MAX_LANES]);
        assert_eq!(&scalar[..MAX_LANES], &lanes[..], "{}", program.name);
        let all = campaign_outcomes(
            &program,
            &config,
            &protection,
            &golden,
            &specs,
            MAX_LANES,
            Parallelism::new(4),
            None,
        );
        assert_eq!(scalar, all, "{}", program.name);
    }
}
