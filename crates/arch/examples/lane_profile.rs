//! Profiling harness for the lane engine: per-workload scalar-vs-lane
//! wall time on a fixed random campaign, plus the trial-cycle breakdown
//! (hangs, crashes, long wanderers) that explains where the time goes.
//! Asserts scalar/lane outcome equality on every workload as it runs.
//!
//! ```sh
//! cargo run --release -p lori-arch --example lane_profile
//! ```
use lori_arch::cpu::{run_golden, Cpu, CpuConfig, Protection};
use lori_arch::fault::{classify, run_with_fault, FaultSpec, FaultTarget, Outcome};
use lori_arch::isa::{Reg, NUM_REGS};
use lori_arch::lane::run_fault_block;
use lori_arch::workload;
use lori_core::Rng;
use std::time::Instant;

fn main() {
    let config = CpuConfig::default();
    for program in workload::all() {
        let golden = run_golden(&program, &config);
        let protection = Protection::none();
        let mut rng = Rng::from_seed(2);
        let specs: Vec<FaultSpec> = (0..64)
            .map(|_| FaultSpec {
                target: FaultTarget::Register {
                    reg: Reg::new(rng.below(NUM_REGS as u64) as u8).unwrap(),
                    bit: rng.below(32) as u8,
                },
                cycle: rng.below(golden.cycles.max(1)),
            })
            .collect();

        // Setup-only cost: 64 Cpu::new + finish, no stepping.
        let t0 = Instant::now();
        for _ in 0..64 {
            let cpu = Cpu::new(&program, &config);
            std::hint::black_box(&cpu);
        }
        let t_setup = t0.elapsed();

        // Instrumented scalar pass: record executed cycles per trial.
        let mut trial_cycles: Vec<u64> = Vec::with_capacity(64);
        let t0 = Instant::now();
        let scalar: Vec<Outcome> = specs
            .iter()
            .map(|fault| {
                let mut cpu = Cpu::new(&program, &config);
                let mut injected = false;
                let mut executed: u64 = 0;
                let result = loop {
                    if !injected && executed >= fault.cycle {
                        match fault.target {
                            FaultTarget::Register { reg, bit } => cpu.flip_register_bit(reg, bit),
                            FaultTarget::Pc { bit } => cpu.flip_pc_bit(bit),
                            FaultTarget::Memory { addr, bit } => cpu.flip_memory_bit(addr, bit),
                        }
                        injected = true;
                    }
                    let info = cpu.step(&program, &protection);
                    executed += 1;
                    if let Some(stop) = info.stop {
                        break cpu.finish(&program, stop);
                    }
                };
                trial_cycles.push(executed);
                classify(&result, &golden)
            })
            .collect();
        let t_scalar_instr = t0.elapsed();

        let t0 = Instant::now();
        let scalar2: Vec<Outcome> = specs
            .iter()
            .map(|f| run_with_fault(&program, &config, &protection, &golden, f))
            .collect();
        let t_scalar = t0.elapsed();
        assert_eq!(scalar, scalar2);

        let t0 = Instant::now();
        let lanes = run_fault_block(&program, &config, &protection, &golden, &specs);
        let t_lane = t0.elapsed();
        assert_eq!(scalar, lanes);

        let hangs = scalar.iter().filter(|&&o| o == Outcome::Hang).count();
        let crashes = scalar.iter().filter(|&&o| o == Outcome::Crash).count();
        let masked = scalar.iter().filter(|&&o| o == Outcome::Masked).count();
        let total_cycles: u64 = trial_cycles.iter().sum();
        let long = trial_cycles
            .iter()
            .filter(|&&c| c > 4 * golden.cycles)
            .count();
        println!(
            "{:<12} golden={:<6} scalar={:>10.3?} (instr {:>10.3?}, setup {:>9.3?}) lane={:>10.3?} speedup={:>5.1}x",
            program.name,
            golden.cycles,
            t_scalar,
            t_scalar_instr,
            t_setup,
            t_lane,
            t_scalar.as_secs_f64() / t_lane.as_secs_f64(),
        );
        println!(
            "             masked={masked} hangs={hangs} crashes={crashes} total_trial_cycles={total_cycles} long_trials={long} max_trial_cycles={}",
            trial_cycles.iter().max().unwrap()
        );
    }
}
