//! The flight recorder: a fixed-capacity per-thread ring buffer of recent
//! spans and gauge updates, kept alongside (and independently of) the
//! event recorder.
//!
//! When enabled, every span enter/exit and gauge set also lands in the
//! calling thread's ring, overwriting the oldest entry once the ring is
//! full. The rings are snapshottable at any moment (the telemetry
//! endpoint's `/flight` route) and dumped to a JSON "black box" file on
//! panic or quarantine, so a crashed run leaves its last few thousand
//! events next to the WAL even when full event recording was off.
//!
//! Entries are fixed-size (`&'static str` name + five numbers — no
//! allocation per event) and each ring is guarded by its own mutex that
//! only its owning thread takes on the hot path, so recording is
//! contention-free; snapshots briefly lock each ring in turn. When
//! disabled (the default) the only cost at each instrumentation site is a
//! relaxed atomic load.

use crate::json::Value;
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Default per-thread ring capacity ("last 4k events" across a typical
/// 8-worker run).
pub const DEFAULT_CAPACITY: usize = 512;

/// Fast-path switch, mirrored by [`enabled`].
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Per-thread ring capacity applied when a thread registers its ring.
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);

/// Every ring ever registered, so snapshot/dump can reach rings owned by
/// parked or finished threads.
static RINGS: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());

/// Where [`dump`] writes the black box (None until configured).
static DUMP_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

thread_local! {
    static THREAD_RING: RefCell<Option<Arc<Mutex<Ring>>>> = const { RefCell::new(None) };
}

/// What a flight entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A span opened (`value` = attr or NaN-free 0).
    Enter,
    /// A span closed (`value` = duration in ns).
    Exit,
    /// A gauge was set (`value` = the new value).
    Gauge,
}

impl FlightKind {
    fn as_str(self) -> &'static str {
        match self {
            FlightKind::Enter => "enter",
            FlightKind::Exit => "exit",
            FlightKind::Gauge => "gauge",
        }
    }
}

/// One fixed-size flight-recorder entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEvent {
    /// Entry kind.
    pub kind: FlightKind,
    /// Static span/gauge name.
    pub name: &'static str,
    /// Monotonic nanoseconds since the observability epoch.
    pub t_ns: u64,
    /// Small per-process thread index.
    pub tid: u64,
    /// Span id (0 for gauges).
    pub sid: u64,
    /// Parent span id (0 = root / gauge).
    pub parent: u64,
    /// Kind-dependent payload: enter attr, exit duration (ns), gauge value.
    pub value: f64,
}

/// A per-thread overwrite-oldest ring.
#[derive(Debug)]
struct Ring {
    entries: Vec<FlightEvent>,
    capacity: usize,
    /// Next write position once the ring has wrapped.
    head: usize,
    /// Total entries ever written (so snapshots can report drops).
    written: u64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            entries: Vec::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            head: 0,
            written: 0,
        }
    }

    fn push(&mut self, ev: FlightEvent) {
        self.written += 1;
        if self.entries.len() < self.capacity {
            self.entries.push(ev);
        } else {
            self.entries[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Entries oldest-first.
    fn ordered(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.entries.len());
        out.extend_from_slice(&self.entries[self.head..]);
        out.extend_from_slice(&self.entries[..self.head]);
        out
    }
}

/// `true` while the flight recorder is armed. One relaxed atomic load —
/// the instrumentation fast path.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Arms the flight recorder with the given per-thread ring capacity.
/// Already-registered rings keep their old capacity; new threads get the
/// new one.
pub fn enable(capacity: usize) {
    CAPACITY.store(capacity.max(1), Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disarms the flight recorder. Rings keep their contents (still
/// snapshot/dumpable) until [`clear`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Arms the recorder from `LORI_FLIGHT`: unset/`off`/`0`/`false` leaves it
/// disabled, `on`/`1`/`true` arms at [`DEFAULT_CAPACITY`], a number arms
/// with that per-thread capacity. Returns whether the recorder is armed.
pub fn init_from_env() -> bool {
    match std::env::var("LORI_FLIGHT") {
        Ok(v) => match v.trim() {
            "" | "0" | "off" | "false" => false,
            "1" | "on" | "true" => {
                enable(DEFAULT_CAPACITY);
                true
            }
            n => {
                if let Ok(cap) = n.parse::<usize>() {
                    enable(cap);
                    true
                } else {
                    false
                }
            }
        },
        Err(_) => false,
    }
}

/// Empties every ring and the total-written counters (test isolation and
/// run boundaries).
pub fn clear() {
    let rings = RINGS.lock().unwrap_or_else(PoisonError::into_inner);
    for ring in rings.iter() {
        let mut ring = ring.lock().unwrap_or_else(PoisonError::into_inner);
        ring.entries.clear();
        ring.head = 0;
        ring.written = 0;
    }
}

/// Records a span-enter into the calling thread's ring. Callers gate on
/// [`enabled`] first.
pub(crate) fn record_enter(
    name: &'static str,
    t_ns: u64,
    tid: u64,
    sid: u64,
    parent: u64,
    attr: Option<f64>,
) {
    record(FlightEvent {
        kind: FlightKind::Enter,
        name,
        t_ns,
        tid,
        sid,
        parent,
        value: attr.unwrap_or(0.0),
    });
}

/// Records a span-exit into the calling thread's ring.
#[allow(clippy::cast_precision_loss)]
pub(crate) fn record_exit(name: &'static str, t_ns: u64, tid: u64, sid: u64, dur_ns: u64) {
    record(FlightEvent {
        kind: FlightKind::Exit,
        name,
        t_ns,
        tid,
        sid,
        parent: 0,
        value: dur_ns as f64,
    });
}

/// Records a gauge update into the calling thread's ring.
pub(crate) fn record_gauge(name: &'static str, t_ns: u64, tid: u64, value: f64) {
    record(FlightEvent {
        kind: FlightKind::Gauge,
        name,
        t_ns,
        tid,
        sid: 0,
        parent: 0,
        value,
    });
}

fn record(ev: FlightEvent) {
    THREAD_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_none() {
            let ring = Arc::new(Mutex::new(Ring::new(CAPACITY.load(Ordering::Relaxed))));
            RINGS
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(Arc::clone(&ring));
            *slot = Some(ring);
        }
        let ring = slot.as_ref().expect("registered above");
        // Only this thread and snapshot/dump take this lock: uncontended on
        // the hot path.
        ring.lock().unwrap_or_else(PoisonError::into_inner).push(ev);
    });
}

/// All rings' entries merged and ordered by `(t_ns, tid, sid)`, plus the
/// number of entries overwritten since the last [`clear`].
#[must_use]
pub fn snapshot() -> (Vec<FlightEvent>, u64) {
    let rings: Vec<Arc<Mutex<Ring>>> = RINGS
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(Arc::clone)
        .collect();
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for ring in rings {
        let ring = ring.lock().unwrap_or_else(PoisonError::into_inner);
        dropped += ring.written - ring.entries.len() as u64;
        events.extend(ring.ordered());
    }
    events.sort_by_key(|e| (e.t_ns, e.tid, e.sid));
    (events, dropped)
}

/// The snapshot as a JSON document: `{"reason", "dropped", "events":[…]}`.
#[must_use]
pub fn snapshot_value(reason: &str) -> Value {
    let (events, dropped) = snapshot();
    let entries: Vec<Value> = events
        .iter()
        .map(|e| {
            let mut members = vec![
                ("kind".to_owned(), Value::from(e.kind.as_str())),
                ("name".to_owned(), Value::from(e.name)),
                ("t_ns".to_owned(), Value::from(e.t_ns)),
                ("tid".to_owned(), Value::from(e.tid)),
            ];
            if e.sid != 0 {
                members.push(("sid".to_owned(), Value::from(e.sid)));
            }
            if e.parent != 0 {
                members.push(("parent".to_owned(), Value::from(e.parent)));
            }
            members.push(("value".to_owned(), Value::from(e.value)));
            Value::Obj(members)
        })
        .collect();
    Value::Obj(vec![
        ("reason".to_owned(), Value::from(reason)),
        ("dropped".to_owned(), Value::from(dropped)),
        ("events".to_owned(), Value::Arr(entries)),
    ])
}

/// Configures where [`dump`] (and the panic hook) writes the black box.
pub fn set_dump_path(path: impl AsRef<Path>) {
    *DUMP_PATH.lock().unwrap_or_else(PoisonError::into_inner) = Some(path.as_ref().to_path_buf());
}

/// Writes the current snapshot to the configured dump path (atomic temp +
/// rename; last dump wins). No-op when the recorder is disarmed or no path
/// is configured. Returns the path written, if any.
pub fn dump(reason: &str) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    let path = DUMP_PATH
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()?;
    let doc = snapshot_value(reason).to_json() + "\n";
    match crate::fsio::atomic_write(&path, doc.as_bytes()) {
        Ok(()) => Some(path),
        Err(_) => None,
    }
}

/// Installs (once per process) a panic hook that dumps the flight recorder
/// before delegating to the previous hook. The dump itself is gated on
/// [`enabled`] and a configured path, so installing the hook is always
/// safe — including for fault-injection tests that panic under
/// `catch_unwind`.
pub fn install_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Reentrancy guard: a panic while dumping must not recurse.
            static DUMPING: AtomicBool = AtomicBool::new(false);
            if !DUMPING.swap(true, Ordering::SeqCst) {
                if let Some(path) = dump("panic") {
                    eprintln!("lori-obs: flight recorder dumped to {}", path.display());
                }
                DUMPING.store(false, Ordering::SeqCst);
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest() {
        let mut ring = Ring::new(3);
        for i in 0..5u64 {
            ring.push(FlightEvent {
                kind: FlightKind::Gauge,
                name: "g",
                t_ns: i,
                tid: 0,
                sid: 0,
                parent: 0,
                value: 0.0,
            });
        }
        let ordered = ring.ordered();
        assert_eq!(ordered.len(), 3);
        let ts: Vec<u64> = ordered.iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![2, 3, 4], "oldest-first, oldest two dropped");
        assert_eq!(ring.written, 5);
    }

    #[test]
    fn snapshot_value_shape() {
        let v = snapshot_value("unit");
        assert_eq!(v.get("reason").and_then(Value::as_str), Some("unit"));
        assert!(v.get("events").is_some());
        assert!(v.get("dropped").and_then(Value::as_f64).is_some());
    }
}
