//! Span tracing: nested, monotonic-timed scopes.
//!
//! [`span`] returns a guard; the span closes when the guard drops. Nesting
//! is tracked per thread, and every live span carries a process-unique
//! span id (`sid`) plus its parent's id (see [`crate::trace`]), so
//! recorders can reconstruct one causally-connected tree across worker
//! threads — `(tid, depth, t_ns)` still orders events within a thread.
//! When both recording and the flight recorder are disabled the guard is a
//! no-op created after two relaxed atomic loads — no clock read, no
//! allocation.

use crate::recorder::Event;
use crate::{active, epoch_ns, flight, recording, trace, with_recorder};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// The calling thread's id: a small per-process index OR-ed with the
/// process-epoch salt at read time (not cached at thread start, so a salt
/// installed during startup applies to the main thread too). Salted tids
/// keep per-thread event streams disjoint when a supervisor concatenates
/// worker streams into one merged trace.
pub(crate) fn current_tid() -> u64 {
    TID.with(|t| *t) | trace::salt()
}

/// An open span; closes (and records its duration) on drop.
#[must_use = "a span guard must be held for the duration of the scope"]
#[derive(Debug)]
pub struct Span {
    /// `None` when tracing was disabled at entry — drop does nothing.
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    name: &'static str,
    t0_ns: u64,
    tid: u64,
    depth: u32,
    sid: u64,
    /// This thread's innermost-open sid before this span opened; restored
    /// on drop.
    prev_sid: u64,
}

impl Span {
    /// The span's process-unique id, or 0 when tracing was disabled at
    /// entry.
    #[must_use]
    pub fn sid(&self) -> u64 {
        self.live.as_ref().map_or(0, |l| l.sid)
    }
}

/// Opens a span named `name`.
pub fn span(name: &'static str) -> Span {
    span_inner(name, None)
}

/// Opens a span with a numeric attribute (e.g. the parameter value the
/// iteration is working on).
pub fn span_with(name: &'static str, attr: f64) -> Span {
    span_inner(name, Some(attr))
}

fn span_inner(name: &'static str, attr: Option<f64>) -> Span {
    if !active() {
        return Span { live: None };
    }
    let t0_ns = epoch_ns();
    let tid = current_tid();
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    let sid = trace::next_sid();
    let parent = trace::current_parent();
    let prev_sid = trace::swap_current(sid);
    if recording() {
        with_recorder(|rec| {
            rec.record(&Event::SpanEnter {
                name,
                t_ns: t0_ns,
                tid,
                depth,
                attr,
                sid,
                parent,
            });
        });
    }
    if flight::enabled() {
        flight::record_enter(name, t0_ns, tid, sid, parent, attr);
    }
    Span {
        live: Some(LiveSpan {
            name,
            t0_ns,
            tid,
            depth,
            sid,
            prev_sid,
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        trace::swap_current(live.prev_sid);
        let t_ns = epoch_ns();
        let dur_ns = t_ns.saturating_sub(live.t0_ns);
        if recording() {
            with_recorder(|rec| {
                rec.record(&Event::SpanExit {
                    name: live.name,
                    t_ns,
                    tid: live.tid,
                    depth: live.depth,
                    dur_ns,
                    sid: live.sid,
                });
            });
        }
        if flight::enabled() {
            flight::record_exit(live.name, t_ns, live.tid, live.sid, dur_ns);
        }
    }
}

/// Times `f` under a span and returns its result.
pub fn in_span<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _guard = span(name);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        // No recorder installed in this process at this point (tests that
        // install one serialize on the integration-test lock instead).
        let g = span("unit.disabled");
        assert!(g.live.is_none());
        assert_eq!(g.sid(), 0);
        drop(g);
        let out = in_span("unit.disabled2", || 7);
        assert_eq!(out, 7);
    }

    #[test]
    fn tids_are_distinct_per_thread() {
        let a = current_tid();
        let b = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(a, b);
    }
}
