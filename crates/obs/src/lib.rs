//! # lori-obs — zero-dependency observability for LORI
//!
//! All hand-rolled on `std` only:
//!
//! 1. **Span tracing** ([`span`], [`span_with`], [`in_span`]): nested,
//!    monotonic-timed scopes recorded through a global [`Recorder`]. With
//!    no recorder installed (or the [`NullRecorder`]), opening a span costs
//!    two relaxed atomic loads — safe to leave in Monte Carlo inner loops.
//!    Spans carry process-unique ids and [`TraceContext`] propagates them
//!    across worker threads, so recorded trees stay causally connected.
//! 2. **Metrics** ([`counter`], [`gauge`], [`histogram`]): process-wide
//!    registry of counters, gauges, and fixed-bucket histograms with
//!    p50/p95/p99 estimates, keyed by static names.
//! 3. **Run manifests** ([`RunManifest`]): a JSON document per experiment
//!    run with seed, config, code version, wall time, per-phase breakdown,
//!    and a metrics snapshot.
//! 4. **The live tier**: a [`flight`] recorder (per-thread ring buffers of
//!    recent events, dumped on panic/quarantine), [`progress`] heartbeats
//!    (`LORI_PROGRESS`), and a [`telemetry`] HTTP endpoint
//!    (`LORI_TELEMETRY`) serving Prometheus metrics, JSON status, live
//!    progress, and flight snapshots while a run executes.
//!
//! Install a [`JsonlRecorder`] to stream every event to an append-only
//! `.events.jsonl` file:
//!
//! ```no_run
//! use lori_obs as obs;
//!
//! let rec = obs::JsonlRecorder::create("results/exp.events.jsonl").unwrap();
//! obs::install(std::sync::Arc::new(rec));
//! {
//!     let _sweep = obs::span("ftsched.sweep");
//!     obs::counter("ftsched.rollbacks").incr(1);
//! }
//! obs::uninstall();
//! ```

#![warn(missing_docs)]

pub mod flight;
pub(crate) mod fsio;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod progress;
pub mod recorder;
pub mod span;
pub mod telemetry;
pub mod trace;

pub use json::Value;
pub use manifest::{version_string, PhaseRecord, RunManifest};
pub use metrics::{
    counter, gauge, histogram, registry, Counter, Gauge, Histogram, MetricSnapshot, MetricValue,
    Registry,
};
pub use progress::{progress_enabled, Progress, ProgressSnapshot};
pub use recorder::{Event, JsonlRecorder, MemoryRecorder, NullRecorder, Recorder};
pub use span::{in_span, span, span_with, Span};
pub use telemetry::TelemetryServer;
pub use trace::{process_epoch, set_process_epoch, set_process_parent, ContextGuard, TraceContext};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Fast-path switch: `true` only while a non-null recorder is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed recorder. The `RwLock` is only contended during
/// install/uninstall; recording takes the read lock.
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// Process start reference for monotonic event timestamps.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// `true` while events are being recorded. Instrumented code checks this
/// (one relaxed atomic load) before doing any tracing work.
#[inline]
#[must_use]
pub fn recording() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// `true` while any event consumer is live: the installed recorder or the
/// armed flight recorder. Two relaxed atomic loads — the combined fast
/// path for span instrumentation.
#[inline]
#[must_use]
pub(crate) fn active() -> bool {
    ENABLED.load(Ordering::Relaxed) || flight::enabled()
}

/// Monotonic nanoseconds since the observability epoch (first use in this
/// process). Saturates at `u64::MAX` after ~584 years.
#[must_use]
pub fn epoch_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Installs `recorder` as the process-wide event sink, replacing (and
/// flushing) any previous one. Installing a [`NullRecorder`] keeps the
/// disabled fast path.
///
/// # Panics
///
/// Panics if the recorder lock is poisoned.
pub fn install(recorder: Arc<dyn Recorder>) {
    // Pin the epoch before the first event so t_ns starts near zero.
    let _ = epoch_ns();
    let enabled = !recorder.is_null();
    let previous = {
        let mut slot = RECORDER.write().expect("recorder lock poisoned");
        ENABLED.store(enabled, Ordering::Relaxed);
        slot.replace(recorder)
    };
    if let Some(prev) = previous {
        prev.flush();
    }
}

/// Removes the installed recorder (flushing it) and returns it.
///
/// # Panics
///
/// Panics if the recorder lock is poisoned.
pub fn uninstall() -> Option<Arc<dyn Recorder>> {
    let previous = {
        let mut slot = RECORDER.write().expect("recorder lock poisoned");
        ENABLED.store(false, Ordering::Relaxed);
        slot.take()
    };
    if let Some(prev) = &previous {
        prev.flush();
    }
    previous
}

/// Flushes the installed recorder, if any.
///
/// # Panics
///
/// Panics if the recorder lock is poisoned.
pub fn flush() {
    if let Some(rec) = RECORDER.read().expect("recorder lock poisoned").as_ref() {
        rec.flush();
    }
}

/// Runs `f` with the installed recorder, if one is present.
pub(crate) fn with_recorder(f: impl FnOnce(&dyn Recorder)) {
    if let Ok(slot) = RECORDER.read() {
        if let Some(rec) = slot.as_ref() {
            f(rec.as_ref());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_monotonic() {
        let a = epoch_ns();
        let b = epoch_ns();
        assert!(b >= a);
    }

    #[test]
    fn null_recorder_does_not_enable() {
        // Safe against parallel unit tests: install/uninstall of a null
        // recorder never sets ENABLED, and integration tests that install
        // real recorders live in a serialized harness.
        install(Arc::new(NullRecorder));
        assert!(!recording());
        uninstall();
        assert!(!recording());
    }
}
