//! Trace-context propagation: process-unique span IDs and cross-thread
//! parent adoption.
//!
//! Every live span is assigned a process-unique id (`sid`, never 0) and
//! records the id of its parent: the innermost span open on the same
//! thread, or — for a thread's outermost span — the span adopted from
//! another thread via [`TraceContext::adopt`]. `lori-par` captures
//! [`TraceContext::current`] before spawning workers and adopts it inside
//! each worker, so `par.worker` spans are causally attributed to the sweep
//! span that spawned them instead of appearing as per-thread orphan roots.
//!
//! The context is two thread-local cells and one relaxed atomic counter:
//! capturing and adopting a context is allocation-free and safe to do per
//! task.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Span-id allocator. 0 is reserved for "no span".
static NEXT_SID: AtomicU64 = AtomicU64::new(1);

/// Bit position of the process epoch inside every sid and tid. Low bits
/// hold the per-process counter; a counter overflowing 2^32 spans would
/// collide with the epoch, which no realistic run approaches.
pub(crate) const EPOCH_SHIFT: u32 = 32;

/// Process-epoch salt, pre-shifted by [`EPOCH_SHIFT`]. OR-ed into every
/// allocated sid and tid so ids stay unique across a supervised process
/// tree (each worker attempt gets a distinct supervisor-issued epoch).
static SALT: AtomicU64 = AtomicU64::new(0);

/// Cross-process parent: the supervisor span this whole process hangs
/// under. Fallback parent for spans with no in-process parent.
static PROCESS_PARENT: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The innermost span currently open on this thread (0 = none).
    static CURRENT_SID: Cell<u64> = const { Cell::new(0) };
    /// Parent adopted from another thread; applies to this thread's
    /// outermost spans only (0 = none).
    static ADOPTED_SID: Cell<u64> = const { Cell::new(0) };
}

/// Allocates a fresh span id, unique across the process tree once
/// [`set_process_epoch`] has run.
pub(crate) fn next_sid() -> u64 {
    SALT.load(Ordering::Relaxed) | NEXT_SID.fetch_add(1, Ordering::Relaxed)
}

/// The current pre-shifted epoch salt (0 in an unsalted process).
pub(crate) fn salt() -> u64 {
    SALT.load(Ordering::Relaxed)
}

/// Salts all subsequently allocated span and thread ids with a process
/// epoch, making them unique across a supervised process tree. The
/// supervisor keeps epoch 0; every worker attempt is issued a distinct
/// epoch at spawn. Ids are serialized through f64 (exact to 2^53), so
/// the epoch must stay below 2^21 — supervisors issue them from a small
/// spawn counter. Call before any span opens in the process.
pub fn set_process_epoch(epoch: u64) {
    debug_assert!(
        epoch < (1 << (53 - EPOCH_SHIFT)),
        "epoch exceeds f64-exact range"
    );
    SALT.store(epoch << EPOCH_SHIFT, Ordering::Relaxed);
}

/// The process epoch installed by [`set_process_epoch`] (0 = unsalted
/// supervisor / single-process run).
#[must_use]
pub fn process_epoch() -> u64 {
    SALT.load(Ordering::Relaxed) >> EPOCH_SHIFT
}

/// Installs the cross-process parent: spans with no in-process parent
/// (no enclosing span, no adoption) parent under this sid instead of
/// becoming roots. The supervisor passes its dispatch span's sid through
/// the exec boundary so each worker's root span hangs under it.
pub fn set_process_parent(sid: u64) {
    PROCESS_PARENT.store(sid, Ordering::Relaxed);
}

/// The parent a span opened right now would get: the innermost open span
/// on this thread, else the adopted cross-thread parent, else the
/// cross-process parent, else 0.
pub(crate) fn current_parent() -> u64 {
    let cur = CURRENT_SID.with(Cell::get);
    if cur != 0 {
        return cur;
    }
    let adopted = ADOPTED_SID.with(Cell::get);
    if adopted != 0 {
        return adopted;
    }
    PROCESS_PARENT.load(Ordering::Relaxed)
}

/// Swaps this thread's innermost-open-span id, returning the previous one.
pub(crate) fn swap_current(sid: u64) -> u64 {
    CURRENT_SID.with(|c| {
        let prev = c.get();
        c.set(sid);
        prev
    })
}

/// A capture of the calling thread's span position, cheap to copy across
/// threads. Adopting it makes spans opened on the adopting thread children
/// of the captured span.
///
/// ```
/// let ctx = lori_obs::TraceContext::current();
/// std::thread::scope(|s| {
///     s.spawn(move || {
///         let _ctx = ctx.adopt();
///         let _span = lori_obs::span("worker.task"); // child of the captured span
///     });
/// });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    parent: u64,
}

impl TraceContext {
    /// Captures the calling thread's innermost open span (or its adopted
    /// parent when no span is open). Works whether or not recording is
    /// enabled: with tracing off the context is simply empty.
    #[must_use]
    pub fn current() -> Self {
        TraceContext {
            parent: current_parent(),
        }
    }

    /// An empty context; adopting it detaches the thread from any parent.
    #[must_use]
    pub fn root() -> Self {
        TraceContext { parent: 0 }
    }

    /// The captured span id (0 when none was open).
    #[must_use]
    pub fn parent_sid(&self) -> u64 {
        self.parent
    }

    /// Makes this context the parent of the calling thread's outermost
    /// spans until the returned guard drops (restoring the previous
    /// adoption, so adoptions nest).
    pub fn adopt(&self) -> ContextGuard {
        let prev = ADOPTED_SID.with(|a| {
            let prev = a.get();
            a.set(self.parent);
            prev
        });
        ContextGuard {
            prev,
            _not_send: PhantomData,
        }
    }
}

/// Restores the thread's previous adopted parent on drop. `!Send`: it must
/// drop on the thread that adopted.
#[must_use = "dropping the guard immediately undoes the adoption"]
#[derive(Debug)]
pub struct ContextGuard {
    prev: u64,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        ADOPTED_SID.with(|a| a.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests in this module: the epoch/process-parent tests
    /// mutate process globals that the adoption tests assert are zero.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn sids_are_unique_and_nonzero() {
        let _g = LOCK.lock().unwrap();
        let a = next_sid();
        let b = next_sid();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn epoch_salts_sids_above_the_counter_bits() {
        let _g = LOCK.lock().unwrap();
        set_process_epoch(7);
        assert_eq!(process_epoch(), 7);
        let sid = next_sid();
        assert_eq!(sid >> EPOCH_SHIFT, 7, "epoch must ride the high bits");
        assert_ne!(sid & ((1 << EPOCH_SHIFT) - 1), 0, "counter must survive");
        set_process_epoch(0);
        assert_eq!(process_epoch(), 0);
        assert_eq!(next_sid() >> EPOCH_SHIFT, 0);
    }

    #[test]
    fn process_parent_is_the_last_fallback() {
        let _g = LOCK.lock().unwrap();
        set_process_parent(42);
        assert_eq!(current_parent(), 42, "exec-boundary parent applies");
        let ctx = TraceContext { parent: 5 };
        {
            let _a = ctx.adopt();
            assert_eq!(current_parent(), 5, "adoption shadows process parent");
            let prev = swap_current(11);
            assert_eq!(current_parent(), 11, "open span shadows both");
            swap_current(prev);
        }
        assert_eq!(current_parent(), 42);
        set_process_parent(0);
        assert_eq!(current_parent(), 0);
    }

    #[test]
    fn adoption_nests_and_restores() {
        let _g = LOCK.lock().unwrap();
        assert_eq!(TraceContext::current().parent_sid(), 0);
        let outer = TraceContext { parent: 7 };
        let inner = TraceContext { parent: 9 };
        {
            let _g1 = outer.adopt();
            assert_eq!(current_parent(), 7);
            {
                let _g2 = inner.adopt();
                assert_eq!(current_parent(), 9);
            }
            assert_eq!(current_parent(), 7);
        }
        assert_eq!(current_parent(), 0);
    }

    #[test]
    fn open_span_shadows_adoption() {
        let _g = LOCK.lock().unwrap();
        let ctx = TraceContext { parent: 5 };
        let _g = ctx.adopt();
        let prev = swap_current(11);
        assert_eq!(prev, 0);
        assert_eq!(current_parent(), 11, "innermost open span wins");
        swap_current(prev);
        assert_eq!(current_parent(), 5, "falls back to adopted parent");
    }
}
