//! Trace-context propagation: process-unique span IDs and cross-thread
//! parent adoption.
//!
//! Every live span is assigned a process-unique id (`sid`, never 0) and
//! records the id of its parent: the innermost span open on the same
//! thread, or — for a thread's outermost span — the span adopted from
//! another thread via [`TraceContext::adopt`]. `lori-par` captures
//! [`TraceContext::current`] before spawning workers and adopts it inside
//! each worker, so `par.worker` spans are causally attributed to the sweep
//! span that spawned them instead of appearing as per-thread orphan roots.
//!
//! The context is two thread-local cells and one relaxed atomic counter:
//! capturing and adopting a context is allocation-free and safe to do per
//! task.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Span-id allocator. 0 is reserved for "no span".
static NEXT_SID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The innermost span currently open on this thread (0 = none).
    static CURRENT_SID: Cell<u64> = const { Cell::new(0) };
    /// Parent adopted from another thread; applies to this thread's
    /// outermost spans only (0 = none).
    static ADOPTED_SID: Cell<u64> = const { Cell::new(0) };
}

/// Allocates a fresh, process-unique span id.
pub(crate) fn next_sid() -> u64 {
    NEXT_SID.fetch_add(1, Ordering::Relaxed)
}

/// The parent a span opened right now would get: the innermost open span
/// on this thread, else the adopted cross-thread parent, else 0.
pub(crate) fn current_parent() -> u64 {
    let cur = CURRENT_SID.with(Cell::get);
    if cur != 0 {
        cur
    } else {
        ADOPTED_SID.with(Cell::get)
    }
}

/// Swaps this thread's innermost-open-span id, returning the previous one.
pub(crate) fn swap_current(sid: u64) -> u64 {
    CURRENT_SID.with(|c| {
        let prev = c.get();
        c.set(sid);
        prev
    })
}

/// A capture of the calling thread's span position, cheap to copy across
/// threads. Adopting it makes spans opened on the adopting thread children
/// of the captured span.
///
/// ```
/// let ctx = lori_obs::TraceContext::current();
/// std::thread::scope(|s| {
///     s.spawn(move || {
///         let _ctx = ctx.adopt();
///         let _span = lori_obs::span("worker.task"); // child of the captured span
///     });
/// });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    parent: u64,
}

impl TraceContext {
    /// Captures the calling thread's innermost open span (or its adopted
    /// parent when no span is open). Works whether or not recording is
    /// enabled: with tracing off the context is simply empty.
    #[must_use]
    pub fn current() -> Self {
        TraceContext {
            parent: current_parent(),
        }
    }

    /// An empty context; adopting it detaches the thread from any parent.
    #[must_use]
    pub fn root() -> Self {
        TraceContext { parent: 0 }
    }

    /// The captured span id (0 when none was open).
    #[must_use]
    pub fn parent_sid(&self) -> u64 {
        self.parent
    }

    /// Makes this context the parent of the calling thread's outermost
    /// spans until the returned guard drops (restoring the previous
    /// adoption, so adoptions nest).
    pub fn adopt(&self) -> ContextGuard {
        let prev = ADOPTED_SID.with(|a| {
            let prev = a.get();
            a.set(self.parent);
            prev
        });
        ContextGuard {
            prev,
            _not_send: PhantomData,
        }
    }
}

/// Restores the thread's previous adopted parent on drop. `!Send`: it must
/// drop on the thread that adopted.
#[must_use = "dropping the guard immediately undoes the adoption"]
#[derive(Debug)]
pub struct ContextGuard {
    prev: u64,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        ADOPTED_SID.with(|a| a.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sids_are_unique_and_nonzero() {
        let a = next_sid();
        let b = next_sid();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn adoption_nests_and_restores() {
        assert_eq!(TraceContext::current().parent_sid(), 0);
        let outer = TraceContext { parent: 7 };
        let inner = TraceContext { parent: 9 };
        {
            let _g1 = outer.adopt();
            assert_eq!(current_parent(), 7);
            {
                let _g2 = inner.adopt();
                assert_eq!(current_parent(), 9);
            }
            assert_eq!(current_parent(), 7);
        }
        assert_eq!(current_parent(), 0);
    }

    #[test]
    fn open_span_shadows_adoption() {
        let ctx = TraceContext { parent: 5 };
        let _g = ctx.adopt();
        let prev = swap_current(11);
        assert_eq!(prev, 0);
        assert_eq!(current_parent(), 11, "innermost open span wins");
        swap_current(prev);
        assert_eq!(current_parent(), 5, "falls back to adopted parent");
    }
}
