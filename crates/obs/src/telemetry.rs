//! The in-process telemetry endpoint: a std-only TCP/HTTP server exposing
//! live metrics, status, progress, and the flight recorder.
//!
//! Off by default. Set `LORI_TELEMETRY=<addr>` (e.g. `127.0.0.1:9464`, or
//! `127.0.0.1:0` for an ephemeral port) and the bench harness starts one
//! server per process, printing the bound address to stderr. Routes:
//!
//! | route       | payload                                                |
//! |-------------|--------------------------------------------------------|
//! | `/metrics`  | Prometheus text format: every registered metric, plus  |
//! |             | uptime, scrape count, and per-phase progress           |
//! | `/status`   | JSON: run name, phase, manifest-so-far, cache hit rate,|
//! |             | fault/quarantine counters, live progress               |
//! | `/progress` | JSON array of live [`crate::progress`] trackers        |
//! | `/flight`   | JSON flight-recorder snapshot ([`crate::flight`])      |
//! | `/workers`  | JSON fleet view of a multi-process sweep: per-worker   |
//! |             | lease state, attempt, heartbeat age, progress, plus    |
//! |             | counters aggregated from per-shard metrics files       |
//!
//! The server is deliberately minimal: HTTP/1.1, `GET` only, one short
//! request per connection (`Connection: close`), thread per connection
//! with read/write timeouts. Scrape bookkeeping lives in module-local
//! atomics — never in the metric registry — so serving telemetry cannot
//! perturb the metrics snapshot a run writes to its manifest: artifacts
//! stay bit-identical with the endpoint on or off.

use crate::json::Value;
use crate::metrics::{registry, MetricValue};
use crate::progress;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Per-connection I/O timeout: a scraper that stalls longer than this is
/// dropped.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Longest request (line + headers) we bother reading.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Total scrapes served (module-local, intentionally not a registry
/// metric — see module docs).
static SCRAPES: AtomicU64 = AtomicU64::new(0);

/// Live server count; [`is_serving`] gates fleet-document refreshes so a
/// supervisor with no endpoint pays no per-poll aggregation cost.
static SERVERS: AtomicU64 = AtomicU64::new(0);

/// The fleet document pushed by a procpool supervisor ([`set_fleet_json`]).
/// A pre-serialized JSON string: the producer (lori-par) aggregates, this
/// module only serves — keeping lori-obs free of any procpool dependency.
static FLEET: Mutex<Option<String>> = Mutex::new(None);

/// Publishes the fleet document served at `/workers` (and folded into
/// `/metrics` + `/status`). The string must be a JSON object; it is parsed
/// on scrape, never stored in the metric registry, so artifacts stay
/// bit-identical with the endpoint on or off.
pub fn set_fleet_json(json: String) {
    *FLEET.lock().unwrap_or_else(PoisonError::into_inner) = Some(json);
}

/// `true` while at least one telemetry server is accepting scrapes.
/// Producers use this to skip fleet aggregation work nobody would see.
#[must_use]
pub fn is_serving() -> bool {
    SERVERS.load(Ordering::Relaxed) > 0
}

fn fleet_value() -> Value {
    let json = FLEET.lock().unwrap_or_else(PoisonError::into_inner).clone();
    json.as_deref()
        .and_then(|j| Value::parse(j).ok())
        .unwrap_or(Value::Null)
}

/// Status document state, set by the harness as the run advances.
static STATUS: Mutex<RunStatus> = Mutex::new(RunStatus {
    run: None,
    phase: None,
    manifest_json: None,
});

struct RunStatus {
    run: Option<String>,
    phase: Option<String>,
    /// The run manifest serialized as of the last phase boundary.
    manifest_json: Option<String>,
}

/// The process-wide server started by [`init_from_env`], kept alive for
/// the process lifetime.
static GLOBAL: Mutex<Option<TelemetryServer>> = Mutex::new(None);

/// Records the current run name for `/status`.
pub fn set_run(name: &str) {
    status_lock().run = Some(name.to_owned());
}

/// Records the current phase for `/status`.
pub fn set_phase(phase: &str) {
    status_lock().phase = Some(phase.to_owned());
}

/// Records the manifest-so-far (a JSON document) for `/status`.
pub fn set_manifest_json(json: String) {
    status_lock().manifest_json = Some(json);
}

fn status_lock() -> std::sync::MutexGuard<'static, RunStatus> {
    STATUS.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Starts the process-wide server if `LORI_TELEMETRY` names a bind
/// address. Idempotent: later calls return the already-bound address.
///
/// # Errors
///
/// Propagates the bind error when the requested address is unusable.
pub fn init_from_env() -> std::io::Result<Option<SocketAddr>> {
    let Ok(addr) = std::env::var("LORI_TELEMETRY") else {
        return Ok(None);
    };
    let addr = addr.trim().to_owned();
    if addr.is_empty() || addr == "off" || addr == "0" {
        return Ok(None);
    }
    let mut global = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(server) = global.as_ref() {
        return Ok(Some(server.addr()));
    }
    let server = serve(&addr)?;
    let bound = server.addr();
    *global = Some(server);
    Ok(Some(bound))
}

/// A running telemetry server. Dropping it (or calling
/// [`TelemetryServer::shutdown`]) stops the accept loop and unbinds.
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// The address the server actually bound (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and waits for it to exit. In-flight
    /// connections finish on their own threads. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        SERVERS.fetch_sub(1, Ordering::Relaxed);
        // The accept loop blocks in accept(); poke it awake.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and serves telemetry until the returned server shuts down.
///
/// # Errors
///
/// Propagates bind/spawn errors.
pub fn serve(addr: &str) -> std::io::Result<TelemetryServer> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("lori-telemetry".to_owned())
        .spawn(move || accept_loop(&listener, &accept_stop))?;
    SERVERS.fetch_add(1, Ordering::Relaxed);
    Ok(TelemetryServer {
        addr: bound,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = std::thread::Builder::new()
            .name("lori-telemetry-conn".to_owned())
            .spawn(move || handle_connection(stream));
    }
}

fn handle_connection(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let response = match read_request(&mut stream) {
        Ok(request) => respond(&request),
        Err(status) => error_response(status),
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Reads the request head (line + headers) and returns the request line.
/// Errors carry the HTTP status to answer with.
fn read_request(stream: &mut TcpStream) -> Result<String, u16> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
                if buf.len() > MAX_REQUEST_BYTES {
                    return Err(400);
                }
            }
            Err(_) => return Err(400),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next().unwrap_or("").trim().to_owned();
    if line.is_empty() {
        return Err(400);
    }
    Ok(line)
}

fn respond(request_line: &str) -> String {
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return error_response(400);
    };
    if !version.starts_with("HTTP/") {
        return error_response(400);
    }
    if method != "GET" {
        return error_response(405);
    }
    // Ignore any query string; the routes take no parameters.
    let path = target.split('?').next().unwrap_or(target);
    SCRAPES.fetch_add(1, Ordering::Relaxed);
    match path {
        "/" => text_response(
            200,
            "text/plain; charset=utf-8",
            "lori telemetry\nroutes: /metrics /status /progress /flight /workers\n",
        ),
        "/metrics" => text_response(200, "text/plain; version=0.0.4", &prometheus_text()),
        "/status" => json_response(&status_value()),
        "/progress" => json_response(&progress_value()),
        "/flight" => json_response(&crate::flight::snapshot_value("scrape")),
        "/workers" => json_response(&fleet_value()),
        _ => error_response(404),
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    }
}

fn text_response(status: u16, content_type: &str, body: &str) -> String {
    let mut out = String::with_capacity(body.len() + 128);
    out.push_str(&format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len()
    ));
    if status == 405 {
        out.push_str("allow: GET\r\n");
    }
    out.push_str("\r\n");
    out.push_str(body);
    out
}

fn json_response(doc: &Value) -> String {
    let body = doc.to_json() + "\n";
    text_response(200, "application/json", &body)
}

fn error_response(status: u16) -> String {
    text_response(
        status,
        "text/plain; charset=utf-8",
        &format!("{status} {}\n", reason(status)),
    )
}

/// A metric name in Prometheus charset: `[a-zA-Z0-9_]`, `lori_` prefix.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("lori_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prom_num(v: f64, out: &mut String) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "+Inf" } else { "-Inf" });
    } else {
        out.push_str(&format!("{v}"));
    }
}

#[allow(clippy::cast_precision_loss)]
fn prometheus_text() -> String {
    let mut out = String::with_capacity(2048);
    for snap in registry().snapshot() {
        let name = prom_name(snap.name);
        match snap.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} "));
                prom_num(v, &mut out);
                out.push('\n');
            }
            MetricValue::Histogram {
                count,
                sum,
                p50,
                p95,
                p99,
            } => {
                out.push_str(&format!("# TYPE {name} summary\n"));
                for (q, v) in [("0.5", p50), ("0.95", p95), ("0.99", p99)] {
                    out.push_str(&format!("{name}{{quantile=\"{q}\"}} "));
                    prom_num(v, &mut out);
                    out.push('\n');
                }
                out.push_str(&format!("{name}_sum "));
                prom_num(sum, &mut out);
                out.push('\n');
                out.push_str(&format!("{name}_count {count}\n"));
            }
        }
    }
    for p in progress::snapshot() {
        let phase = prom_name(p.phase);
        out.push_str(&format!(
            "# TYPE lori_progress_done counter\nlori_progress_done{{phase=\"{phase}\"}} {}\n",
            p.done
        ));
        out.push_str(&format!(
            "# TYPE lori_progress_total gauge\nlori_progress_total{{phase=\"{phase}\"}} {}\n",
            p.total
        ));
    }
    out.push_str(&format!(
        "# TYPE lori_uptime_seconds gauge\nlori_uptime_seconds {}\n",
        crate::epoch_ns() as f64 / 1e9
    ));
    out.push_str(&format!(
        "# TYPE lori_telemetry_scrapes counter\nlori_telemetry_scrapes {}\n",
        SCRAPES.load(Ordering::Relaxed)
    ));
    fleet_prometheus_text(&fleet_value(), &mut out);
    out
}

/// Appends `lori_fleet_*` series from the pushed fleet document: one
/// counter per aggregated worker counter, plus a running-shard gauge.
fn fleet_prometheus_text(fleet: &Value, out: &mut String) {
    let Value::Obj(_) = fleet else { return };
    if let Some(Value::Obj(counters)) = fleet.get("counters") {
        for (name, v) in counters {
            let name = prom_name(&format!("fleet.{name}"));
            out.push_str(&format!("# TYPE {name} counter\n{name} "));
            prom_num(v.as_f64().unwrap_or(0.0), out);
            out.push('\n');
        }
    }
    if let Some(Value::Arr(workers)) = fleet.get("workers") {
        let running = workers
            .iter()
            .filter(|w| w.get("state").and_then(Value::as_str) == Some("running"))
            .count();
        out.push_str(&format!(
            "# TYPE lori_fleet_shards_running gauge\nlori_fleet_shards_running {running}\n"
        ));
    }
}

/// Reads a counter's value from a registry snapshot without registering
/// anything (registering would change the manifest's metric set).
fn counter_value(snaps: &[crate::MetricSnapshot], name: &str) -> u64 {
    snaps
        .iter()
        .find(|s| s.name == name)
        .and_then(|s| match s.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        })
        .unwrap_or(0)
}

#[allow(clippy::cast_precision_loss)]
fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[allow(clippy::cast_precision_loss)]
fn status_value() -> Value {
    let status = {
        let s = status_lock();
        (s.run.clone(), s.phase.clone(), s.manifest_json.clone())
    };
    let (run, phase, manifest_json) = status;
    let snaps = registry().snapshot();
    let hits = counter_value(&snaps, "cache.hits");
    let misses = counter_value(&snaps, "cache.misses");
    let retried = counter_value(&snaps, "fault.retried");
    let quarantined = counter_value(&snaps, "fault.quarantined");
    let tasks = counter_value(&snaps, "fault.tasks");
    let manifest = manifest_json
        .as_deref()
        .and_then(|j| Value::parse(j).ok())
        .unwrap_or(Value::Null);
    Value::Obj(vec![
        ("run".to_owned(), run.map_or(Value::Null, Value::from)),
        ("phase".to_owned(), phase.map_or(Value::Null, Value::from)),
        (
            "uptime_ms".to_owned(),
            Value::from(crate::epoch_ns() / 1_000_000),
        ),
        (
            "scrapes".to_owned(),
            Value::from(SCRAPES.load(Ordering::Relaxed)),
        ),
        (
            "cache".to_owned(),
            Value::Obj(vec![
                ("hits".to_owned(), Value::from(hits)),
                ("misses".to_owned(), Value::from(misses)),
                (
                    "hit_rate".to_owned(),
                    Value::from(rate(hits, hits + misses)),
                ),
            ]),
        ),
        (
            "fault".to_owned(),
            Value::Obj(vec![
                ("retried".to_owned(), Value::from(retried)),
                ("quarantined".to_owned(), Value::from(quarantined)),
                ("tasks".to_owned(), Value::from(tasks)),
                (
                    "quarantine_rate".to_owned(),
                    Value::from(rate(quarantined, tasks)),
                ),
            ]),
        ),
        ("progress".to_owned(), progress_value()),
        ("fleet".to_owned(), fleet_value()),
        ("manifest".to_owned(), manifest),
    ])
}

fn progress_value() -> Value {
    let entries: Vec<Value> = progress::snapshot()
        .iter()
        .map(|p| {
            Value::Obj(vec![
                ("phase".to_owned(), Value::from(p.phase)),
                ("done".to_owned(), Value::from(p.done)),
                ("total".to_owned(), Value::from(p.total)),
                ("elapsed_ms".to_owned(), Value::from(p.elapsed_ms)),
            ])
        })
        .collect();
    Value::Arr(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(prom_name("cache.hit_rate"), "lori_cache_hit_rate");
        assert_eq!(prom_name("a-b c"), "lori_a_b_c");
    }

    #[test]
    fn request_line_routing() {
        assert!(respond("GET / HTTP/1.1").starts_with("HTTP/1.1 200"));
        assert!(respond("GET /metrics HTTP/1.1").starts_with("HTTP/1.1 200"));
        assert!(respond("GET /status HTTP/1.1").starts_with("HTTP/1.1 200"));
        assert!(respond("GET /progress HTTP/1.1").starts_with("HTTP/1.1 200"));
        assert!(respond("GET /flight HTTP/1.1").starts_with("HTTP/1.1 200"));
        assert!(respond("GET /workers HTTP/1.1").starts_with("HTTP/1.1 200"));
        assert!(respond("GET /metrics?x=1 HTTP/1.1").starts_with("HTTP/1.1 200"));
        assert!(respond("GET /nope HTTP/1.1").starts_with("HTTP/1.1 404"));
        assert!(respond("POST /metrics HTTP/1.1").starts_with("HTTP/1.1 405"));
        assert!(respond("GET /metrics").starts_with("HTTP/1.1 400"));
        assert!(respond("nonsense").starts_with("HTTP/1.1 400"));
        assert!(respond("GET /metrics FTP/9").starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn status_document_shape() {
        set_run("unit-run");
        set_phase("unit-phase");
        let v = status_value();
        assert_eq!(v.get("run").and_then(Value::as_str), Some("unit-run"));
        assert_eq!(v.get("phase").and_then(Value::as_str), Some("unit-phase"));
        assert!(v.get("cache").and_then(|c| c.get("hit_rate")).is_some());
        assert!(v
            .get("fault")
            .and_then(|f| f.get("quarantine_rate"))
            .is_some());
        assert!(v.get("progress").is_some());
    }

    #[test]
    fn fleet_document_round_trips_and_feeds_metrics() {
        set_fleet_json(
            r#"{"workers":[{"shard":0,"state":"running","worker":1,"attempt":1},
                {"shard":1,"state":"done","worker":0,"attempt":2}],
                "counters":{"procpool.units_computed":12}}"#
                .to_owned(),
        );
        let v = fleet_value();
        let workers = v.get("workers").and_then(Value::as_arr).expect("workers");
        assert_eq!(workers.len(), 2);
        let status = status_value();
        assert!(status.get("fleet").and_then(|f| f.get("workers")).is_some());

        let mut prom = String::new();
        fleet_prometheus_text(&v, &mut prom);
        assert!(prom.contains("lori_fleet_procpool_units_computed 12\n"));
        assert!(prom.contains("lori_fleet_shards_running 1\n"));

        // A non-supervisor process (nothing pushed) serves null and emits
        // no fleet series.
        *FLEET.lock().unwrap() = None;
        assert_eq!(fleet_value(), Value::Null);
        let mut prom = String::new();
        fleet_prometheus_text(&Value::Null, &mut prom);
        assert!(prom.is_empty());
    }

    #[test]
    fn responses_frame_content_length() {
        let resp = text_response(200, "text/plain", "abc");
        assert!(resp.contains("content-length: 3\r\n"));
        assert!(resp.contains("connection: close\r\n"));
        assert!(resp.ends_with("\r\n\r\nabc"));
        let err = error_response(405);
        assert!(err.contains("allow: GET\r\n"));
    }
}
