//! Event sinks: the [`Recorder`] trait and its implementations.
//!
//! A recorder receives every span and gauge event from the instrumented
//! code. Exactly one recorder is installed globally (see
//! [`crate::install`]); when none is installed — or the [`NullRecorder`]
//! is — instrumentation short-circuits on a single relaxed atomic load, so
//! disabled tracing costs nothing measurable on hot paths.

use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One observability event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event<'a> {
    /// A span opened.
    SpanEnter {
        /// Static span name, dot-separated (`layer.component.op`).
        name: &'a str,
        /// Monotonic nanoseconds since the recorder was installed.
        t_ns: u64,
        /// Small per-process thread index (not the OS thread id).
        tid: u64,
        /// Nesting depth on this thread (0 = top level).
        depth: u32,
        /// Optional numeric attribute (e.g. the sweep's error probability).
        attr: Option<f64>,
        /// Process-unique span id (never 0 for live spans).
        sid: u64,
        /// Parent span id: the innermost span open on this thread, or the
        /// cross-thread parent adopted via [`crate::TraceContext`]; 0 for
        /// roots.
        parent: u64,
    },
    /// A span closed.
    SpanExit {
        /// Static span name, matching the corresponding enter.
        name: &'a str,
        /// Monotonic nanoseconds since the recorder was installed.
        t_ns: u64,
        /// Small per-process thread index.
        tid: u64,
        /// Nesting depth on this thread.
        depth: u32,
        /// Span duration in nanoseconds.
        dur_ns: u64,
        /// Process-unique span id, matching the corresponding enter.
        sid: u64,
    },
    /// A gauge was set.
    Gauge {
        /// Static gauge name.
        name: &'a str,
        /// Monotonic nanoseconds since the recorder was installed.
        t_ns: u64,
        /// New gauge value.
        value: f64,
    },
}

impl Event<'_> {
    /// Serializes the event as one JSON line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        self.write_json_line(&mut out);
        out
    }

    /// Appends the event's JSON line (no trailing newline) to `out`.
    ///
    /// This is a direct serializer — no intermediate [`Value`] tree, no
    /// per-field allocations — because it runs once per event on the
    /// recording hot path. It shares the number/string writers with the
    /// [`Value`] serializer, so the bytes are identical to building the
    /// equivalent object and calling [`Value::to_json`] (pinned by a test).
    #[allow(clippy::cast_precision_loss)]
    pub fn write_json_line(&self, out: &mut String) {
        use crate::json::{write_num, write_str};
        let (kind, name, t_ns) = match *self {
            Event::SpanEnter { name, t_ns, .. } => ("enter", name, t_ns),
            Event::SpanExit { name, t_ns, .. } => ("exit", name, t_ns),
            Event::Gauge { name, t_ns, .. } => ("gauge", name, t_ns),
        };
        out.push_str("{\"ev\":\"");
        out.push_str(kind);
        out.push_str("\",\"name\":");
        write_str(name, out);
        out.push_str(",\"t_ns\":");
        write_num(t_ns as f64, out);
        match *self {
            Event::SpanEnter {
                tid,
                depth,
                attr,
                sid,
                parent,
                ..
            } => {
                out.push_str(",\"tid\":");
                write_num(tid as f64, out);
                out.push_str(",\"depth\":");
                write_num(f64::from(depth), out);
                out.push_str(",\"sid\":");
                write_num(sid as f64, out);
                if parent != 0 {
                    out.push_str(",\"parent\":");
                    write_num(parent as f64, out);
                }
                if let Some(a) = attr {
                    out.push_str(",\"attr\":");
                    write_num(a, out);
                }
            }
            Event::SpanExit {
                tid,
                depth,
                dur_ns,
                sid,
                ..
            } => {
                out.push_str(",\"tid\":");
                write_num(tid as f64, out);
                out.push_str(",\"depth\":");
                write_num(f64::from(depth), out);
                out.push_str(",\"dur_ns\":");
                write_num(dur_ns as f64, out);
                out.push_str(",\"sid\":");
                write_num(sid as f64, out);
            }
            Event::Gauge { value, .. } => {
                out.push_str(",\"value\":");
                write_num(value, out);
            }
        }
        out.push('}');
    }
}

/// An event sink. Implementations must be cheap and thread-safe: events
/// arrive from any thread, potentially concurrently.
pub trait Recorder: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event<'_>);

    /// Flushes buffered output, if any.
    fn flush(&self) {}

    /// `true` for recorders that drop everything; instrumentation skips all
    /// work (including timestamping) when the installed recorder says so.
    fn is_null(&self) -> bool {
        false
    }
}

/// Discards every event. Installing it (or no recorder at all) keeps the
/// instrumented hot paths on their single-atomic-load fast path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: &Event<'_>) {}

    fn is_null(&self) -> bool {
        true
    }
}

/// Bytes a thread accumulates locally before pushing one contiguous chunk
/// into the shared writer. Sized so deep span nesting in a Monte Carlo
/// point (~100 bytes/event) amortizes the writer lock over hundreds of
/// events without holding noticeable memory per worker.
const THREAD_BUF_FLUSH_BYTES: usize = 32 * 1024;

/// Distinguishes recorder instances across install/uninstall cycles, so a
/// thread-local buffer registered with one recorder is never appended to
/// by a later one.
static NEXT_RECORDER_ID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's buffer for the recorder it last wrote to, keyed by
    /// the recorder id.
    static THREAD_BUF: RefCell<Option<(usize, Arc<Mutex<String>>)>> = const { RefCell::new(None) };
}

/// Appends events to a file, one JSON object per line.
///
/// By default events take a per-thread buffered fast path: each recording
/// thread appends lines to its own small buffer (registered with the
/// recorder on first use) and only takes the shared writer lock when the
/// buffer fills, so deeply nested spans in parallel sweeps no longer
/// serialize every worker on one mutex. Buffers drain on [`Recorder::flush`]
/// and on drop ([`crate::install`]/[`crate::uninstall`] flush the previous
/// recorder), so no event is lost. Within a thread, event order is
/// preserved; across threads the file interleaves at chunk granularity —
/// consumers must order by `(tid, t_ns)`, which `lori-report` does.
#[derive(Debug)]
pub struct JsonlRecorder {
    writer: Mutex<BufWriter<File>>,
    /// `Some((tmp, destination))` when created via
    /// [`JsonlRecorder::create_atomic`]: the stream goes to `tmp` and is
    /// renamed into place when the recorder is dropped.
    rename_on_drop: Option<(std::path::PathBuf, std::path::PathBuf)>,
    /// Keys [`THREAD_BUF`] entries to this instance.
    id: usize,
    /// `false` forces every event through the shared writer lock (the
    /// pre-buffering behaviour, kept measurable for `obs_overhead`).
    buffered: bool,
    /// Every thread buffer ever registered with this recorder, so flush
    /// and drop can drain buffers owned by parked or finished threads.
    thread_bufs: Mutex<Vec<Arc<Mutex<String>>>>,
}

impl JsonlRecorder {
    fn from_file(file: File, rename: Option<(std::path::PathBuf, std::path::PathBuf)>) -> Self {
        JsonlRecorder {
            writer: Mutex::new(BufWriter::new(file)),
            rename_on_drop: rename,
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            buffered: true,
            thread_bufs: Mutex::new(Vec::new()),
        }
    }

    /// Creates (truncates) the events file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::from_file(file, None))
    }

    /// Like [`JsonlRecorder::create`], but the stream is written to a
    /// same-directory temp file and renamed onto `path` when the recorder
    /// is dropped (i.e. after [`crate::uninstall`] releases the last
    /// reference). A previous run's complete event log is never replaced
    /// by a partial one: a killed process leaves only the temp file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create_atomic(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let tmp = crate::fsio::tmp_sibling(&path);
        let file = File::create(&tmp)?;
        Ok(Self::from_file(file, Some((tmp, path))))
    }

    /// Disables the per-thread buffers: every event locks the shared
    /// writer, as before PR 5. Exists so `obs_overhead` can measure the
    /// two paths against each other; production callers should keep the
    /// default.
    #[must_use]
    pub fn unbuffered(mut self) -> Self {
        self.buffered = false;
        self
    }

    /// Drains every registered thread buffer into the shared writer.
    fn drain_thread_bufs(&self) {
        let bufs = self
            .thread_bufs
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for buf in bufs.iter() {
            let chunk = std::mem::take(&mut *buf.lock().unwrap_or_else(PoisonError::into_inner));
            if !chunk.is_empty() {
                let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
                let _ = writer.write_all(chunk.as_bytes());
            }
        }
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        self.drain_thread_bufs();
        let _ = self
            .writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flush();
        if let Some((tmp, path)) = self.rename_on_drop.take() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, event: &Event<'_>) {
        if !self.buffered {
            let line = event.to_json_line();
            let mut writer = self.writer.lock().expect("jsonl writer poisoned");
            let _ = writer.write_all(line.as_bytes());
            let _ = writer.write_all(b"\n");
            return;
        }
        THREAD_BUF.with(|slot| {
            let mut slot = slot.borrow_mut();
            let registered = matches!(slot.as_ref(), Some((id, _)) if *id == self.id);
            if !registered {
                let buf = Arc::new(Mutex::new(String::with_capacity(
                    THREAD_BUF_FLUSH_BYTES + 512,
                )));
                self.thread_bufs
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(Arc::clone(&buf));
                *slot = Some((self.id, buf));
            }
            let buf = &slot.as_ref().expect("registered above").1;
            // Only this thread and flush/drop ever take this lock, so it is
            // uncontended on the hot path; the event serializes straight
            // into the persistent buffer with no per-event allocation.
            let mut buf = buf.lock().unwrap_or_else(PoisonError::into_inner);
            event.write_json_line(&mut buf);
            buf.push('\n');
            if buf.len() >= THREAD_BUF_FLUSH_BYTES {
                let chunk = std::mem::take(&mut *buf);
                drop(buf);
                let mut writer = self.writer.lock().expect("jsonl writer poisoned");
                let _ = writer.write_all(chunk.as_bytes());
            }
        });
    }

    fn flush(&self) {
        self.drain_thread_bufs();
        let _ = self.writer.lock().expect("jsonl writer poisoned").flush();
    }
}

/// Collects event lines in memory; the test and bench recorder.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    lines: Mutex<Vec<String>>,
}

impl MemoryRecorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// All recorded JSON lines, in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    #[must_use]
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("memory recorder poisoned").clone()
    }

    /// Number of recorded events.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.lock().expect("memory recorder poisoned").len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: &Event<'_>) {
        self.lines
            .lock()
            .expect("memory recorder poisoned")
            .push(event.to_json_line());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    /// The direct serializer must emit exactly the bytes the [`Value`]
    /// builder would, for every variant and formatting corner (scientific
    /// notation, integral floats, escapes in names).
    #[test]
    fn direct_serializer_matches_value_builder() {
        let cases = [
            Event::SpanEnter {
                name: "layer.comp\"op",
                t_ns: 2_277_937,
                tid: 3,
                depth: 2,
                attr: Some(1e-6),
                sid: 41,
                parent: 40,
            },
            Event::SpanEnter {
                name: "a",
                t_ns: 0,
                tid: 0,
                depth: 0,
                attr: Some(0.000_000_01),
                sid: 1,
                parent: 0,
            },
            Event::SpanEnter {
                name: "a",
                t_ns: u64::MAX,
                tid: 17,
                depth: 40,
                attr: None,
                sid: u64::MAX >> 12,
                parent: 2,
            },
            Event::SpanExit {
                name: "a.b.c",
                t_ns: 9,
                tid: 1,
                depth: 0,
                dur_ns: 123_456_789,
                sid: 7,
            },
            Event::Gauge {
                name: "g",
                t_ns: 42,
                value: -3.25,
            },
            Event::Gauge {
                name: "g",
                t_ns: 42,
                value: 7.0,
            },
        ];
        for ev in &cases {
            let via_value = {
                let (kind, name, t_ns) = match *ev {
                    Event::SpanEnter { name, t_ns, .. } => ("enter", name, t_ns),
                    Event::SpanExit { name, t_ns, .. } => ("exit", name, t_ns),
                    Event::Gauge { name, t_ns, .. } => ("gauge", name, t_ns),
                };
                let mut members = vec![
                    ("ev".to_owned(), Value::from(kind)),
                    ("name".to_owned(), Value::from(name)),
                    ("t_ns".to_owned(), Value::from(t_ns)),
                ];
                match *ev {
                    Event::SpanEnter {
                        tid,
                        depth,
                        attr,
                        sid,
                        parent,
                        ..
                    } => {
                        members.push(("tid".to_owned(), Value::from(tid)));
                        members.push(("depth".to_owned(), Value::from(u64::from(depth))));
                        members.push(("sid".to_owned(), Value::from(sid)));
                        if parent != 0 {
                            members.push(("parent".to_owned(), Value::from(parent)));
                        }
                        if let Some(a) = attr {
                            members.push(("attr".to_owned(), Value::from(a)));
                        }
                    }
                    Event::SpanExit {
                        tid,
                        depth,
                        dur_ns,
                        sid,
                        ..
                    } => {
                        members.push(("tid".to_owned(), Value::from(tid)));
                        members.push(("depth".to_owned(), Value::from(u64::from(depth))));
                        members.push(("dur_ns".to_owned(), Value::from(dur_ns)));
                        members.push(("sid".to_owned(), Value::from(sid)));
                    }
                    Event::Gauge { value, .. } => {
                        members.push(("value".to_owned(), Value::from(value)));
                    }
                }
                Value::Obj(members).to_json()
            };
            assert_eq!(ev.to_json_line(), via_value, "for {ev:?}");
        }
    }

    #[test]
    fn event_lines_parse_back() {
        let enter = Event::SpanEnter {
            name: "a.b",
            t_ns: 5,
            tid: 1,
            depth: 0,
            attr: Some(1e-6),
            sid: 3,
            parent: 2,
        };
        let v = Value::parse(&enter.to_json_line()).unwrap();
        assert_eq!(v.get("ev").and_then(Value::as_str), Some("enter"));
        assert_eq!(v.get("name").and_then(Value::as_str), Some("a.b"));
        assert_eq!(v.get("attr").and_then(Value::as_f64), Some(1e-6));
        assert_eq!(v.get("sid").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("parent").and_then(Value::as_f64), Some(2.0));

        let root = Event::SpanEnter {
            name: "a",
            t_ns: 5,
            tid: 1,
            depth: 0,
            attr: None,
            sid: 1,
            parent: 0,
        };
        let v = Value::parse(&root.to_json_line()).unwrap();
        assert!(v.get("parent").is_none(), "parent omitted for roots");

        let exit = Event::SpanExit {
            name: "a.b",
            t_ns: 9,
            tid: 1,
            depth: 0,
            dur_ns: 4,
            sid: 3,
        };
        let v = Value::parse(&exit.to_json_line()).unwrap();
        assert_eq!(v.get("dur_ns").and_then(Value::as_f64), Some(4.0));
        assert_eq!(v.get("sid").and_then(Value::as_f64), Some(3.0));
    }

    #[test]
    fn null_recorder_is_null() {
        assert!(NullRecorder.is_null());
        assert!(!MemoryRecorder::new().is_null());
    }

    fn gauge_event(name: &'static str, t_ns: u64) -> Event<'static> {
        Event::Gauge {
            name,
            t_ns,
            value: 1.0,
        }
    }

    #[test]
    fn buffered_jsonl_preserves_per_thread_order_and_loses_nothing() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("lori-obs-buffered-{}.jsonl", std::process::id()));
        let rec = std::sync::Arc::new(JsonlRecorder::create(&path).unwrap());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let rec = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        rec.record(&Event::Gauge {
                            name: ["g0", "g1", "g2", "g3"][t],
                            t_ns: i,
                            value: 0.0,
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        rec.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut counts = [0u64; 4];
        let mut last_t = [None::<f64>; 4];
        for line in text.lines() {
            let v = Value::parse(line).expect("valid event line");
            let name = v.get("name").and_then(Value::as_str).unwrap();
            let idx = ["g0", "g1", "g2", "g3"]
                .iter()
                .position(|&n| n == name)
                .unwrap();
            counts[idx] += 1;
            let t = v.get("t_ns").and_then(Value::as_f64).unwrap();
            if let Some(prev) = last_t[idx] {
                assert!(t > prev, "per-thread order violated for {name}");
            }
            last_t[idx] = Some(t);
        }
        assert_eq!(counts, [500; 4], "no event may be dropped");
        drop(rec);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn buffered_jsonl_drains_on_drop() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("lori-obs-drop-{}.jsonl", std::process::id()));
        let rec = JsonlRecorder::create(&path).unwrap();
        rec.record(&gauge_event("g.drop", 1));
        drop(rec); // well under the flush threshold: only drop drains it
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("g.drop"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unbuffered_jsonl_writes_through() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("lori-obs-unbuf-{}.jsonl", std::process::id()));
        let rec = JsonlRecorder::create(&path).unwrap().unbuffered();
        rec.record(&gauge_event("g.unbuf", 1));
        rec.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("g.unbuf"));
        drop(rec);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn memory_recorder_collects() {
        let rec = MemoryRecorder::new();
        assert!(rec.is_empty());
        rec.record(&Event::Gauge {
            name: "g",
            t_ns: 1,
            value: 2.0,
        });
        assert_eq!(rec.len(), 1);
        assert!(rec.lines()[0].contains("\"gauge\""));
    }
}
