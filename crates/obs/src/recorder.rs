//! Event sinks: the [`Recorder`] trait and its implementations.
//!
//! A recorder receives every span and gauge event from the instrumented
//! code. Exactly one recorder is installed globally (see
//! [`crate::install`]); when none is installed — or the [`NullRecorder`]
//! is — instrumentation short-circuits on a single relaxed atomic load, so
//! disabled tracing costs nothing measurable on hot paths.

use crate::json::Value;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// One observability event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event<'a> {
    /// A span opened.
    SpanEnter {
        /// Static span name, dot-separated (`layer.component.op`).
        name: &'a str,
        /// Monotonic nanoseconds since the recorder was installed.
        t_ns: u64,
        /// Small per-process thread index (not the OS thread id).
        tid: u64,
        /// Nesting depth on this thread (0 = top level).
        depth: u32,
        /// Optional numeric attribute (e.g. the sweep's error probability).
        attr: Option<f64>,
    },
    /// A span closed.
    SpanExit {
        /// Static span name, matching the corresponding enter.
        name: &'a str,
        /// Monotonic nanoseconds since the recorder was installed.
        t_ns: u64,
        /// Small per-process thread index.
        tid: u64,
        /// Nesting depth on this thread.
        depth: u32,
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// A gauge was set.
    Gauge {
        /// Static gauge name.
        name: &'a str,
        /// Monotonic nanoseconds since the recorder was installed.
        t_ns: u64,
        /// New gauge value.
        value: f64,
    },
}

impl Event<'_> {
    /// Serializes the event as one JSON line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let obj = match *self {
            Event::SpanEnter {
                name,
                t_ns,
                tid,
                depth,
                attr,
            } => {
                let mut members = vec![
                    ("ev".to_owned(), Value::from("enter")),
                    ("name".to_owned(), Value::from(name)),
                    ("t_ns".to_owned(), Value::from(t_ns)),
                    ("tid".to_owned(), Value::from(tid)),
                    ("depth".to_owned(), Value::from(u64::from(depth))),
                ];
                if let Some(a) = attr {
                    members.push(("attr".to_owned(), Value::from(a)));
                }
                Value::Obj(members)
            }
            Event::SpanExit {
                name,
                t_ns,
                tid,
                depth,
                dur_ns,
            } => Value::Obj(vec![
                ("ev".to_owned(), Value::from("exit")),
                ("name".to_owned(), Value::from(name)),
                ("t_ns".to_owned(), Value::from(t_ns)),
                ("tid".to_owned(), Value::from(tid)),
                ("depth".to_owned(), Value::from(u64::from(depth))),
                ("dur_ns".to_owned(), Value::from(dur_ns)),
            ]),
            Event::Gauge { name, t_ns, value } => Value::Obj(vec![
                ("ev".to_owned(), Value::from("gauge")),
                ("name".to_owned(), Value::from(name)),
                ("t_ns".to_owned(), Value::from(t_ns)),
                ("value".to_owned(), Value::from(value)),
            ]),
        };
        obj.to_json()
    }
}

/// An event sink. Implementations must be cheap and thread-safe: events
/// arrive from any thread, potentially concurrently.
pub trait Recorder: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event<'_>);

    /// Flushes buffered output, if any.
    fn flush(&self) {}

    /// `true` for recorders that drop everything; instrumentation skips all
    /// work (including timestamping) when the installed recorder says so.
    fn is_null(&self) -> bool {
        false
    }
}

/// Discards every event. Installing it (or no recorder at all) keeps the
/// instrumented hot paths on their single-atomic-load fast path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: &Event<'_>) {}

    fn is_null(&self) -> bool {
        true
    }
}

/// Appends events to a file, one JSON object per line.
#[derive(Debug)]
pub struct JsonlRecorder {
    writer: Mutex<BufWriter<File>>,
    /// `Some((tmp, destination))` when created via
    /// [`JsonlRecorder::create_atomic`]: the stream goes to `tmp` and is
    /// renamed into place when the recorder is dropped.
    rename_on_drop: Option<(std::path::PathBuf, std::path::PathBuf)>,
}

impl JsonlRecorder {
    /// Creates (truncates) the events file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlRecorder {
            writer: Mutex::new(BufWriter::new(file)),
            rename_on_drop: None,
        })
    }

    /// Like [`JsonlRecorder::create`], but the stream is written to a
    /// same-directory temp file and renamed onto `path` when the recorder
    /// is dropped (i.e. after [`crate::uninstall`] releases the last
    /// reference). A previous run's complete event log is never replaced
    /// by a partial one: a killed process leaves only the temp file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create_atomic(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let tmp = crate::fsio::tmp_sibling(&path);
        let file = File::create(&tmp)?;
        Ok(JsonlRecorder {
            writer: Mutex::new(BufWriter::new(file)),
            rename_on_drop: Some((tmp, path)),
        })
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        let _ = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .flush();
        if let Some((tmp, path)) = self.rename_on_drop.take() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, event: &Event<'_>) {
        let line = event.to_json_line();
        let mut writer = self.writer.lock().expect("jsonl writer poisoned");
        let _ = writer.write_all(line.as_bytes());
        let _ = writer.write_all(b"\n");
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl writer poisoned").flush();
    }
}

/// Collects event lines in memory; the test and bench recorder.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    lines: Mutex<Vec<String>>,
}

impl MemoryRecorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// All recorded JSON lines, in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    #[must_use]
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("memory recorder poisoned").clone()
    }

    /// Number of recorded events.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.lock().expect("memory recorder poisoned").len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: &Event<'_>) {
        self.lines
            .lock()
            .expect("memory recorder poisoned")
            .push(event.to_json_line());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_lines_parse_back() {
        let enter = Event::SpanEnter {
            name: "a.b",
            t_ns: 5,
            tid: 1,
            depth: 0,
            attr: Some(1e-6),
        };
        let v = Value::parse(&enter.to_json_line()).unwrap();
        assert_eq!(v.get("ev").and_then(Value::as_str), Some("enter"));
        assert_eq!(v.get("name").and_then(Value::as_str), Some("a.b"));
        assert_eq!(v.get("attr").and_then(Value::as_f64), Some(1e-6));

        let exit = Event::SpanExit {
            name: "a.b",
            t_ns: 9,
            tid: 1,
            depth: 0,
            dur_ns: 4,
        };
        let v = Value::parse(&exit.to_json_line()).unwrap();
        assert_eq!(v.get("dur_ns").and_then(Value::as_f64), Some(4.0));
    }

    #[test]
    fn null_recorder_is_null() {
        assert!(NullRecorder.is_null());
        assert!(!MemoryRecorder::new().is_null());
    }

    #[test]
    fn memory_recorder_collects() {
        let rec = MemoryRecorder::new();
        assert!(rec.is_empty());
        rec.record(&Event::Gauge {
            name: "g",
            t_ns: 1,
            value: 2.0,
        });
        assert_eq!(rec.len(), 1);
        assert!(rec.lines()[0].contains("\"gauge\""));
    }
}
