//! A deliberately small JSON value model, writer, and parser.
//!
//! `lori-obs` must not pull external dependencies, so events, manifests, and
//! the tests that round-trip them share this ~200-line implementation. It
//! supports the full JSON grammar except exotic number forms; non-finite
//! floats serialize as `null` (JSON has no NaN/infinity).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Appends compact JSON to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(*n, out),
            Value::Str(s) => write_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        #[allow(clippy::cast_precision_loss)]
        Value::Num(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// Writes a number; non-finite values become `null`. Shared with the
/// event recorder's direct serializer so event lines are byte-identical
/// whether built through [`Value`] or streamed.
pub(crate) fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        #[allow(clippy::cast_possible_truncation)]
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Writes a quoted, escaped JSON string. Shared with the event recorder's
/// direct serializer.
pub(crate) fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(format!("unterminated string at byte {pos}")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("truncated \\u escape at byte {pos}"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            // Raw control characters are invalid in JSON strings, and a raw
            // newline would silently split a JSONL event line — reject both.
            Some(&b) if b < 0x20 => {
                return Err(format!("unescaped control character at byte {pos}"));
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))?;
    // JSON has no NaN or infinity; `str::parse` would happily accept
    // "1e999" as +inf, which must not round-trip into artifacts.
    if !n.is_finite() {
        return Err(format!("non-finite number '{text}' at byte {start}"));
    }
    Ok(Value::Num(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Obj(vec![
            ("name".into(), Value::from("exp-fig5")),
            ("seed".into(), Value::from(42u64)),
            ("wall_ms".into(), Value::from(12.5)),
            ("ok".into(), Value::from(true)),
            (
                "phases".into(),
                Value::Arr(vec![Value::Obj(vec![
                    ("name".into(), Value::from("sweep")),
                    ("wall_ms".into(), Value::from(10.25)),
                ])]),
            ),
            ("none".into(), Value::Null),
        ]);
        let text = v.to_json();
        let back = Value::parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::from("a\"b\\c\nd\te\u{1}f");
        let back = Value::parse(&v.to_json()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integers_have_no_fraction() {
        assert_eq!(Value::from(3.0).to_json(), "3");
        assert_eq!(Value::from(3.5).to_json(), "3.5");
        assert_eq!(Value::from(u64::from(u32::MAX)).to_json(), "4294967295");
    }

    #[test]
    fn non_finite_serializes_null() {
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("12 34").is_err());
        assert!(Value::parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let v = Value::parse(r#"{"a": 1.5, "b": "x", "c": [true]}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(Value::as_arr).map(<[Value]>::len),
            Some(1)
        );
        assert_eq!(
            v.get("c").unwrap().as_arr().unwrap()[0].as_bool(),
            Some(true)
        );
        assert!(v.get("missing").is_none());
    }
}
