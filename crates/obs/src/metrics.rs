//! The metrics registry: counters, gauges, and fixed-bucket histograms
//! keyed by static names.
//!
//! Metrics are independent of the event recorder: they always aggregate
//! (lock-free atomics on the hot path; the registry lock is only taken on
//! first registration and at snapshot time), so a run can report totals in
//! its manifest even when event recording is disabled. Gauge sets
//! additionally emit a [`crate::Event::Gauge`] event when recording is on,
//! because gauges (e.g. per-epoch training loss) are low-frequency and
//! their trajectory is the interesting part.

use crate::recorder::Event;
use crate::{epoch_ns, recording, with_recorder};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    pub fn incr(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
    name: OnceLock<&'static str>,
}

impl Gauge {
    /// Sets the gauge; emits a gauge event when recording is enabled and a
    /// flight-recorder entry when the flight recorder is armed.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
        if crate::active() {
            if let Some(name) = self.name.get() {
                let t_ns = epoch_ns();
                if recording() {
                    with_recorder(|rec| {
                        rec.record(&Event::Gauge { name, t_ns, value });
                    });
                }
                if crate::flight::enabled() {
                    crate::flight::record_gauge(name, t_ns, crate::span::current_tid(), value);
                }
            }
        }
    }

    /// Current value (0.0 before the first set).
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram.
///
/// For edges `e0 < e1 < … < e(n-1)` there are `n + 1` buckets:
/// an underflow bucket for `v < e0`, interior buckets `[e_i, e_(i+1))`, and
/// an overflow bucket for `v ≥ e(n-1)`. Quantiles are estimated by linear
/// interpolation inside the containing bucket (underflow and overflow
/// report the nearest edge), so accuracy is set by bucket granularity.
#[derive(Debug)]
pub struct Histogram {
    edges: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Builds a histogram over the given bucket edges.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two edges are given or the edges are not
    /// strictly increasing and finite.
    #[must_use]
    pub fn new(edges: &[f64]) -> Self {
        assert!(edges.len() >= 2, "histogram needs at least two edges");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1] && w[1].is_finite()),
            "histogram edges must be strictly increasing and finite"
        );
        Histogram {
            edges: edges.to_vec(),
            buckets: (0..=edges.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Log-spaced edges from `lo` to `hi` (both > 0), `per_decade` buckets
    /// per factor of ten. Handy default for duration-like metrics.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `per_decade > 0`.
    #[must_use]
    pub fn log_edges(lo: f64, hi: f64, per_decade: usize) -> Vec<f64> {
        assert!(lo > 0.0 && hi > lo && per_decade > 0, "bad log edge spec");
        let mut edges = Vec::new();
        let decades = (hi / lo).log10();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let n = (decades * per_decade as f64).ceil() as usize;
        for i in 0..=n {
            edges.push(lo * 10f64.powf(i as f64 / per_decade as f64));
        }
        edges
    }

    /// Records one observation. Non-finite values are dropped.
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self.bucket_index(v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS loop: contention is rare (hot paths observe thread-locally
        // infrequent values), so this stays cheap.
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Bucket index for `v`: 0 is underflow, `edges.len()` is overflow.
    #[must_use]
    pub fn bucket_index(&self, v: f64) -> usize {
        self.edges.partition_point(|&e| e <= v)
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimated quantile `q` in `[0, 1]`; `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let total = self.count();
        if total == 0 {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        let target = q * total as f64;
        let mut cum = 0.0f64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            #[allow(clippy::cast_precision_loss)]
            let n = bucket.load(Ordering::Relaxed) as f64;
            if n == 0.0 {
                continue;
            }
            if cum + n >= target {
                let frac = ((target - cum) / n).clamp(0.0, 1.0);
                return Some(match (i.checked_sub(1), self.edges.get(i)) {
                    // Underflow: everything below the first edge.
                    (None, _) => self.edges[0],
                    // Interior bucket [edges[i-1], edges[i]).
                    (Some(lo), Some(&hi)) => {
                        let lo = self.edges[lo];
                        lo + (hi - lo) * frac
                    }
                    // Overflow: everything at or above the last edge.
                    (Some(_), None) => *self.edges.last().expect("validated edges"),
                });
            }
            cum += n;
        }
        Some(*self.edges.last().expect("validated edges"))
    }

    /// Raw bucket counts (underflow, interior…, overflow).
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// A point-in-time reading of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge last value.
    Gauge(f64),
    /// Histogram summary.
    Histogram {
        /// Observation count.
        count: u64,
        /// Observation sum.
        sum: f64,
        /// Estimated median.
        p50: f64,
        /// Estimated 95th percentile.
        p95: f64,
        /// Estimated 99th percentile.
        p99: f64,
    },
}

/// A named metric reading.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// The metric's registration name.
    pub name: &'static str,
    /// Its value at snapshot time.
    pub value: MetricValue,
}

/// The process-wide metric registry.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl Registry {
    /// Gets or creates the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().expect("registry poisoned").get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .expect("registry poisoned")
                .entry(name)
                .or_default(),
        )
    }

    /// Gets or creates the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().expect("registry poisoned").get(name) {
            return Arc::clone(g);
        }
        let arc = Arc::clone(
            self.gauges
                .write()
                .expect("registry poisoned")
                .entry(name)
                .or_default(),
        );
        let _ = arc.name.set(name);
        arc
    }

    /// Gets or creates the histogram `name` with the given bucket `edges`.
    /// Edges are fixed by whichever call registers first.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned or the edges are invalid.
    pub fn histogram(&self, name: &'static str, edges: &[f64]) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().expect("registry poisoned").get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .expect("registry poisoned")
                .entry(name)
                .or_insert_with(|| Arc::new(Histogram::new(edges))),
        )
    }

    /// Reads every registered metric, sorted by name within each kind.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let mut out = Vec::new();
        for (name, c) in self.counters.read().expect("registry poisoned").iter() {
            out.push(MetricSnapshot {
                name,
                value: MetricValue::Counter(c.get()),
            });
        }
        for (name, g) in self.gauges.read().expect("registry poisoned").iter() {
            out.push(MetricSnapshot {
                name,
                value: MetricValue::Gauge(g.get()),
            });
        }
        for (name, h) in self.histograms.read().expect("registry poisoned").iter() {
            out.push(MetricSnapshot {
                name,
                value: MetricValue::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    p50: h.quantile(0.50).unwrap_or(0.0),
                    p95: h.quantile(0.95).unwrap_or(0.0),
                    p99: h.quantile(0.99).unwrap_or(0.0),
                },
            });
        }
        out
    }

    /// Drops every registered metric (test isolation helper).
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    pub fn clear(&self) {
        self.counters.write().expect("registry poisoned").clear();
        self.gauges.write().expect("registry poisoned").clear();
        self.histograms.write().expect("registry poisoned").clear();
    }
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Shorthand: the global counter `name`.
pub fn counter(name: &'static str) -> Arc<Counter> {
    registry().counter(name)
}

/// Shorthand: the global gauge `name`.
pub fn gauge(name: &'static str) -> Arc<Gauge> {
    registry().gauge(name)
}

/// Shorthand: the global histogram `name`.
pub fn histogram(name: &'static str, edges: &[f64]) -> Arc<Histogram> {
    registry().histogram(name, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::default();
        c.incr(3);
        c.incr(4);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn gauge_last_value_wins() {
        let g = Gauge::default();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let h = Histogram::new(&[0.0, 1.0, 10.0]);
        // Underflow: strictly below the first edge.
        assert_eq!(h.bucket_index(-0.5), 0);
        // Edges belong to the bucket they open.
        assert_eq!(h.bucket_index(0.0), 1);
        assert_eq!(h.bucket_index(0.999), 1);
        assert_eq!(h.bucket_index(1.0), 2);
        assert_eq!(h.bucket_index(9.999), 2);
        // The last edge opens the overflow bucket.
        assert_eq!(h.bucket_index(10.0), 3);
        assert_eq!(h.bucket_index(1e9), 3);
    }

    #[test]
    fn histogram_counts_and_sum() {
        let h = Histogram::new(&[0.0, 1.0, 10.0]);
        for v in [-1.0, 0.5, 0.6, 5.0, 20.0, f64::NAN] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5, "NaN must be dropped");
        assert_eq!(h.bucket_counts(), vec![1, 2, 1, 1]);
        assert!((h.sum() - 25.1).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        // 100 observations spread uniformly over [0, 10) in a single-decade
        // histogram with 10 interior buckets.
        let edges: Vec<f64> = (0..=10).map(f64::from).collect();
        let h = Histogram::new(&edges);
        for i in 0..100 {
            h.observe(f64::from(i) / 10.0);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((p50 - 5.0).abs() < 0.5, "p50 {p50}");
        assert!((p95 - 9.5).abs() < 0.5, "p95 {p95}");
        assert!((p99 - 9.9).abs() < 0.5, "p99 {p99}");
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn histogram_quantile_edge_cases() {
        let h = Histogram::new(&[0.0, 1.0]);
        assert!(h.quantile(0.5).is_none(), "empty histogram");
        h.observe(-5.0); // underflow
        assert_eq!(h.quantile(0.5), Some(0.0), "underflow clamps to first edge");
        let h2 = Histogram::new(&[0.0, 1.0]);
        h2.observe(100.0); // overflow
        assert_eq!(h2.quantile(0.5), Some(1.0), "overflow clamps to last edge");
    }

    #[test]
    fn histogram_quantile_single_observation_and_extreme_q() {
        let h = Histogram::new(&[0.0, 1.0, 2.0]);
        assert!(h.quantile(0.0).is_none(), "q=0 on empty is still None");
        assert!(h.quantile(1.0).is_none(), "q=1 on empty is still None");

        h.observe(0.5); // single observation in the first interior bucket
        assert_eq!(h.quantile(0.0), Some(0.0), "q=0 is the bucket's low edge");
        assert_eq!(h.quantile(0.5), Some(0.5), "q=0.5 interpolates mid-bucket");
        assert_eq!(h.quantile(1.0), Some(1.0), "q=1 is the bucket's high edge");

        // With everything beyond the last edge, every quantile is the last
        // edge — the histogram cannot resolve past its range.
        let h2 = Histogram::new(&[0.0, 1.0]);
        h2.observe(1e9);
        assert_eq!(h2.quantile(0.0), Some(1.0));
        assert_eq!(h2.quantile(1.0), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn histogram_quantile_rejects_out_of_range_q() {
        let h = Histogram::new(&[0.0, 1.0]);
        h.observe(0.5);
        let _ = h.quantile(1.5);
    }

    #[test]
    fn log_edges_shape() {
        let e = Histogram::log_edges(1.0, 1000.0, 3);
        assert!((e[0] - 1.0).abs() < 1e-12);
        assert!(e.last().unwrap() >= &1000.0);
        assert!(e.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(e.len(), 10);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_edges_panic() {
        let _ = Histogram::new(&[1.0, 0.5]);
    }

    #[test]
    fn registry_dedups_by_name() {
        let r = Registry::default();
        let a = r.counter("unit.same");
        let b = r.counter("unit.same");
        a.incr(1);
        assert_eq!(b.get(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].value, MetricValue::Counter(1));
    }

    #[test]
    fn registry_snapshot_covers_kinds() {
        let r = Registry::default();
        r.counter("unit.c").incr(2);
        r.gauge("unit.g").set(1.5);
        let h = r.histogram("unit.h", &[0.0, 1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(matches!(
            snap.iter().find(|s| s.name == "unit.h").unwrap().value,
            MetricValue::Histogram { count: 2, .. }
        ));
        r.clear();
        assert!(r.snapshot().is_empty());
    }
}
