//! Crash-safe file output: write to a same-directory temp file, then
//! atomically rename over the destination. A reader never observes a
//! half-written artifact, and a killed process leaves at most a stray
//! `.{name}.tmp.{pid}` file behind.

use std::io::Write;
use std::path::{Path, PathBuf};

/// The temp sibling used for atomic replacement of `path`. Same directory,
/// so the final `rename` stays within one filesystem.
pub(crate) fn tmp_sibling(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map_or_else(|| "out".to_owned(), |n| n.to_string_lossy().into_owned());
    path.with_file_name(format!(".{name}.tmp.{}", std::process::id()))
}

/// Writes `bytes` to `path` atomically (temp file + rename).
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = tmp_sibling(path);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_replaces_without_droppings() {
        let dir = std::env::temp_dir().join(format!("lori-obs-fsio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "no temp files left: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
