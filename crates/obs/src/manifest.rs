//! Run manifests: one JSON document per experiment run, written next to
//! the results, capturing everything needed to reproduce and sanity-check
//! the run — seed, config summary, code version, wall time, per-phase
//! breakdown, and a snapshot of every registered metric.

use crate::json::Value;
use crate::metrics::{MetricSnapshot, MetricValue};
use std::path::Path;
use std::process::Command;
use std::time::Instant;

/// One timed phase of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRecord {
    /// Phase label (e.g. `"sweep"`, `"train"`).
    pub name: String,
    /// Phase wall time in milliseconds.
    pub wall_ms: f64,
}

/// A reproducibility manifest for one experiment run.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Experiment name (e.g. `"exp-fig5"`).
    pub name: String,
    /// Code version (`git describe`-style when available).
    pub version: String,
    /// Master RNG seed, when the run is seeded.
    pub seed: Option<u64>,
    /// Flat config summary as `(key, value)` pairs, insertion-ordered.
    pub config: Vec<(String, Value)>,
    /// Timed phases in execution order.
    pub phases: Vec<PhaseRecord>,
    /// Total wall time in milliseconds.
    pub wall_ms: f64,
    /// Metric readings at the end of the run.
    pub metrics: Vec<MetricSnapshot>,
    start: Instant,
}

impl RunManifest {
    /// Starts a manifest for `name`; the wall clock starts now.
    #[must_use]
    pub fn start(name: &str) -> Self {
        RunManifest {
            name: name.to_owned(),
            version: version_string(),
            seed: None,
            config: Vec::new(),
            phases: Vec::new(),
            wall_ms: 0.0,
            metrics: Vec::new(),
            start: Instant::now(),
        }
    }

    /// Records the master seed.
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = Some(seed);
    }

    /// Adds one config entry.
    pub fn config(&mut self, key: &str, value: impl Into<Value>) {
        self.config.push((key.to_owned(), value.into()));
    }

    /// Appends a completed phase.
    pub fn push_phase(&mut self, name: &str, wall_ms: f64) {
        self.phases.push(PhaseRecord {
            name: name.to_owned(),
            wall_ms,
        });
    }

    /// Sum of recorded phase wall times, in milliseconds.
    #[must_use]
    pub fn phase_total_ms(&self) -> f64 {
        self.phases.iter().map(|p| p.wall_ms).sum()
    }

    /// Stamps the total wall time and captures `metrics`.
    pub fn finish(&mut self, metrics: Vec<MetricSnapshot>) {
        self.wall_ms = self.start.elapsed().as_secs_f64() * 1e3;
        self.metrics = metrics;
    }

    /// Serializes the manifest to a JSON value.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut members = vec![
            ("name".to_owned(), Value::from(self.name.as_str())),
            ("version".to_owned(), Value::from(self.version.as_str())),
        ];
        members.push((
            "seed".to_owned(),
            self.seed.map_or(Value::Null, Value::from),
        ));
        members.push(("config".to_owned(), Value::Obj(self.config.clone())));
        members.push((
            "phases".to_owned(),
            Value::Arr(
                self.phases
                    .iter()
                    .map(|p| {
                        Value::Obj(vec![
                            ("name".to_owned(), Value::from(p.name.as_str())),
                            ("wall_ms".to_owned(), Value::from(p.wall_ms)),
                        ])
                    })
                    .collect(),
            ),
        ));
        members.push(("wall_ms".to_owned(), Value::from(self.wall_ms)));
        members.push((
            "metrics".to_owned(),
            Value::Obj(self.metrics.iter().map(metric_member).collect()),
        ));
        Value::Obj(members)
    }

    /// Serializes to pretty-enough compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Writes the manifest file atomically (temp file + rename), so a
    /// crash mid-write never leaves a truncated manifest and a concurrent
    /// reader never observes a partial one.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        crate::fsio::atomic_write(path.as_ref(), (self.to_json() + "\n").as_bytes())
    }
}

fn metric_member(snap: &MetricSnapshot) -> (String, Value) {
    let value = match snap.value {
        MetricValue::Counter(n) => Value::from(n),
        MetricValue::Gauge(v) => Value::from(v),
        MetricValue::Histogram {
            count,
            sum,
            p50,
            p95,
            p99,
        } => Value::Obj(vec![
            ("count".to_owned(), Value::from(count)),
            ("sum".to_owned(), Value::from(sum)),
            ("p50".to_owned(), Value::from(p50)),
            ("p95".to_owned(), Value::from(p95)),
            ("p99".to_owned(), Value::from(p99)),
        ]),
    };
    (snap.name.to_owned(), value)
}

/// A `git describe`-style version: tag/commit plus a `-dirty` suffix when
/// the worktree has local modifications. Falls back to the crate version
/// when git is unavailable (e.g. a source tarball).
#[must_use]
pub fn version_string() -> String {
    let describe = git(&["describe", "--tags", "--always", "--dirty"])
        .or_else(|| git(&["rev-parse", "--short", "HEAD"]));
    match describe {
        Some(v) if !v.is_empty() => v,
        _ => format!("v{}+nogit", env!("CARGO_PKG_VERSION")),
    }
}

fn git(args: &[&str]) -> Option<String> {
    let out = Command::new("git").args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let text = text.trim();
    (!text.is_empty()).then(|| text.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrips_through_json() {
        let mut m = RunManifest::start("exp-unit");
        m.set_seed(42);
        m.config("runs", Value::from(100u64));
        m.config("mitigation", "checkpointing");
        m.push_phase("sweep", 12.5);
        m.push_phase("report", 0.5);
        m.finish(Vec::new());
        let v = Value::parse(&m.to_json()).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("exp-unit"));
        assert_eq!(v.get("seed").and_then(Value::as_f64), Some(42.0));
        assert_eq!(
            v.get("config")
                .and_then(|c| c.get("mitigation"))
                .and_then(Value::as_str),
            Some("checkpointing")
        );
        let phases = v.get("phases").and_then(Value::as_arr).unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].get("wall_ms").and_then(Value::as_f64), Some(12.5));
        assert!(v.get("wall_ms").and_then(Value::as_f64).unwrap() >= 0.0);
        assert!((m.phase_total_ms() - 13.0).abs() < 1e-12);
    }

    #[test]
    fn unseeded_manifest_has_null_seed() {
        let mut m = RunManifest::start("exp-unit2");
        m.finish(Vec::new());
        let v = Value::parse(&m.to_json()).unwrap();
        assert_eq!(v.get("seed"), Some(&Value::Null));
    }

    #[test]
    fn version_string_is_nonempty() {
        assert!(!version_string().is_empty());
    }
}
