//! The `LORI_PROGRESS` heartbeat: periodic progress lines for long runs.
//!
//! A multi-minute sweep that prints nothing until its manifest appears is
//! indistinguishable from a hung one. With `LORI_PROGRESS=stderr` set,
//! instrumented loops emit heartbeat lines like
//!
//! ```text
//! progress: sweep 412/1300 (31.7%) elapsed 12.4s eta 26.7s
//! ```
//!
//! at most once per interval (default 1000 ms, `LORI_PROGRESS_MS`
//! overrides), plus one final line when the phase completes. Heartbeats go
//! to stderr so they never contaminate stdout tables or piped output, and
//! the ETA is the naive linear extrapolation — honest enough for "is it
//! moving and roughly how long", which is all a heartbeat owes you.
//!
//! Disabled (the default), [`Progress::tick`] is one relaxed atomic add
//! and a branch — safe to leave in per-sample inner loops.
//!
//! Every live [`Progress`] also registers itself (weakly) with a global
//! registry, so the telemetry endpoint can report sweep progress over HTTP
//! via [`snapshot`] regardless of whether stderr heartbeats are on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, Weak};
use std::time::Instant;

/// Default milliseconds between heartbeat lines.
const DEFAULT_INTERVAL_MS: u64 = 1000;

/// Live progress trackers, held weakly: a tracker leaves the registry when
/// its phase completes (the `Progress` drops).
static REGISTRY: Mutex<Vec<Weak<Inner>>> = Mutex::new(Vec::new());

/// `true` when `LORI_PROGRESS` asks for stderr heartbeats.
#[must_use]
pub fn progress_enabled() -> bool {
    matches!(
        std::env::var("LORI_PROGRESS").as_deref(),
        Ok("stderr" | "1" | "on")
    )
}

fn interval_ms() -> u64 {
    std::env::var("LORI_PROGRESS_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(DEFAULT_INTERVAL_MS)
}

/// The heartbeat-line prefix attributing output to a procpool worker slot:
/// `"[w3] "` for worker slot 3, empty for supervisors and single-process
/// runs. Pure so the formatting is testable without env mutation.
fn worker_prefix_from(role: Option<&str>, worker: Option<&str>) -> String {
    match (role, worker) {
        (Some("worker"), Some(slot)) if !slot.is_empty() => format!("[w{slot}] "),
        _ => String::new(),
    }
}

/// Reads the worker-slot prefix from the procpool exec environment.
fn worker_prefix() -> String {
    worker_prefix_from(
        std::env::var("LORI_PROCPOOL_ROLE").ok().as_deref(),
        std::env::var("LORI_PROCPOOL_WORKER").ok().as_deref(),
    )
}

#[derive(Debug)]
struct Inner {
    phase: &'static str,
    total: u64,
    done: AtomicU64,
    /// Elapsed-millisecond threshold the next heartbeat may print at.
    next_print_ms: AtomicU64,
    interval_ms: u64,
    t0: Instant,
    enabled: bool,
    /// `"[w<k>] "` under procpool workers so interleaved stderr heartbeats
    /// are attributable; empty otherwise.
    prefix: String,
}

/// A point-in-time reading of one live progress tracker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Phase label passed to [`Progress::start`].
    pub phase: &'static str,
    /// Units completed so far.
    pub done: u64,
    /// Total units (0 = unknown).
    pub total: u64,
    /// Milliseconds since the phase started.
    pub elapsed_ms: u64,
}

/// Reads every live tracker, in start order. Completed phases (dropped
/// trackers) are pruned as a side effect.
#[must_use]
pub fn snapshot() -> Vec<ProgressSnapshot> {
    let mut registry = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    registry.retain(|w| w.strong_count() > 0);
    registry
        .iter()
        .filter_map(Weak::upgrade)
        .map(|inner| ProgressSnapshot {
            phase: inner.phase,
            done: inner.done.load(Ordering::Relaxed),
            total: inner.total,
            elapsed_ms: u64::try_from(inner.t0.elapsed().as_millis()).unwrap_or(u64::MAX),
        })
        .collect()
}

/// A heartbeat for one phase: share by reference across worker threads,
/// call [`Progress::tick`] per completed unit. Emits nothing unless
/// `LORI_PROGRESS=stderr` is set; always emits a final summary line (when
/// enabled) on drop. Visible to the telemetry endpoint through
/// [`snapshot`] for its whole lifetime either way.
#[derive(Debug)]
pub struct Progress {
    inner: Arc<Inner>,
}

impl Progress {
    /// Starts a heartbeat for `phase` with a known unit count (0 when the
    /// total is unknown; the line then omits percentage and ETA).
    #[must_use]
    pub fn start(phase: &'static str, total: u64) -> Self {
        let interval_ms = interval_ms();
        let inner = Arc::new(Inner {
            phase,
            total,
            done: AtomicU64::new(0),
            next_print_ms: AtomicU64::new(interval_ms),
            interval_ms,
            t0: Instant::now(),
            enabled: progress_enabled(),
            prefix: worker_prefix(),
        });
        let mut registry = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
        registry.retain(|w| w.strong_count() > 0);
        registry.push(Arc::downgrade(&inner));
        drop(registry);
        Progress { inner }
    }

    /// Records one completed unit; prints a heartbeat when the interval
    /// has elapsed.
    pub fn tick(&self) {
        self.add(1);
    }

    /// Records `n` completed units.
    pub fn add(&self, n: u64) {
        let inner = &self.inner;
        let done = inner.done.fetch_add(n, Ordering::Relaxed) + n;
        if !inner.enabled {
            return;
        }
        let elapsed_ms = u64::try_from(inner.t0.elapsed().as_millis()).unwrap_or(u64::MAX);
        let due = inner.next_print_ms.load(Ordering::Relaxed);
        if elapsed_ms < due {
            return;
        }
        // One thread wins the right to print this interval; the rest skip.
        if inner
            .next_print_ms
            .compare_exchange(
                due,
                elapsed_ms + inner.interval_ms,
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            eprintln!("{}", inner.line(done, elapsed_ms));
        }
    }

    /// Units completed so far.
    #[must_use]
    pub fn done(&self) -> u64 {
        self.inner.done.load(Ordering::Relaxed)
    }

    #[cfg(test)]
    fn enabled(&self) -> bool {
        self.inner.enabled
    }

    #[cfg(test)]
    fn line(&self, done: u64, elapsed_ms: u64) -> String {
        self.inner.line(done, elapsed_ms)
    }
}

impl Inner {
    #[allow(clippy::cast_precision_loss)]
    fn line(&self, done: u64, elapsed_ms: u64) -> String {
        let elapsed_s = elapsed_ms as f64 / 1e3;
        if self.total > 0 {
            let frac = done as f64 / self.total as f64;
            let eta_s = if done > 0 && done < self.total {
                elapsed_s * (self.total - done) as f64 / done as f64
            } else {
                0.0
            };
            format!(
                "{}progress: {} {done}/{} ({:.1}%) elapsed {elapsed_s:.1}s eta {eta_s:.1}s",
                self.prefix,
                self.phase,
                self.total,
                frac * 100.0
            )
        } else {
            format!(
                "{}progress: {} {done} units elapsed {elapsed_s:.1}s",
                self.prefix, self.phase
            )
        }
    }
}

impl Drop for Progress {
    fn drop(&mut self) {
        if self.inner.enabled {
            let elapsed_ms = u64::try_from(self.inner.t0.elapsed().as_millis()).unwrap_or(u64::MAX);
            eprintln!("{} done", self.inner.line(self.done(), elapsed_ms));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var toggles are process-global, so one test exercises both modes.
    #[test]
    fn progress_counts_and_formats() {
        std::env::remove_var("LORI_PROGRESS");
        let p = Progress::start("sweep", 1300);
        assert!(!p.enabled(), "disabled without LORI_PROGRESS");
        for _ in 0..412 {
            p.tick();
        }
        assert_eq!(p.done(), 412);
        let line = p.line(412, 12_400);
        assert_eq!(
            line,
            "progress: sweep 412/1300 (31.7%) elapsed 12.4s eta 26.7s"
        );

        // Unknown total: no percentage, no ETA.
        let p = Progress::start("train", 0);
        p.add(7);
        assert_eq!(p.line(7, 2_000), "progress: train 7 units elapsed 2.0s");

        // Completed phase: ETA collapses to zero.
        let p = Progress::start("sweep", 10);
        p.add(10);
        assert!(p.line(10, 1_000).contains("eta 0.0s"));

        std::env::set_var("LORI_PROGRESS", "stderr");
        let p = Progress::start("sweep", 4);
        assert!(p.enabled());
        p.tick();
        std::env::remove_var("LORI_PROGRESS");
    }

    #[test]
    fn worker_prefix_attributes_heartbeats() {
        assert_eq!(worker_prefix_from(Some("worker"), Some("3")), "[w3] ");
        assert_eq!(worker_prefix_from(Some("worker"), Some("")), "");
        assert_eq!(worker_prefix_from(Some("worker"), None), "");
        assert_eq!(worker_prefix_from(None, Some("3")), "", "supervisor");
        assert_eq!(worker_prefix_from(Some("other"), Some("3")), "");

        let inner = Inner {
            phase: "sweep",
            total: 10,
            done: AtomicU64::new(0),
            next_print_ms: AtomicU64::new(0),
            interval_ms: 1000,
            t0: Instant::now(),
            enabled: false,
            prefix: worker_prefix_from(Some("worker"), Some("2")),
        };
        assert_eq!(
            inner.line(5, 1_000),
            "[w2] progress: sweep 5/10 (50.0%) elapsed 1.0s eta 1.0s"
        );
    }

    #[test]
    fn interval_env_override() {
        std::env::set_var("LORI_PROGRESS_MS", "250");
        assert_eq!(interval_ms(), 250);
        std::env::set_var("LORI_PROGRESS_MS", "0");
        assert_eq!(interval_ms(), DEFAULT_INTERVAL_MS, "zero falls back");
        std::env::set_var("LORI_PROGRESS_MS", "nope");
        assert_eq!(interval_ms(), DEFAULT_INTERVAL_MS);
        std::env::remove_var("LORI_PROGRESS_MS");
        assert_eq!(interval_ms(), DEFAULT_INTERVAL_MS);
    }

    #[test]
    fn registry_tracks_live_trackers_only() {
        let p = Progress::start("unit.registry", 100);
        p.add(40);
        let snap = snapshot();
        let mine = snap
            .iter()
            .find(|s| s.phase == "unit.registry")
            .expect("live tracker visible");
        assert_eq!(mine.done, 40);
        assert_eq!(mine.total, 100);
        drop(p);
        assert!(
            !snapshot().iter().any(|s| s.phase == "unit.registry"),
            "dropped tracker pruned"
        );
    }
}
