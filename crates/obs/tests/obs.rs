//! Integration tests for lori-obs.
//!
//! The recorder slot is process-global, so every test that installs one
//! holds `RECORDER_TEST_LOCK` for its whole body; tests not touching the
//! recorder don't need it.

use lori_obs as obs;
use obs::{Event, Value};
use std::sync::{Arc, Mutex, MutexGuard};

static RECORDER_TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    // A panic under the lock in another test shouldn't cascade.
    RECORDER_TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Installs a memory recorder, runs `f`, uninstalls, returns parsed events.
fn record(f: impl FnOnce()) -> Vec<Value> {
    let rec = Arc::new(obs::MemoryRecorder::new());
    obs::install(Arc::clone(&rec) as Arc<dyn obs::Recorder>);
    f();
    obs::uninstall();
    rec.lines()
        .iter()
        .map(|l| Value::parse(l).expect("event line must parse"))
        .collect()
}

fn field_str<'a>(v: &'a Value, key: &str) -> &'a str {
    v.get(key).and_then(Value::as_str).unwrap()
}

fn field_num(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap()
}

#[test]
fn span_nesting_depth_and_ordering() {
    let _guard = lock();
    let events = record(|| {
        let _outer = obs::span("t.outer");
        {
            let _inner = obs::span_with("t.inner", 1e-6);
        }
        let _sibling = obs::span("t.sibling");
    });

    // enter(outer) enter(inner) exit(inner) enter(sibling) exit(sibling) exit(outer)
    let kinds: Vec<(String, String)> = events
        .iter()
        .map(|e| {
            (
                field_str(e, "ev").to_owned(),
                field_str(e, "name").to_owned(),
            )
        })
        .collect();
    assert_eq!(
        kinds,
        vec![
            ("enter".into(), "t.outer".into()),
            ("enter".into(), "t.inner".into()),
            ("exit".into(), "t.inner".into()),
            ("enter".into(), "t.sibling".into()),
            ("exit".into(), "t.sibling".into()),
            ("exit".into(), "t.outer".into()),
        ]
    );

    // Depth reflects nesting: inner and sibling both sit at depth 1.
    assert_eq!(field_num(&events[0], "depth"), 0.0);
    assert_eq!(field_num(&events[1], "depth"), 1.0);
    assert_eq!(field_num(&events[3], "depth"), 1.0);

    // The attribute survives the round trip.
    assert_eq!(field_num(&events[1], "attr"), 1e-6);

    // Timestamps are monotone within the thread and durations consistent.
    let times: Vec<f64> = events.iter().map(|e| field_num(e, "t_ns")).collect();
    assert!(times.windows(2).all(|w| w[1] >= w[0]));
    let inner_dur = field_num(&events[2], "dur_ns");
    assert!((inner_dur - (times[2] - times[1])).abs() < 1.0);
}

#[test]
fn jsonl_recorder_roundtrip_through_file() {
    let _guard = lock();
    let dir = std::env::temp_dir().join("lori-obs-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("roundtrip-{}.events.jsonl", std::process::id()));

    let rec = obs::JsonlRecorder::create(&path).unwrap();
    obs::install(Arc::new(rec));
    {
        let _s = obs::span_with("file.span", 0.25);
        obs::gauge("file.gauge").set(3.5);
    }
    obs::uninstall(); // flushes

    let text = std::fs::read_to_string(&path).unwrap();
    let events: Vec<Value> = text
        .lines()
        .map(|l| Value::parse(l).expect("line parses"))
        .collect();
    assert_eq!(events.len(), 3, "enter + gauge + exit");
    assert_eq!(field_str(&events[0], "ev"), "enter");
    assert_eq!(field_str(&events[1], "ev"), "gauge");
    assert_eq!(field_num(&events[1], "value"), 3.5);
    assert_eq!(field_str(&events[2], "ev"), "exit");
    assert_eq!(field_str(&events[2], "name"), "file.span");
    std::fs::remove_file(&path).ok();
}

#[test]
fn concurrent_spans_and_metrics_smoke() {
    let _guard = lock();
    const THREADS: usize = 8;
    const SPANS_PER_THREAD: usize = 200;

    let events = record(|| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                std::thread::spawn(|| {
                    for i in 0..SPANS_PER_THREAD {
                        let _outer = obs::span("mt.outer");
                        let _inner = obs::span("mt.inner");
                        obs::counter("mt.count").incr(1);
                        obs::histogram("mt.hist", &[0.0, 50.0, 100.0, 200.0]).observe(i as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });

    // Every event parsed (checked in record()); enters and exits balance.
    let enters = events
        .iter()
        .filter(|e| field_str(e, "ev") == "enter")
        .count();
    let exits = events
        .iter()
        .filter(|e| field_str(e, "ev") == "exit")
        .count();
    assert_eq!(enters, THREADS * SPANS_PER_THREAD * 2);
    assert_eq!(enters, exits);

    // Per-thread streams are individually well-nested: depth alternates
    // 0,1 for enter and 1,0 for exit in that thread's order.
    let mut tids: Vec<u64> = events.iter().map(|e| field_num(e, "tid") as u64).collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(tids.len() >= THREADS, "each thread gets its own tid");
    for tid in tids {
        let mut depth = 0i64;
        for e in events.iter().filter(|e| field_num(e, "tid") as u64 == tid) {
            match field_str(e, "ev") {
                "enter" => {
                    assert_eq!(field_num(e, "depth") as i64, depth);
                    depth += 1;
                }
                "exit" => {
                    depth -= 1;
                    assert_eq!(field_num(e, "depth") as i64, depth);
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "thread {tid} stream balances");
    }

    // Metrics aggregated exactly despite concurrency.
    assert_eq!(
        obs::counter("mt.count").get(),
        (THREADS * SPANS_PER_THREAD) as u64
    );
    let h = obs::histogram("mt.hist", &[0.0, 50.0, 100.0, 200.0]);
    assert_eq!(h.count(), (THREADS * SPANS_PER_THREAD) as u64);
    // 0..200 uniformly: p50 near 100, p95 near 190.
    let p50 = h.quantile(0.5).unwrap();
    let p95 = h.quantile(0.95).unwrap();
    assert!((p50 - 100.0).abs() < 15.0, "p50 {p50}");
    assert!(p95 > 150.0, "p95 {p95}");
}

#[test]
fn disabled_recording_emits_nothing_and_is_cheap() {
    let _guard = lock();
    obs::uninstall();
    assert!(!obs::recording());
    let rec = Arc::new(obs::MemoryRecorder::new());
    {
        // Spans opened while disabled must not appear even if a recorder
        // is installed later.
        let _ghost = obs::span("t.ghost");
        obs::install(Arc::clone(&rec) as Arc<dyn obs::Recorder>);
    }
    obs::uninstall();
    assert!(
        rec.lines().iter().all(|l| !l.contains("t.ghost")),
        "a span opened while disabled must stay silent"
    );
}

#[test]
fn manifest_written_next_to_results() {
    let _guard = lock();
    let dir = std::env::temp_dir().join("lori-obs-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("manifest-{}.json", std::process::id()));

    let mut m = obs::RunManifest::start("exp-itest");
    m.set_seed(7);
    m.config("points", 16u64);
    m.push_phase("sweep", 5.0);
    m.finish(obs::registry().snapshot());
    m.write(&path).unwrap();

    let v = Value::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(v.get("name").and_then(Value::as_str), Some("exp-itest"));
    assert_eq!(v.get("seed").and_then(Value::as_f64), Some(7.0));
    assert!(v.get("version").and_then(Value::as_str).is_some());
    assert!(v.get("metrics").is_some());
    std::fs::remove_file(&path).ok();
}

#[test]
fn event_enter_exit_gauge_schema_is_stable() {
    // Pure serialization — no global state involved.
    let line = Event::SpanEnter {
        name: "x",
        t_ns: 1,
        tid: 2,
        depth: 3,
        attr: None,
        sid: 7,
        parent: 0,
    }
    .to_json_line();
    assert_eq!(
        line,
        r#"{"ev":"enter","name":"x","t_ns":1,"tid":2,"depth":3,"sid":7}"#
    );
    let line = Event::SpanEnter {
        name: "x",
        t_ns: 1,
        tid: 2,
        depth: 3,
        attr: None,
        sid: 8,
        parent: 7,
    }
    .to_json_line();
    assert_eq!(
        line,
        r#"{"ev":"enter","name":"x","t_ns":1,"tid":2,"depth":3,"sid":8,"parent":7}"#
    );
    let line = Event::SpanExit {
        name: "x",
        t_ns: 9,
        tid: 2,
        depth: 3,
        dur_ns: 8,
        sid: 7,
    }
    .to_json_line();
    assert_eq!(
        line,
        r#"{"ev":"exit","name":"x","t_ns":9,"tid":2,"depth":3,"dur_ns":8,"sid":7}"#
    );
    let line = Event::Gauge {
        name: "g",
        t_ns: 4,
        value: 0.5,
    }
    .to_json_line();
    assert_eq!(line, r#"{"ev":"gauge","name":"g","t_ns":4,"value":0.5}"#);
}

#[test]
fn trace_context_attributes_cross_thread_children() {
    let _guard = lock();
    let events = record(|| {
        let parent = obs::span("tc.parent");
        assert_ne!(parent.sid(), 0);
        let ctx = obs::TraceContext::current();
        assert_eq!(ctx.parent_sid(), parent.sid());
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(move || {
                    let _adopt = ctx.adopt();
                    let _w = obs::span("tc.worker");
                });
            }
        });
        // A detached root on this thread after the parent closes.
        drop(parent);
        let _detached = obs::span("tc.detached");
    });

    let find = |name: &str| -> Vec<&Value> {
        events
            .iter()
            .filter(|e| field_str(e, "ev") == "enter" && field_str(e, "name") == name)
            .collect()
    };
    let parent_sid = field_num(find("tc.parent")[0], "sid");
    let workers = find("tc.worker");
    assert_eq!(workers.len(), 3);
    for w in &workers {
        assert_eq!(
            field_num(w, "parent"),
            parent_sid,
            "worker adopts the spawning span as parent"
        );
        assert_ne!(field_num(w, "sid"), parent_sid, "sids stay unique");
    }
    assert!(
        find("tc.parent")[0].get("parent").is_none(),
        "top-level span has no parent field"
    );
    assert!(
        find("tc.detached")[0].get("parent").is_none(),
        "adoption does not leak outside the guard"
    );

    // Exits carry the sid of the span they close.
    let worker_sids: Vec<f64> = workers.iter().map(|w| field_num(w, "sid")).collect();
    for e in events
        .iter()
        .filter(|e| field_str(e, "ev") == "exit" && field_str(e, "name") == "tc.worker")
    {
        assert!(worker_sids.contains(&field_num(e, "sid")));
    }
}

#[test]
fn flight_recorder_captures_without_recorder_and_dumps() {
    let _guard = lock();
    obs::uninstall();
    obs::flight::clear();
    obs::flight::enable(64);
    {
        let _a = obs::span("fl.outer");
        let _b = obs::span("fl.inner");
        obs::gauge("fl.gauge").set(2.5);
    }
    let (events, _dropped) = obs::flight::snapshot();
    let names: Vec<&str> = events.iter().map(|e| e.name).collect();
    assert!(names.contains(&"fl.outer"));
    assert!(names.contains(&"fl.inner"));
    assert!(names.contains(&"fl.gauge"));
    let inner = events
        .iter()
        .find(|e| e.name == "fl.inner" && e.kind == obs::flight::FlightKind::Enter)
        .unwrap();
    let outer = events
        .iter()
        .find(|e| e.name == "fl.outer" && e.kind == obs::flight::FlightKind::Enter)
        .unwrap();
    assert_eq!(inner.parent, outer.sid, "flight entries keep trace context");

    // Ring capacity bounds retention; the snapshot reports the overwrites.
    for _ in 0..200 {
        let _s = obs::span("fl.wrap");
    }
    let (events, dropped) = obs::flight::snapshot();
    assert!(events.len() <= 64, "per-thread ring stays bounded");
    assert!(dropped > 0, "overwrites are reported");

    // The dump is a parseable black box written atomically.
    let dir = std::env::temp_dir().join("lori-obs-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("flight-{}.json", std::process::id()));
    obs::flight::set_dump_path(&path);
    let written = obs::flight::dump("unit").expect("dump path configured");
    assert_eq!(written, path);
    let doc = Value::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(doc.get("reason").and_then(Value::as_str), Some("unit"));
    assert!(doc.get("events").and_then(Value::as_arr).is_some());

    obs::flight::disable();
    assert!(
        obs::flight::dump("late").is_none(),
        "disarmed dump is a no-op"
    );
    obs::flight::clear();
    std::fs::remove_file(&path).ok();
}
