//! Edge-case coverage for `lori_obs::json::Value::parse` — the parser
//! `lori-report` trusts to validate event streams, manifests, and BENCH
//! records, so its failure behavior is part of the analysis contract:
//! malformed input must produce an error naming a byte offset, never a
//! panic and never a silently wrong value.

use lori_obs::Value;

#[test]
fn escaped_strings_decode() {
    let v = Value::parse(r#""a\"b\\c\/d\ne\tf\rg\bh\fi""#).unwrap();
    assert_eq!(
        v.as_str(),
        Some("a\"b\\c/d\ne\tf\rg\u{8}h\u{c}i"),
        "every JSON escape decodes"
    );
    let v = Value::parse(r#""snow: ☃, A: A""#).unwrap();
    assert_eq!(v.as_str(), Some("snow: ☃, A: A"));
    // Unpaired surrogates decode to the replacement character rather than
    // producing invalid UTF-8 or panicking.
    let v = Value::parse(r#""\ud800""#).unwrap();
    assert_eq!(v.as_str(), Some("\u{fffd}"));
}

#[test]
fn escape_roundtrip_through_writer() {
    for s in [
        "",
        "\\",
        "\"",
        "\n\t\r",
        "\u{1}\u{1f}",
        "日本語 ☃",
        "a\\u0041b",
    ] {
        let json = Value::from(s).to_json();
        let back = Value::parse(&json).unwrap();
        assert_eq!(back.as_str(), Some(s), "roundtrip of {s:?} via {json}");
    }
}

#[test]
fn nested_arrays_parse() {
    let v = Value::parse("[[1,[2,[3,[]]]],[],[[4]]]").unwrap();
    let top = v.as_arr().unwrap();
    assert_eq!(top.len(), 3);
    let deep = top[0].as_arr().unwrap()[1].as_arr().unwrap()[1]
        .as_arr()
        .unwrap();
    assert_eq!(deep[0].as_f64(), Some(3.0));
    assert!(deep[1].as_arr().unwrap().is_empty());

    let v = Value::parse(r#"{"a": [{"b": [1, 2]}, {"c": {"d": [3]}}]}"#).unwrap();
    let a = v.get("a").and_then(Value::as_arr).unwrap();
    assert_eq!(a[0].get("b").and_then(Value::as_arr).unwrap().len(), 2);
}

#[test]
fn nan_and_infinity_are_rejected() {
    for bad in [
        "NaN",
        "nan",
        "Infinity",
        "-Infinity",
        "inf",
        "-inf",
        // str::parse::<f64> accepts these overflowing forms as ±inf; the
        // JSON layer must not let them through.
        "1e999",
        "-1e999",
        "1e308e5",
    ] {
        assert!(Value::parse(bad).is_err(), "{bad} must not parse");
        assert!(
            Value::parse(&format!("{{\"x\": {bad}}}")).is_err(),
            "{bad} must not parse as a member value"
        );
    }
    // The writer's side of the contract: non-finite serializes as null,
    // which the parser accepts (as Null, not as a number).
    assert_eq!(
        Value::parse(&Value::Num(f64::NAN).to_json()),
        Ok(Value::Null)
    );
}

#[test]
fn truncated_input_errors_carry_byte_offsets() {
    let cases: &[(&str, &str)] = &[
        ("", "unexpected end of input at byte 0"),
        ("[1, 2", "expected ',' or ']' at byte 5"),
        ("{\"a\": ", "unexpected end of input at byte 6"),
        ("\"abc", "unterminated string at byte 4"),
        ("\"ab\\u00", "truncated \\u escape at byte 4"),
    ];
    for (input, expected) in cases {
        let err = Value::parse(input).expect_err(input);
        assert_eq!(&err, expected, "error for {input:?}");
    }
    // Every other malformed shape still points somewhere in the input.
    for input in ["{\"a\" 1}", "[1 2]", "{\"a\": 1,, }", "tru", "\"a\\x\""] {
        let err = Value::parse(input).expect_err(input);
        assert!(
            err.contains("byte"),
            "error for {input:?} lacks offset: {err}"
        );
    }
}

/// A fuzz-ish corpus of malformed JSONL lines: every mutation of a valid
/// event line must either parse to a value or fail cleanly — no panics —
/// and known-broken lines must fail.
#[test]
fn malformed_jsonl_corpus_never_panics() {
    let seed = r#"{"ev":"enter","name":"sweep","t_ns":2277937,"tid":0,"depth":0}"#;

    // Hand-picked malformations of a real event line.
    let corpus = [
        r#"{"ev":"enter","name":"sweep","t_ns":2277937,"tid":0,"depth":0"#, // no brace
        r#""ev":"enter","name":"sweep""#,                                   // no braces
        r#"{"ev":"enter",}"#,                                               // trailing comma
        r#"{"ev":"enter" "name":"sweep"}"#,                                 // missing comma
        r#"{"ev":enter}"#,                                                  // bare word
        r#"{"ev":"enter","t_ns":22x7}"#,                                    // bad number
        r#"{"ev":"enter","t_ns":}"#,                                        // missing value
        r#"{{"ev":"enter"}}"#,                                              // doubled braces
        r#"{"ev":"enter"}{"ev":"exit"}"#,                                   // two docs
        "{\"ev\":\"en\nter\"}",                                             // raw newline
        r#"{"ev":"enter","name":"sw\qeep"}"#,                               // bad escape
        "",                                                                 // empty line
        "null garbage",                                                     // trailing junk
    ];
    for line in corpus {
        assert!(
            Value::parse(line).is_err(),
            "corpus line must fail: {line:?}"
        );
    }

    // Truncation sweep: every prefix of the seed line.
    for end in 0..seed.len() {
        if !seed.is_char_boundary(end) {
            continue;
        }
        let _ = Value::parse(&seed[..end]); // must not panic
    }
    // Single-byte corruption sweep at every position, several replacements.
    for i in 0..seed.len() {
        for repl in ['\\', '"', '{', '}', 'x', '9', '\u{0}'] {
            let mut mutated: Vec<char> = seed.chars().collect();
            mutated[i] = repl;
            let mutated: String = mutated.into_iter().collect();
            let _ = Value::parse(&mutated); // must not panic
        }
    }
    // The unmutated seed still parses (guards the corpus itself).
    let v = Value::parse(seed).unwrap();
    assert_eq!(v.get("ev").and_then(Value::as_str), Some("enter"));
}

#[test]
fn deep_nesting_is_bounded_by_input_not_stack_death() {
    // 1000 levels of arrays: recursion depth equals input length here, so
    // this guards against a quadratic or unbounded-stack regression at the
    // depth real artifacts could plausibly reach.
    let depth = 1000;
    let text = "[".repeat(depth) + &"]".repeat(depth);
    let v = Value::parse(&text).unwrap();
    assert!(v.as_arr().is_some());
    let truncated = "[".repeat(depth);
    assert!(Value::parse(&truncated).is_err());
}
