//! Property-based tests for the Section-V models.

use lori_core::units::Cycles;
use lori_core::Rng;
use lori_ftsched::checkpoint::CheckpointSystem;
use lori_ftsched::error_model::ErrorModel;
use lori_ftsched::mitigation::{BudgetAlgorithm, MitigationSystem};
use proptest::prelude::*;

proptest! {
    /// Eq. (2) is a distribution: probabilities are in range and the series
    /// sums to ~1 for moderate parameters.
    #[test]
    fn eq2_is_distribution(p in 1e-8f64..1e-4, nc in 1_000u64..500_000) {
        let m = ErrorModel::new(p).unwrap();
        let nc = Cycles(nc);
        let q = m.no_error_probability(nc).value();
        prop_assume!(q > 1e-5); // geometric tail must be summable in reasonable terms
        let terms = ((20.0 / q) as u64).clamp(100, 5_000_000);
        let mut total = 0.0;
        for n in 0..terms {
            let pr = m.rollback_probability(nc, n).value();
            prop_assert!((0.0..=1.0).contains(&pr));
            total += pr;
            if total > 1.0 - 1e-9 {
                break;
            }
        }
        prop_assert!(total > 0.99, "series sum {total}");
    }

    /// Expected rollbacks are monotone in p and in segment length.
    #[test]
    fn expected_rollbacks_monotone(p in 1e-8f64..1e-4, nc in 1_000u64..400_000) {
        let m1 = ErrorModel::new(p).unwrap();
        let m2 = ErrorModel::new(p * 2.0).unwrap();
        prop_assert!(m2.expected_rollbacks(Cycles(nc)) >= m1.expected_rollbacks(Cycles(nc)));
        prop_assert!(
            m1.expected_rollbacks(Cycles(nc * 2)) >= m1.expected_rollbacks(Cycles(nc))
        );
    }

    /// A segment execution always costs at least its fault-free cycles, and
    /// exactly the closed-form amount given its rollback count (k = 1).
    #[test]
    fn execution_cost_identity(p in 0.0f64..1e-4, nc in 1_000u64..400_000, seed in 0u64..500) {
        let sys = CheckpointSystem::default();
        let m = ErrorModel::new(p).unwrap();
        let mut rng = Rng::from_seed(seed);
        let ex = sys.execute_segment(Cycles(nc), &m, &mut rng);
        let window = nc + 100;
        // Mirror the implementation's saturating arithmetic (extreme p can
        // produce astronomically many rollbacks).
        let expect = ex
            .rollbacks
            .saturating_add(1)
            .saturating_mul(window)
            .saturating_add(ex.rollbacks.saturating_mul(48));
        prop_assert_eq!(ex.total_cycles.value(), expect);
        prop_assert!(ex.total_cycles.value() >= sys.fault_free_cycles(Cycles(nc)).value());
    }

    /// Budgets are ordered DS ≤ DS1.5 ≤ DS2 for any segment, and WCET is
    /// the largest for segments at or below the mean... specifically WCET
    /// dominates DS for every segment.
    #[test]
    fn budget_ordering(work in 1_000u64..270_000) {
        let cp = CheckpointSystem::default();
        let ff = cp.fault_free_cycles(Cycles(work));
        let wff = cp.fault_free_cycles(Cycles(270_000));
        let b: Vec<u64> = BudgetAlgorithm::ALL
            .iter()
            .map(|&a| MitigationSystem::new(a).budget(ff, wff).value())
            .collect();
        prop_assert!(b[0] <= b[1] && b[1] <= b[2]);
        prop_assert!(b[3] >= b[0], "WCET must dominate DS");
    }

    /// The deadline tracker is monotone: if a run hits with some actual
    /// cycle sequence, it also hits with any cheaper sequence.
    #[test]
    fn tracker_monotone(extra in 0u64..1_000_000, seed in 0u64..100) {
        let cp = CheckpointSystem::default();
        let sys = MitigationSystem::new(BudgetAlgorithm::Ds2);
        let mut rng = Rng::from_seed(seed);
        let works: Vec<u64> = (0..10).map(|_| rng.range(40_000, 270_000)).collect();
        let run = |inflate: u64| -> bool {
            let mut t = sys.tracker();
            let mut all = true;
            for &w in &works {
                let actual = Cycles(cp.fault_free_cycles(Cycles(w)).value() + inflate);
                if !t.advance(&sys, Cycles(w), Cycles(270_000), actual, &cp) {
                    all = false;
                }
            }
            all
        };
        if run(extra) {
            prop_assert!(run(0), "cheaper run must also hit");
        }
    }

    /// Fault-free execution hits every deadline under every algorithm for
    /// arbitrary traces.
    #[test]
    fn fault_free_hits_everything(seed in 0u64..200, n in 1usize..40) {
        let cp = CheckpointSystem::default();
        let mut rng = Rng::from_seed(seed);
        let works: Vec<u64> = (0..n).map(|_| rng.range(40_000, 270_001)).collect();
        let wcet = Cycles(*works.iter().max().unwrap());
        for &alg in &BudgetAlgorithm::ALL {
            let sys = MitigationSystem::new(alg);
            let mut t = sys.tracker();
            for &w in &works {
                let actual = cp.fault_free_cycles(Cycles(w));
                prop_assert!(t.advance(&sys, Cycles(w), wcet, actual, &cp));
            }
        }
    }
}
