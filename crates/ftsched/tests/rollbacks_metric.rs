//! Regression test for the corrupt `ftsched.rollbacks` metric.
//!
//! Before PR 5 the counter charged the raw geometric rollback samples of
//! Eq. (2), which are unbounded: at the top of the Fig. 5 axis a single
//! 270k-cycle segment samples ~5·10¹¹ rollbacks, so a 1,300-run sweep
//! "executed" 368,266,406,769,412 rollbacks in under 8 ms of wall time —
//! the impossible value that was checked into
//! `results/exp-fig5.manifest.json`. The counter now records
//! *deadline-observable* rollbacks, clamped per segment to the run's most
//! generous cumulative budget horizon
//! (`montecarlo::observable_rollback_caps`).
//!
//! This lives in its own integration-test binary so the process-global
//! metric registry is not shared with unrelated tests running sweeps.

use lori_ftsched::montecarlo::{observable_rollback_caps, sweep, SweepConfig};
use lori_ftsched::workload::adpcm_reference_trace;

#[test]
fn rollbacks_counter_stays_physically_plausible() {
    let trace = adpcm_reference_trace();
    let config = SweepConfig {
        runs: 20,
        ..SweepConfig::paper()
    };
    let axis = [1e-6, 1e-5, 1e-4];
    let before = lori_obs::counter("ftsched.rollbacks").get();
    let points = sweep(&axis, &trace, &config).expect("sweep");
    let counted = lori_obs::counter("ftsched.rollbacks").get() - before;

    // Fig. 5's statistics keep the raw Eq. (2) samples: at p = 1e-4 the
    // average is astronomical by design (the paper's "formidable" regime).
    assert!(
        points.last().expect("points").avg_rollbacks_per_segment > 1e6,
        "raw Fig. 5 averages must stay unclamped"
    );

    // The executed-rollback metric, in contrast, is bounded by the
    // deadline horizon: per run no segment can contribute more than its
    // observable cap.
    let caps = observable_rollback_caps(&trace, &config);
    let per_run: u64 = caps.iter().sum();
    let ceiling = per_run * config.runs as u64 * axis.len() as u64;
    assert!(counted > 0, "some rollbacks are genuinely observed");
    assert!(
        counted <= ceiling,
        "counter {counted} exceeds the deadline-observable ceiling {ceiling}"
    );
    // Order-of-magnitude pin: the ceiling itself must be sane — a 60-run
    // sweep observes at most ~1e6 rollbacks, thirteen orders of magnitude
    // below the corrupt value this test regresses.
    assert!(
        ceiling < 10_000_000,
        "observable ceiling implausibly large: {ceiling}"
    );
}

#[test]
fn observable_caps_are_per_segment_sane() {
    let trace = adpcm_reference_trace();
    let config = SweepConfig::paper();
    let caps = observable_rollback_caps(&trace, &config);
    assert_eq!(caps.len(), trace.len());
    for (&work, &cap) in trace.iter().zip(&caps) {
        assert!(cap >= 1, "every segment can observe its failing rollback");
        assert!(
            cap < 100_000,
            "segment of {} cycles caps at {cap} — implausibly many",
            work.value()
        );
    }
    // Bigger segments absorb fewer rollbacks within the same horizon.
    let max_work = trace.iter().max().expect("non-empty");
    let min_work = trace.iter().min().expect("non-empty");
    let cap_at = |w| {
        trace
            .iter()
            .zip(&caps)
            .find(|(&work, _)| work == w)
            .map(|(_, &c)| c)
            .expect("present")
    };
    assert!(cap_at(*max_work) <= cap_at(*min_work));
}
