//! Cross-layer fault-injection tests for the Monte Carlo sweep. These
//! live in their own integration-test process because a fault plan is
//! process-global state.

use lori_ftsched::montecarlo::{point_tasks, run_point, sweep_with, SweepConfig};
use lori_ftsched::workload::adpcm_reference_trace;
use lori_ftsched::FtError;
use lori_par::{par_map_recover, Parallelism, RecoveryPolicy};

fn quick_config() -> SweepConfig {
    SweepConfig {
        runs: 20,
        ..SweepConfig::default()
    }
}

const AXIS: [f64; 5] = [1e-8, 1e-7, 1e-6, 5e-6, 1e-5];

/// Arms a directive that can never fire (index off the 5-point axis).
/// Computations that must run clean still hold the activation lock this
/// way, so concurrently running tests in this binary cannot poison them.
fn inert_guard() -> lori_fault::PlanGuard {
    lori_fault::activate(&lori_fault::FaultPlan::parse("panic@sweep.point:99").unwrap())
}

#[test]
fn injected_panic_quarantines_one_point_and_leaves_the_rest_bit_identical() {
    let trace = adpcm_reference_trace();
    let config = quick_config();
    let clean = {
        let _guard = inert_guard();
        sweep_with(&AXIS, &trace, &config, Parallelism::serial()).unwrap()
    };

    let plan = lori_fault::FaultPlan::parse("panic@sweep.point:2").unwrap();
    let _guard = lori_fault::activate(&plan);
    for workers in [1, 2, 4] {
        let tasks = point_tasks(&AXIS, &trace, &config).unwrap();
        let out = par_map_recover(
            Parallelism::new(workers),
            RecoveryPolicy::Quarantine { retries: 1 },
            &tasks,
            |_, task| run_point(task, &trace, &config).expect("finite point"),
        );
        assert_eq!(out.failures.len(), 1, "workers={workers}");
        assert_eq!(out.failures[0].index, 2);
        assert!(out.failures[0].message.contains("sweep.point[2]"));
        for (i, slot) in out.results.iter().enumerate() {
            if i == 2 {
                assert!(slot.is_none());
            } else {
                assert_eq!(
                    slot.as_ref(),
                    Some(&clean[i]),
                    "non-faulted point {i} must be bit-identical (workers={workers})"
                );
            }
        }
    }
}

#[test]
fn injected_nan_becomes_a_typed_error_not_a_poisoned_artifact() {
    let trace = adpcm_reference_trace();
    let config = quick_config();
    let plan = lori_fault::FaultPlan::parse("nan@sweep.point").unwrap();
    let _guard = lori_fault::activate(&plan);
    let err = sweep_with(&AXIS, &trace, &config, Parallelism::serial())
        .expect_err("poisoned cycle total must surface as an error");
    assert!(
        matches!(
            err,
            FtError::NonFinite {
                site: "sweep.point",
                ..
            }
        ),
        "got {err}"
    );
}

#[test]
fn inert_directive_leaves_the_sweep_deterministic() {
    // A plan that never fires must not perturb results or determinism.
    let _guard = inert_guard();
    let trace = adpcm_reference_trace();
    let config = quick_config();
    let a = sweep_with(&AXIS, &trace, &config, Parallelism::serial()).unwrap();
    let b = sweep_with(&AXIS, &trace, &config, Parallelism::new(3)).unwrap();
    assert_eq!(a, b);
}
