//! Error type for `lori-ftsched`.

use std::fmt;

/// Errors produced by model configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum FtError {
    /// A probability was outside `[0, 1]`.
    BadProbability(f64),
    /// A cycle count or parameter that must be positive was not.
    NonPositive {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// An empty workload trace was supplied.
    EmptyTrace,
    /// A sweep was configured with no probability points or zero runs.
    EmptySweep(&'static str),
    /// A computation produced a non-finite value. `site` names the
    /// injection/guard site (e.g. `sweep.point`) and `what` the quantity.
    NonFinite {
        /// Guard site that caught the value.
        site: &'static str,
        /// Name of the non-finite quantity.
        what: &'static str,
    },
    /// A serialized checkpoint failed validation on restore.
    CorruptCheckpoint {
        /// What failed: truncation, magic, or checksum.
        reason: &'static str,
    },
}

impl fmt::Display for FtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtError::BadProbability(p) => write!(f, "probability {p} outside [0, 1]"),
            FtError::NonPositive { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            FtError::EmptyTrace => write!(f, "workload trace must not be empty"),
            FtError::EmptySweep(what) => write!(f, "sweep needs at least one {what}"),
            FtError::NonFinite { site, what } => {
                write!(f, "non-finite {what} detected at {site}")
            }
            FtError::CorruptCheckpoint { reason } => {
                write!(f, "corrupt checkpoint state: {reason}")
            }
        }
    }
}

impl std::error::Error for FtError {}
