//! Error-rate-wall localisation and parameter sensitivity (the future work
//! Sec. V-D names: "determining how system parameters affect the error rate
//! wall").
//!
//! The wall is the error probability at which a mitigation algorithm's
//! deadline hit rate crosses 50 %. [`find_wall`] localises it by bisection
//! on log10(p); [`wall_sensitivity`] sweeps system parameters (speed
//! headroom, checkpoint granularity) and reports how the wall moves.

use crate::checkpoint::CheckpointSystem;
use crate::error::FtError;
use crate::mitigation::{BudgetAlgorithm, MitigationSystem};
use crate::montecarlo::{sweep, SweepConfig};
use lori_core::units::Cycles;

/// Localises the error-rate wall for one algorithm: the `p` where the hit
/// rate crosses `0.5`, found by bisection on `log10(p)` within
/// `[p_lo, p_hi]`.
///
/// # Errors
///
/// Propagates sweep errors; returns [`FtError::EmptySweep`] if the hit rate
/// does not bracket 0.5 in the interval.
pub fn find_wall(
    algorithm: BudgetAlgorithm,
    trace: &[Cycles],
    config: &SweepConfig,
    p_lo: f64,
    p_hi: f64,
    iterations: usize,
) -> Result<f64, FtError> {
    let alg_index = BudgetAlgorithm::ALL
        .iter()
        .position(|&a| a == algorithm)
        .expect("algorithm in catalog");
    let hit_at =
        |p: f64| -> Result<f64, FtError> { Ok(sweep(&[p], trace, config)?[0].hit_rate[alg_index]) };
    let hi_rate = hit_at(p_lo)?;
    let lo_rate = hit_at(p_hi)?;
    if hi_rate < 0.5 || lo_rate > 0.5 {
        return Err(FtError::EmptySweep("bracketing interval"));
    }
    let mut lo = p_lo.log10();
    let mut hi = p_hi.log10();
    for _ in 0..iterations {
        let mid = (lo + hi) / 2.0;
        if hit_at(10f64.powf(mid))? >= 0.5 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(10f64.powf((lo + hi) / 2.0))
}

/// One row of the sensitivity study.
#[derive(Debug, Clone, PartialEq)]
pub struct WallPoint {
    /// Parameter label (e.g. "speedup=3.0").
    pub label: String,
    /// Wall position for each algorithm, ordered as
    /// [`BudgetAlgorithm::ALL`].
    pub wall_p: [f64; 4],
}

/// Sweeps speed headroom and checkpoint granularity and reports how the
/// wall moves (experiment E13).
///
/// The bisection inside each row sweeps one probability point at a time,
/// so parallelism lives at the row level instead: every parameter row is
/// bisected on its own worker ([`lori_par::global`]). Rows are
/// independent — each inner sweep re-seeds from `base.seed` — so the
/// output is identical for every worker count.
///
/// # Errors
///
/// Propagates [`find_wall`] errors.
pub fn wall_sensitivity(
    trace: &[Cycles],
    base: &SweepConfig,
    speedups: &[f64],
    checkpoint_granularities: &[u32],
) -> Result<Vec<WallPoint>, FtError> {
    let rows: Vec<(String, SweepConfig)> = speedups
        .iter()
        .map(|&s| {
            (
                format!("speedup={s}"),
                SweepConfig {
                    mitigation: MitigationSystem {
                        max_speedup: s,
                        ..base.mitigation
                    },
                    ..base.clone()
                },
            )
        })
        .chain(checkpoint_granularities.iter().map(|&k| {
            (
                format!("checkpoints_per_segment={k}"),
                SweepConfig {
                    checkpoints: CheckpointSystem {
                        checkpoints_per_segment: k,
                        ..base.checkpoints
                    },
                    ..base.clone()
                },
            )
        }))
        .collect();
    let _span = lori_obs::span("ftsched.wall_sensitivity");
    let computed = lori_par::par_map(lori_par::global(), &rows, |_, (label, config)| {
        Ok(WallPoint {
            label: label.clone(),
            wall_p: walls(trace, config)?,
        })
    });
    computed.into_iter().collect()
}

fn walls(trace: &[Cycles], config: &SweepConfig) -> Result<[f64; 4], FtError> {
    let mut out = [0.0; 4];
    for (i, &alg) in BudgetAlgorithm::ALL.iter().enumerate() {
        out[i] = find_wall(alg, trace, config, 1e-9, 1e-3, 12)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::adpcm_reference_trace;

    fn quick() -> SweepConfig {
        SweepConfig {
            runs: 20,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn wall_sits_in_paper_window() {
        let trace = adpcm_reference_trace();
        let wall = find_wall(BudgetAlgorithm::Ds2, &trace, &quick(), 1e-9, 1e-3, 12).unwrap();
        // Paper: the wall lives around 1e-6 to 1e-5.
        assert!(
            wall > 3e-7 && wall < 5e-5,
            "wall at {wall}, expected within the paper's window"
        );
    }

    #[test]
    fn conservative_algorithms_push_the_wall_out() {
        let trace = adpcm_reference_trace();
        let cfg = quick();
        let ds = find_wall(BudgetAlgorithm::Ds, &trace, &cfg, 1e-9, 1e-3, 10).unwrap();
        let wcet = find_wall(BudgetAlgorithm::Wcet, &trace, &cfg, 1e-9, 1e-3, 10).unwrap();
        assert!(
            wcet >= ds,
            "WCET wall {wcet} should be at or beyond DS wall {ds}"
        );
    }

    #[test]
    fn more_speed_headroom_moves_the_wall_forward() {
        let trace = adpcm_reference_trace();
        let rows = wall_sensitivity(&trace, &quick(), &[1.5, 3.0], &[]).unwrap();
        assert_eq!(rows.len(), 2);
        // More headroom → wall at higher p for every algorithm.
        for alg in 0..4 {
            assert!(
                rows[1].wall_p[alg] >= rows[0].wall_p[alg],
                "alg {alg}: {} vs {}",
                rows[1].wall_p[alg],
                rows[0].wall_p[alg]
            );
        }
    }

    #[test]
    fn unbracketed_interval_errors() {
        let trace = adpcm_reference_trace();
        // Interval entirely above the wall: hit rate < 0.5 at both ends.
        assert!(find_wall(BudgetAlgorithm::Ds, &trace, &quick(), 1e-4, 1e-3, 4).is_err());
    }
}
