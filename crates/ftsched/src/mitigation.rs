//! Cycle-noise mitigation (Sec. V-C): per-segment budget scheduling with a
//! bounded speed-up headroom.
//!
//! Rollback-recovery fixes errors but injects *cycle noise* — run-to-run
//! variability in the cycles a segment needs. The multi-timescale
//! mitigation approach allocates each segment a time budget and raises the
//! processor speed in advance so potential rollbacks fit inside it. A
//! segment hits its deadline iff its consumed cycles fit within the budget
//! at the maximum processor speed:
//!
//! `hit ⇔ total_cycles ≤ budget_cycles × s_max`
//!
//! Four algorithms from aggressive to conservative, as in the paper:
//!
//! - **DS** — dynamic-scenario based: a tight per-segment budget derived at
//!   run time from the detected scenario (= the segment's own nominal work
//!   plus checkpoint overhead, with a small margin);
//! - **DS 1.5×**, **DS 2×** — DS budgets scaled by 1.5 and 2;
//! - **WCET** — worst-case execution time: every segment gets the budget of
//!   the largest segment in the application.

use crate::checkpoint::CheckpointSystem;
use crate::error::FtError;
use lori_core::units::Cycles;

/// The four budget algorithms of the paper's Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetAlgorithm {
    /// Dynamic-scenario based (most aggressive).
    Ds,
    /// Dynamic-scenario based, budgets × 1.5.
    Ds15,
    /// Dynamic-scenario based, budgets × 2.
    Ds2,
    /// Worst-case execution time (most conservative).
    Wcet,
}

impl BudgetAlgorithm {
    /// All four, in the paper's aggressive-to-conservative order.
    pub const ALL: [BudgetAlgorithm; 4] = [
        BudgetAlgorithm::Ds,
        BudgetAlgorithm::Ds15,
        BudgetAlgorithm::Ds2,
        BudgetAlgorithm::Wcet,
    ];

    /// Display label, matching the paper's legend.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BudgetAlgorithm::Ds => "DS",
            BudgetAlgorithm::Ds15 => "DS 1.5x",
            BudgetAlgorithm::Ds2 => "DS 2x",
            BudgetAlgorithm::Wcet => "WCET",
        }
    }

    /// The budget scale applied to the dynamic-scenario estimate.
    #[must_use]
    pub fn scale(self) -> f64 {
        match self {
            BudgetAlgorithm::Ds => 1.0,
            BudgetAlgorithm::Ds15 => 1.5,
            BudgetAlgorithm::Ds2 => 2.0,
            BudgetAlgorithm::Wcet => 1.0, // scale is irrelevant; see budget()
        }
    }
}

/// The mitigation system: budget algorithm + processor speed headroom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MitigationSystem {
    /// The budget algorithm in use.
    pub algorithm: BudgetAlgorithm,
    /// Maximum speed-up the processor can apply over nominal (the headroom
    /// the mitigation raises in advance of potential rollbacks).
    pub max_speedup: f64,
    /// Multiplicative margin on the dynamic-scenario estimate.
    pub ds_margin: f64,
}

impl MitigationSystem {
    /// Creates a mitigation system with the paper-flavoured defaults
    /// (30 % speed headroom, 5 % DS margin).
    #[must_use]
    pub fn new(algorithm: BudgetAlgorithm) -> Self {
        MitigationSystem {
            algorithm,
            max_speedup: 1.3,
            ds_margin: 1.05,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`FtError::NonPositive`] for a speed-up below 1 or a margin
    /// below 1.
    pub fn validate(&self) -> Result<(), FtError> {
        if self.max_speedup < 1.0 {
            return Err(FtError::NonPositive {
                what: "max_speedup - 1",
                value: self.max_speedup - 1.0,
            });
        }
        if self.ds_margin < 1.0 {
            return Err(FtError::NonPositive {
                what: "ds_margin - 1",
                value: self.ds_margin - 1.0,
            });
        }
        Ok(())
    }

    /// The budget (in nominal-speed cycles) allocated to a segment whose
    /// fault-free requirement is `fault_free` cycles, given the workload's
    /// worst-case fault-free segment `wcet_fault_free`.
    #[must_use]
    pub fn budget(&self, fault_free: Cycles, wcet_fault_free: Cycles) -> Cycles {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        match self.algorithm {
            BudgetAlgorithm::Wcet => Cycles((wcet_fault_free.as_f64() * self.ds_margin) as u64),
            alg => Cycles((fault_free.as_f64() * self.ds_margin * alg.scale()) as u64),
        }
    }

    /// Starts a deadline tracker for a fresh run.
    #[must_use]
    pub fn tracker(&self) -> DeadlineTracker {
        DeadlineTracker::default()
    }
}

/// Cumulative deadline accounting with slack carry-over, as in the
/// multi-timescale mitigation of the paper's ref \[53\]: segment `i`'s
/// deadline is the cumulative budget Σ_{j≤i} B_j, and the processor can run
/// up to `max_speedup` faster than nominal, so segment `i` hits its deadline
/// iff
///
/// `Σ_{j≤i} actual_j ≤ max_speedup · Σ_{j≤i} B_j`
///
/// Slack earned by conservative budgets on cheap segments carries forward
/// to absorb later rollback bursts — which is exactly why conservative
/// algorithms hold out longer inside the error-rate window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeadlineTracker {
    cum_actual: f64,
    cum_budget: f64,
}

impl DeadlineTracker {
    /// Advances past one segment: allocates its budget, charges its actual
    /// cycles, and reports whether the segment hit its (cumulative)
    /// deadline.
    #[must_use]
    pub fn advance(
        &mut self,
        system: &MitigationSystem,
        work: Cycles,
        wcet_work: Cycles,
        actual: Cycles,
        checkpoints: &CheckpointSystem,
    ) -> bool {
        let budget = system.budget(
            checkpoints.fault_free_cycles(work),
            checkpoints.fault_free_cycles(wcet_work),
        );
        self.advance_with_budget(system, budget, actual)
    }

    /// Advances with an explicitly-computed budget (used by the learned-
    /// budget predictor).
    #[must_use]
    pub fn advance_with_budget(
        &mut self,
        system: &MitigationSystem,
        budget: Cycles,
        actual: Cycles,
    ) -> bool {
        self.cum_budget += budget.as_f64();
        self.cum_actual += actual.as_f64();
        self.cum_actual <= self.cum_budget * system.max_speedup
    }

    /// Current slack in cycles (negative when behind).
    #[must_use]
    pub fn slack(&self, system: &MitigationSystem) -> f64 {
        self.cum_budget * system.max_speedup - self.cum_actual
    }

    /// Returns the tracker to its initial state, so hot loops can reuse one
    /// allocation across Monte Carlo runs instead of rebuilding a fresh
    /// tracker per run.
    pub fn reset(&mut self) {
        *self = DeadlineTracker::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_order() {
        assert_eq!(BudgetAlgorithm::ALL.len(), 4);
        assert_eq!(BudgetAlgorithm::Ds.label(), "DS");
        assert_eq!(BudgetAlgorithm::Wcet.label(), "WCET");
        assert!(BudgetAlgorithm::Ds15.scale() < BudgetAlgorithm::Ds2.scale());
    }

    #[test]
    fn budgets_are_ordered_aggressive_to_conservative() {
        let cp = CheckpointSystem::default();
        let work = Cycles(100_000);
        let wcet = Cycles(270_000);
        let ff = cp.fault_free_cycles(work);
        let wff = cp.fault_free_cycles(wcet);
        let b: Vec<u64> = BudgetAlgorithm::ALL
            .iter()
            .map(|&a| MitigationSystem::new(a).budget(ff, wff).value())
            .collect();
        assert!(b[0] < b[1] && b[1] < b[2] && b[2] < b[3], "budgets {b:?}");
    }

    #[test]
    fn wcet_budget_ignores_segment_size() {
        let sys = MitigationSystem::new(BudgetAlgorithm::Wcet);
        let wcet = Cycles(270_100);
        assert_eq!(
            sys.budget(Cycles(40_100), wcet),
            sys.budget(Cycles(200_100), wcet)
        );
    }

    #[test]
    fn fault_free_always_hits() {
        let cp = CheckpointSystem::default();
        for &alg in &BudgetAlgorithm::ALL {
            let sys = MitigationSystem::new(alg);
            let mut tracker = sys.tracker();
            for work in [40_000u64, 100_000, 270_000] {
                let work = Cycles(work);
                let actual = cp.fault_free_cycles(work);
                assert!(
                    tracker.advance(&sys, work, Cycles(270_000), actual, &cp),
                    "{} missed a fault-free segment of {work}",
                    alg.label()
                );
            }
        }
    }

    #[test]
    fn ds_misses_before_wcet_under_rollbacks() {
        let cp = CheckpointSystem::default();
        let ds = MitigationSystem::new(BudgetAlgorithm::Ds);
        let wcet = MitigationSystem::new(BudgetAlgorithm::Wcet);
        let work = Cycles(60_000);
        // 4 rollbacks of a 60k segment: 5×60100 + 4×48 ≈ 300692 cycles.
        let actual = Cycles(5 * 60_100 + 4 * 48);
        let mut t_ds = ds.tracker();
        let mut t_wcet = wcet.tracker();
        assert!(!t_ds.advance(&ds, work, Cycles(270_000), actual, &cp));
        assert!(t_wcet.advance(&wcet, work, Cycles(270_000), actual, &cp));
    }

    #[test]
    fn enough_rollbacks_defeat_everyone() {
        // Beyond the error-rate wall even WCET's headroom is not enough.
        let cp = CheckpointSystem::default();
        let work = Cycles(270_000);
        let actual = Cycles(12 * 270_100); // 11 rollbacks of the largest segment
        for &alg in &BudgetAlgorithm::ALL {
            let sys = MitigationSystem::new(alg);
            let mut tracker = sys.tracker();
            assert!(
                !tracker.advance(&sys, work, Cycles(270_000), actual, &cp),
                "{} absorbed 11 rollbacks of the WCET segment",
                alg.label()
            );
        }
    }

    #[test]
    fn slack_carries_over() {
        // Conservative budgets on cheap segments bank slack that later
        // absorbs a rollback burst an isolated segment could never survive.
        let cp = CheckpointSystem::default();
        let wcet = MitigationSystem::new(BudgetAlgorithm::Wcet);
        let mut tracker = wcet.tracker();
        // Five cheap fault-free segments build slack…
        for _ in 0..5 {
            let work = Cycles(40_000);
            assert!(tracker.advance(
                &wcet,
                work,
                Cycles(270_000),
                cp.fault_free_cycles(work),
                &cp
            ));
        }
        assert!(tracker.slack(&wcet) > 1_000_000.0);
        // …which then swallows four rollbacks of a big segment.
        let work = Cycles(270_000);
        let burst = Cycles(5 * 270_100 + 4 * 48);
        assert!(tracker.advance(&wcet, work, Cycles(270_000), burst, &cp));
        // A fresh tracker (no banked slack) misses the same burst.
        let mut fresh = wcet.tracker();
        assert!(!fresh.advance(&wcet, work, Cycles(270_000), burst, &cp));
    }

    #[test]
    fn validation() {
        let mut sys = MitigationSystem::new(BudgetAlgorithm::Ds);
        sys.validate().unwrap();
        sys.max_speedup = 0.5;
        assert!(sys.validate().is_err());
        let mut sys = MitigationSystem::new(BudgetAlgorithm::Ds);
        sys.ds_margin = 0.9;
        assert!(sys.validate().is_err());
    }

    #[test]
    fn higher_speedup_absorbs_more_noise() {
        let cp = CheckpointSystem::default();
        let mut slow = MitigationSystem::new(BudgetAlgorithm::Ds);
        slow.max_speedup = 1.2;
        let mut fast = MitigationSystem::new(BudgetAlgorithm::Ds);
        fast.max_speedup = 3.0;
        let work = Cycles(100_000);
        // One rollback: 2×100100 + 48.
        let actual = Cycles(2 * 100_100 + 48);
        let mut t_slow = slow.tracker();
        let mut t_fast = fast.tracker();
        assert!(!t_slow.advance(&slow, work, Cycles(270_000), actual, &cp));
        assert!(t_fast.advance(&fast, work, Cycles(270_000), actual, &cp));
    }
}
