//! Closed-form cross-checks for the Monte Carlo harness.
//!
//! For a *single segment with its own deadline* (no slack carry-over), the
//! geometric rollback distribution of Eq. (2) gives the deadline-hit
//! probability in closed form: the segment hits iff its rollback count stays
//! at or below the largest `n` whose total cycles fit the budget at maximum
//! speed. These formulas validate the simulator (the Monte Carlo with
//! carry-over must always do at least as well as the no-carry-over bound)
//! and give instant wall estimates without simulation.

use crate::checkpoint::CheckpointSystem;
use crate::error::FtError;
use crate::error_model::ErrorModel;
use crate::mitigation::MitigationSystem;
use lori_core::units::{Cycles, Probability};

/// Largest rollback count a segment of `work` cycles can absorb within
/// `budget` cycles at the system's maximum speed; `None` if even the
/// fault-free execution does not fit.
#[must_use]
pub fn max_tolerable_rollbacks(
    work: Cycles,
    budget: Cycles,
    system: &MitigationSystem,
    checkpoints: &CheckpointSystem,
) -> Option<u64> {
    let window = checkpoints.fault_free_cycles(work).as_f64()
        / f64::from(checkpoints.checkpoints_per_segment);
    // With k chunks, the worst case puts all rollbacks in one chunk; for the
    // closed form we use the single-chunk (k = 1) system, which is the
    // paper's configuration.
    let capacity = budget.as_f64() * system.max_speedup;
    let fault_free = checkpoints.fault_free_cycles(work).as_f64();
    if capacity < fault_free {
        return None;
    }
    let per_rollback = window + checkpoints.rollback_cycles.as_f64();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Some(((capacity - fault_free) / per_rollback).floor() as u64)
}

/// Closed-form per-segment deadline-hit probability (no slack carry-over):
/// `P(hit) = P(N_rb ≤ n_max) = 1 − (1−q)^{n_max+1}`.
///
/// # Errors
///
/// Returns [`FtError::NonPositive`] via parameter validation.
pub fn segment_hit_probability(
    work: Cycles,
    wcet_work: Cycles,
    errors: &ErrorModel,
    system: &MitigationSystem,
    checkpoints: &CheckpointSystem,
) -> Result<Probability, FtError> {
    system.validate()?;
    checkpoints.validate()?;
    let budget = system.budget(
        checkpoints.fault_free_cycles(work),
        checkpoints.fault_free_cycles(wcet_work),
    );
    let Some(n_max) = max_tolerable_rollbacks(work, budget, system, checkpoints) else {
        return Ok(Probability::ZERO);
    };
    let window = Cycles(
        work.value() / u64::from(checkpoints.checkpoints_per_segment)
            + checkpoints.checkpoint_cycles.value(),
    );
    let q = errors.no_error_probability(window);
    // P(N ≤ n) = 1 − (1−q)^{n+1}
    #[allow(clippy::cast_precision_loss)]
    Ok(Probability::saturating(
        1.0 - q.complement().value().powf((n_max + 1) as f64),
    ))
}

/// Trace-level analytic *lower bound* on the per-segment hit rate under
/// independent per-segment deadlines (slack carry-over in the simulator can
/// only help conservative algorithms).
///
/// # Errors
///
/// Propagates [`segment_hit_probability`] errors and
/// [`FtError::EmptyTrace`].
pub fn trace_hit_rate_no_carryover(
    trace: &[Cycles],
    errors: &ErrorModel,
    system: &MitigationSystem,
    checkpoints: &CheckpointSystem,
) -> Result<f64, FtError> {
    if trace.is_empty() {
        return Err(FtError::EmptyTrace);
    }
    let wcet = trace.iter().copied().max().expect("non-empty");
    let mut total = 0.0;
    for &work in trace {
        total += segment_hit_probability(work, wcet, errors, system, checkpoints)?.value();
    }
    #[allow(clippy::cast_precision_loss)]
    Ok(total / trace.len() as f64)
}

/// Analytic expected cycle overhead of checkpoint/rollback over fault-free
/// execution for a whole trace: `E[C]/C_ff − 1`.
///
/// # Errors
///
/// Returns [`FtError::EmptyTrace`] for an empty trace.
pub fn trace_expected_overhead(
    trace: &[Cycles],
    errors: &ErrorModel,
    checkpoints: &CheckpointSystem,
) -> Result<f64, FtError> {
    if trace.is_empty() {
        return Err(FtError::EmptyTrace);
    }
    let mut expected = 0.0;
    let mut fault_free = 0.0;
    for &work in trace {
        expected += checkpoints.expected_cycles(work, errors);
        fault_free += checkpoints.fault_free_cycles(work).as_f64();
    }
    Ok(expected / fault_free - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mitigation::BudgetAlgorithm;
    use crate::montecarlo::{sweep, SweepConfig};
    use crate::workload::adpcm_reference_trace;

    #[test]
    fn tolerable_rollbacks_ordering() {
        let cp = CheckpointSystem::default();
        let work = Cycles(100_000);
        let wcet = Cycles(270_000);
        let counts: Vec<Option<u64>> = BudgetAlgorithm::ALL
            .iter()
            .map(|&alg| {
                let sys = MitigationSystem::new(alg);
                let budget = sys.budget(cp.fault_free_cycles(work), cp.fault_free_cycles(wcet));
                max_tolerable_rollbacks(work, budget, &sys, &cp)
            })
            .collect();
        // All defined, and non-decreasing toward the conservative end.
        let vals: Vec<u64> = counts.into_iter().map(|c| c.expect("feasible")).collect();
        assert!(vals[0] <= vals[1] && vals[1] <= vals[2] && vals[2] <= vals[3]);
        // WCET (capacity 1.3×283k ≈ 369k) absorbs 2 rollbacks of a 100k segment.
        assert!(vals[3] >= 2, "WCET tolerates {} rollbacks", vals[3]);
    }

    #[test]
    fn infeasible_budget_is_zero_probability() {
        let cp = CheckpointSystem::default();
        let mut sys = MitigationSystem::new(BudgetAlgorithm::Ds);
        sys.max_speedup = 1.0;
        sys.ds_margin = 1.0;
        // Budget == fault-free cycles exactly: zero rollbacks tolerated but
        // feasible; now shrink the work's budget via a tiny wcet mismatch:
        let p = segment_hit_probability(
            Cycles(100_000),
            Cycles(100_000),
            &ErrorModel::new(0.5).expect("p"),
            &sys,
            &cp,
        )
        .expect("probability");
        // q ~ 0 at p=0.5 → essentially never hits.
        assert!(p.value() < 1e-6);
    }

    #[test]
    fn hit_probability_monotone_in_p() {
        let cp = CheckpointSystem::default();
        let sys = MitigationSystem::new(BudgetAlgorithm::Ds2);
        let mut prev = 1.0;
        for &p in &[1e-8, 1e-7, 1e-6, 1e-5, 1e-4] {
            let errors = ErrorModel::new(p).expect("p");
            let hit = segment_hit_probability(Cycles(150_000), Cycles(270_000), &errors, &sys, &cp)
                .expect("probability")
                .value();
            assert!(hit <= prev + 1e-12, "p={p}: {hit} > {prev}");
            prev = hit;
        }
    }

    #[test]
    fn zero_error_rate_always_hits() {
        let cp = CheckpointSystem::default();
        let errors = ErrorModel::new(0.0).expect("p");
        for &alg in &BudgetAlgorithm::ALL {
            let sys = MitigationSystem::new(alg);
            let hit = segment_hit_probability(Cycles(200_000), Cycles(270_000), &errors, &sys, &cp)
                .expect("probability");
            assert!((hit.value() - 1.0).abs() < 1e-12, "{}", alg.label());
        }
    }

    #[test]
    fn analytic_overhead_matches_monte_carlo() {
        let trace = adpcm_reference_trace();
        let cp = CheckpointSystem::default();
        let p = 5e-6;
        let errors = ErrorModel::new(p).expect("p");
        let analytic = trace_expected_overhead(&trace, &errors, &cp).expect("analytic");
        let mc = sweep(
            &[p],
            &trace,
            &SweepConfig {
                runs: 60,
                ..SweepConfig::default()
            },
        )
        .expect("sweep")[0]
            .cycle_overhead;
        assert!(
            (analytic - mc).abs() / analytic < 0.1,
            "analytic {analytic} vs monte carlo {mc}"
        );
    }

    #[test]
    fn carryover_dominates_no_carryover_for_wcet() {
        // The simulator's slack carry-over can only help the conservative
        // algorithm, so its MC hit rate must be ≥ the analytic bound.
        let trace = adpcm_reference_trace();
        let cp = CheckpointSystem::default();
        let p = 4e-6;
        let errors = ErrorModel::new(p).expect("p");
        let sys = MitigationSystem::new(BudgetAlgorithm::Wcet);
        let bound = trace_hit_rate_no_carryover(&trace, &errors, &sys, &cp).expect("bound");
        let mc = sweep(
            &[p],
            &trace,
            &SweepConfig {
                runs: 60,
                ..SweepConfig::default()
            },
        )
        .expect("sweep")[0]
            .hit_rate[3];
        assert!(
            mc + 0.03 >= bound,
            "carry-over MC {mc} below analytic bound {bound}"
        );
    }

    #[test]
    fn empty_trace_rejected() {
        let cp = CheckpointSystem::default();
        let errors = ErrorModel::new(1e-6).expect("p");
        let sys = MitigationSystem::new(BudgetAlgorithm::Ds);
        assert!(trace_hit_rate_no_carryover(&[], &errors, &sys, &cp).is_err());
        assert!(trace_expected_overhead(&[], &errors, &cp).is_err());
    }
}
