//! The Monte Carlo harness of Sec. V-D: sweeps error probability, runs 100
//! simulations per point, and produces the data behind Fig. 5 (average
//! rollbacks per segment) and Fig. 6 (deadline hit rate per algorithm).
//!
//! Every point is a pure function of `(axis index, config, trace)` — the
//! per-point RNG stream is derived from the seed and the point's index,
//! never from timing or worker identity. That purity is what the layers
//! above stack execution modes on: `lori_par::par_map` fans points out
//! over threads, `lori-bench`'s resumable sweep replays them from a WAL,
//! and `lori_par::procpool` (`LORI_WORKERS=<n>`) distributes them across
//! supervised worker processes — all producing bit-identical results.

use crate::checkpoint::CheckpointSystem;
use crate::error::FtError;
use crate::error_model::ErrorModel;
use crate::mitigation::{BudgetAlgorithm, MitigationSystem};
use lori_core::stats::Running;
use lori_core::units::Cycles;
use lori_core::Rng;
use lori_par::Parallelism;

/// Configuration of one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Checkpoint/rollback parameters.
    pub checkpoints: CheckpointSystem,
    /// Mitigation speed headroom / margin (algorithm field is ignored; all
    /// four run).
    pub mitigation: MitigationSystem,
    /// Monte Carlo runs per probability point (paper: 100).
    pub runs: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl SweepConfig {
    /// The paper's Sec. V-D setup: 100 Monte Carlo runs per probability
    /// point, seed 0, default checkpoint and mitigation parameters. Every
    /// `exp-*` binary that reproduces a paper figure starts from this.
    #[must_use]
    pub fn paper() -> Self {
        SweepConfig {
            checkpoints: CheckpointSystem::default(),
            mitigation: MitigationSystem::new(BudgetAlgorithm::Ds),
            runs: 100,
            seed: 0,
        }
    }

    /// Validates the full sweep input: the config itself (positive
    /// parameters, nonzero runs) plus the probability axis and trace it
    /// will run over. [`sweep_with`] calls this, and experiment binaries
    /// call it up front so a bad run dies before any work is spent.
    ///
    /// # Errors
    ///
    /// [`FtError::EmptySweep`] for an empty axis or zero runs,
    /// [`FtError::EmptyTrace`] for an empty trace,
    /// [`FtError::BadProbability`] for non-finite or out-of-range
    /// probabilities, and parameter errors from the checkpoint and
    /// mitigation validators.
    pub fn validate(&self, p_values: &[f64], trace: &[Cycles]) -> Result<(), FtError> {
        if p_values.is_empty() {
            return Err(FtError::EmptySweep("probability point"));
        }
        if self.runs == 0 {
            return Err(FtError::EmptySweep("run"));
        }
        if trace.is_empty() {
            return Err(FtError::EmptyTrace);
        }
        for &p in p_values {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(FtError::BadProbability(p));
            }
        }
        self.checkpoints.validate()?;
        self.mitigation.validate()?;
        Ok(())
    }
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig::paper()
    }
}

/// Results at one error-probability point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The per-cycle error probability.
    pub p: f64,
    /// Average rollbacks per segment (Fig. 5's y-axis).
    pub avg_rollbacks_per_segment: f64,
    /// Standard deviation of per-run average rollbacks.
    pub rollbacks_std: f64,
    /// Deadline hit rate per algorithm, ordered as
    /// [`BudgetAlgorithm::ALL`] (Fig. 6's y-axis).
    pub hit_rate: [f64; 4],
    /// Average cycle overhead over fault-free execution (fraction).
    pub cycle_overhead: f64,
}

/// Runs the full sweep over `p_values` for a segment `trace`, fanning the
/// probability points out over the process-default worker pool
/// ([`lori_par::global`], i.e. `LORI_THREADS`).
///
/// # Errors
///
/// Returns [`FtError::EmptySweep`] for empty probability lists or zero
/// runs, [`FtError::EmptyTrace`] for an empty trace,
/// [`FtError::BadProbability`] for out-of-range probabilities, and
/// propagates parameter-validation errors.
pub fn sweep(
    p_values: &[f64],
    trace: &[Cycles],
    config: &SweepConfig,
) -> Result<Vec<SweepPoint>, FtError> {
    sweep_with(p_values, trace, config, lori_par::global())
}

/// [`sweep`] with an explicit worker pool.
///
/// The output is bit-identical for every worker count: each probability
/// point's RNG stream is split off the root serially *before* the fan-out
/// (`root.split(pi)`, then `point_rng.split(run)` inside the point), every
/// floating-point accumulation stays inside one point's task, and the
/// `ftsched.rollbacks` / `ftsched.deadline_misses` counters are merged
/// with one atomic increment per point.
///
/// # Errors
///
/// Same as [`sweep`].
pub fn sweep_with(
    p_values: &[f64],
    trace: &[Cycles],
    config: &SweepConfig,
    par: Parallelism,
) -> Result<Vec<SweepPoint>, FtError> {
    let tasks = point_tasks(p_values, trace, config)?;
    let _sweep_span = lori_obs::span("ftsched.sweep");
    lori_par::par_map(par, &tasks, |_, task| run_point(task, trace, config))
        .into_iter()
        .collect()
}

/// One probability point's unit of work: its index on the axis, its
/// probability, and the RNG stream that was split off the sweep root for
/// it. Tasks are produced by [`point_tasks`] and executed by
/// [`run_point`]; resumable harnesses schedule any subset of them in any
/// order without changing results.
#[derive(Debug, Clone)]
pub struct PointTask {
    /// Index of this point on the probability axis.
    pub index: usize,
    /// The per-cycle error probability.
    pub p: f64,
    errors: ErrorModel,
    rng: Rng,
}

/// Validates the sweep input and splits one [`PointTask`] per probability
/// point. Streams are split off the root serially, in point order, before
/// any fan-out — the determinism contract: a point's stream depends only
/// on its index, never on scheduling.
///
/// # Errors
///
/// Same as [`SweepConfig::validate`].
pub fn point_tasks(
    p_values: &[f64],
    trace: &[Cycles],
    config: &SweepConfig,
) -> Result<Vec<PointTask>, FtError> {
    config.validate(p_values, trace)?;
    let mut root = Rng::from_seed(config.seed);
    p_values
        .iter()
        .enumerate()
        .map(|(pi, &p)| {
            #[allow(clippy::cast_possible_truncation)]
            let rng = root.split(pi as u64);
            Ok(PointTask {
                index: pi,
                p,
                errors: ErrorModel::new(p)?,
                rng,
            })
        })
        .collect()
}

/// Largest number of rollbacks of each trace segment that any of the four
/// budget algorithms could actually *execute* before every deadline in the
/// run — including all slack conceivably carried over — has irrevocably
/// passed.
///
/// [`CheckpointSystem::execute_segment`] samples the rollback count from
/// the unbounded geometric of Eq. (2) analytically; it never executes the
/// recoveries (its cycle math saturates for exactly that reason). At the
/// top of the Fig. 5 axis the sampled count for a 270k-cycle segment is
/// ~5·10¹¹, so charging raw samples to the `ftsched.rollbacks` counter
/// claimed hundreds of trillions of "simulated" rollbacks per sweep — a
/// physical impossibility for a millisecond run, and the corrupt value PR 5
/// found checked into `results/exp-fig5.manifest.json`. The counter's
/// contract is "recovery events the simulated system processed", and a
/// deadline-scheduled system stops observing a segment's recoveries once
/// even the most generous cumulative budget (Σ budgets × max speed-up) is
/// exhausted, so per-segment counts are clamped to that horizon (+1 for
/// the rollback that overruns it).
///
/// Returned per segment of `trace`, aligned by index. Fig. 5's
/// `avg_rollbacks_per_segment` statistics intentionally keep the raw
/// samples — the figure reports Eq. (2)'s expectation, not executed work.
#[must_use]
pub fn observable_rollback_caps(trace: &[Cycles], config: &SweepConfig) -> Vec<u64> {
    // The most generous whole-run cycle capacity any algorithm can grant:
    // cumulative budget at maximum processor speed.
    let wcet_work = trace.iter().copied().max().unwrap_or(Cycles(0));
    let run_capacity = BudgetAlgorithm::ALL
        .iter()
        .map(|&alg| {
            let sys = MitigationSystem {
                algorithm: alg,
                ..config.mitigation
            };
            trace
                .iter()
                .map(|&work| {
                    sys.budget(
                        config.checkpoints.fault_free_cycles(work),
                        config.checkpoints.fault_free_cycles(wcet_work),
                    )
                    .as_f64()
                })
                .sum::<f64>()
                * sys.max_speedup
        })
        .fold(0.0f64, f64::max);
    trace
        .iter()
        .map(|&work| {
            // Each rollback of this segment re-runs one chunk window and
            // pays the rollback routine; more than capacity/per_rollback of
            // them cannot fit before the run's final deadline.
            let chunk =
                (work.value() / u64::from(config.checkpoints.checkpoints_per_segment)).max(1);
            let per_rollback = Cycles(
                chunk
                    + config.checkpoints.checkpoint_cycles.value()
                    + config.checkpoints.rollback_cycles.value(),
            )
            .as_f64();
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let cap = (run_capacity / per_rollback).floor() as u64;
            cap.saturating_add(1)
        })
        .collect()
}

/// Runs one probability point to completion. Self-contained: every
/// floating-point accumulation stays inside this call, and the
/// `ftsched.rollbacks` / `ftsched.deadline_misses` counters are merged
/// with one atomic increment per point, so metric totals are exact no
/// matter how points interleave across workers. The rollbacks counter
/// records *deadline-observable* rollbacks (see
/// [`observable_rollback_caps`]); the returned [`SweepPoint`] statistics
/// keep the raw Eq. (2) samples.
///
/// This is also a fault-injection site: `panic@sweep.point:<index>` panics
/// when this task's index matches, and `nan@sweep.point` poisons the
/// accumulated cycle total, which the non-finite guard below converts into
/// a typed [`FtError::NonFinite`] instead of letting NaN leak into
/// artifacts.
///
/// # Errors
///
/// [`FtError::NonFinite`] when a per-point statistic comes out non-finite
/// (injected or real).
pub fn run_point(
    task: &PointTask,
    trace: &[Cycles],
    config: &SweepConfig,
) -> Result<SweepPoint, FtError> {
    #[allow(clippy::cast_possible_truncation)]
    lori_fault::check_panic("sweep.point", task.index as u64);
    let _point_span = lori_obs::span_with("ftsched.sweep.point", task.p);
    let wcet_work = trace.iter().copied().max().ok_or(FtError::EmptyTrace)?;
    let systems: Vec<MitigationSystem> = BudgetAlgorithm::ALL
        .iter()
        .map(|&alg| MitigationSystem {
            algorithm: alg,
            ..config.mitigation
        })
        .collect();
    // Per-segment fault-free cycles depend only on the checkpoint config.
    let fault_free_run_total: f64 = trace
        .iter()
        .map(|&work| config.checkpoints.fault_free_cycles(work).as_f64())
        .sum();

    let rollback_caps = observable_rollback_caps(trace, config);
    // Hoist the Eq.-(1) powf out of the runs × segments loop: one plan per
    // trace segment, executed `runs` times with identical RNG consumption.
    let plans: Vec<_> = trace
        .iter()
        .map(|&work| config.checkpoints.plan_segment(work, &task.errors))
        .collect();
    let mut point_rng = task.rng.clone();
    let mut rollback_runs = Running::new();
    let mut point_rollbacks = 0u64;
    let mut hits = [0u64; 4];
    let mut segments_total = 0u64;
    let mut cycles_actual = 0.0f64;
    let mut cycles_fault_free = 0.0f64;
    // One tracker per algorithm, allocated once and reset per run: this
    // loop body executes `runs × |trace|` times per sweep point.
    let mut trackers: Vec<_> = systems.iter().map(MitigationSystem::tracker).collect();
    for run in 0..config.runs {
        #[allow(clippy::cast_possible_truncation)]
        let mut rng = point_rng.split(run as u64);
        let mut run_rollbacks = 0u64;
        let mut run_observable = 0u64;
        for t in &mut trackers {
            t.reset();
        }
        for ((&work, &cap), plan) in trace.iter().zip(&rollback_caps).zip(&plans) {
            let ex = plan.execute(&mut rng);
            run_rollbacks = run_rollbacks.saturating_add(ex.rollbacks);
            run_observable = run_observable.saturating_add(ex.rollbacks.min(cap));
            segments_total += 1;
            cycles_actual += ex.total_cycles.as_f64();
            for ((s, t), h) in systems.iter().zip(&mut trackers).zip(&mut hits) {
                if t.advance(s, work, wcet_work, ex.total_cycles, &config.checkpoints) {
                    *h += 1;
                }
            }
        }
        cycles_fault_free += fault_free_run_total;
        point_rollbacks = point_rollbacks.saturating_add(run_observable);
        #[allow(clippy::cast_precision_loss)]
        rollback_runs.push(run_rollbacks as f64 / trace.len() as f64);
    }
    cycles_actual = lori_fault::poison_f64("sweep.point", cycles_actual);
    lori_obs::counter("ftsched.rollbacks").incr(point_rollbacks);
    lori_obs::counter("ftsched.deadline_misses")
        .incr(4 * segments_total - hits.iter().sum::<u64>());
    #[allow(clippy::cast_precision_loss)]
    let per_alg_total = segments_total as f64;
    #[allow(clippy::cast_precision_loss)]
    let hit_rate = [
        hits[0] as f64 / per_alg_total,
        hits[1] as f64 / per_alg_total,
        hits[2] as f64 / per_alg_total,
        hits[3] as f64 / per_alg_total,
    ];
    let point = SweepPoint {
        p: task.p,
        avg_rollbacks_per_segment: rollback_runs.mean(),
        rollbacks_std: rollback_runs.std_dev(),
        hit_rate,
        cycle_overhead: cycles_actual / cycles_fault_free - 1.0,
    };
    for (what, v) in [
        ("avg_rollbacks_per_segment", point.avg_rollbacks_per_segment),
        ("rollbacks_std", point.rollbacks_std),
        ("cycle_overhead", point.cycle_overhead),
    ] {
        if !v.is_finite() {
            lori_fault::detected("sweep.point");
            return Err(FtError::NonFinite {
                site: "sweep.point",
                what,
            });
        }
    }
    if point.hit_rate.iter().any(|h| !h.is_finite()) {
        lori_fault::detected("sweep.point");
        return Err(FtError::NonFinite {
            site: "sweep.point",
            what: "hit_rate",
        });
    }
    Ok(point)
}

/// The paper's Fig. 5/6 probability axis: log-spaced points from 1e-8 to
/// 1e-4.
#[must_use]
pub fn paper_probability_axis() -> Vec<f64> {
    // 4 decades × 3 mantissas + the closing 1e-4 endpoint.
    let mut v = Vec::with_capacity(13);
    for exp in -8..=-5 {
        for mantissa in [1.0, 2.0, 5.0] {
            v.push(mantissa * 10f64.powi(exp));
        }
    }
    v.push(1e-4);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::adpcm_reference_trace;

    fn quick_config() -> SweepConfig {
        SweepConfig {
            runs: 30,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn fig5_shape_knee_and_wall() {
        let trace = adpcm_reference_trace();
        let points = sweep(&[1e-8, 1e-6, 1e-5, 5e-5], &trace, &quick_config()).unwrap();
        // Negligible at 1e-8.
        assert!(points[0].avg_rollbacks_per_segment < 0.01);
        // Noticeable but below 1 at 1e-6 (the knee).
        assert!(points[1].avg_rollbacks_per_segment > 0.02);
        assert!(points[1].avg_rollbacks_per_segment < 1.0);
        // "More than 10 rollbacks per segment" beyond 1e-5 (paper quotes the
        // regime just past 1e-5; at 5e-5 it must clearly hold).
        assert!(
            points[3].avg_rollbacks_per_segment > 10.0,
            "at 5e-5: {}",
            points[3].avg_rollbacks_per_segment
        );
        // Monotone growth.
        for w in points.windows(2) {
            assert!(w[1].avg_rollbacks_per_segment >= w[0].avg_rollbacks_per_segment);
        }
    }

    #[test]
    fn fig6_shape_cliff_and_ordering() {
        let trace = adpcm_reference_trace();
        let points = sweep(&[1e-8, 3e-6, 1e-5, 1e-4], &trace, &quick_config()).unwrap();
        // Near-perfect hit rates far below the wall, for every algorithm.
        for &h in &points[0].hit_rate {
            assert!(h > 0.999, "hit rate {h} at p=1e-8");
        }
        // Inside the window, conservative algorithms win: DS ≤ DS1.5 ≤ DS2 ≤ WCET.
        let mid = &points[1];
        for w in 0..3 {
            assert!(
                mid.hit_rate[w] <= mid.hit_rate[w + 1] + 0.02,
                "ordering violated at p=3e-6: {:?}",
                mid.hit_rate
            );
        }
        // The window separates them materially.
        assert!(
            mid.hit_rate[3] - mid.hit_rate[0] > 0.05,
            "no spread at p=3e-6: {:?}",
            mid.hit_rate
        );
        // Beyond the wall everyone converges to ~zero.
        for &h in &points[3].hit_rate {
            assert!(h < 0.05, "hit rate {h} at p=1e-4");
        }
    }

    #[test]
    fn hit_rates_monotone_in_p() {
        let trace = adpcm_reference_trace();
        let points = sweep(&[1e-7, 1e-6, 5e-6, 1e-5], &trace, &quick_config()).unwrap();
        for alg in 0..4 {
            for w in points.windows(2) {
                assert!(
                    w[1].hit_rate[alg] <= w[0].hit_rate[alg] + 0.02,
                    "alg {alg} hit rate rose with p"
                );
            }
        }
    }

    #[test]
    fn overhead_grows_with_p() {
        let trace = adpcm_reference_trace();
        let points = sweep(&[1e-8, 1e-5], &trace, &quick_config()).unwrap();
        assert!(points[1].cycle_overhead > points[0].cycle_overhead);
        assert!(points[0].cycle_overhead >= 0.0);
    }

    #[test]
    fn sweep_validation() {
        let trace = adpcm_reference_trace();
        assert!(sweep(&[], &trace, &quick_config()).is_err());
        assert!(sweep(&[1e-6], &[], &quick_config()).is_err());
        let zero_runs = SweepConfig {
            runs: 0,
            ..quick_config()
        };
        assert!(sweep(&[1e-6], &trace, &zero_runs).is_err());
        assert!(sweep(&[2.0], &trace, &quick_config()).is_err());
    }

    #[test]
    fn validate_rejects_bad_axes_and_configs() {
        let trace = adpcm_reference_trace();
        let config = quick_config();
        assert!(config.validate(&[1e-6], &trace).is_ok());
        assert_eq!(
            config.validate(&[], &trace),
            Err(FtError::EmptySweep("probability point"))
        );
        assert_eq!(config.validate(&[1e-6], &[]), Err(FtError::EmptyTrace));
        let zero_runs = SweepConfig {
            runs: 0,
            ..config.clone()
        };
        assert_eq!(
            zero_runs.validate(&[1e-6], &trace),
            Err(FtError::EmptySweep("run"))
        );
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.5, 1.5] {
            assert!(
                matches!(
                    config.validate(&[1e-6, bad], &trace),
                    Err(FtError::BadProbability(_))
                ),
                "p={bad} must be rejected"
            );
        }
        let bad_ckpt = SweepConfig {
            checkpoints: crate::checkpoint::CheckpointSystem {
                checkpoints_per_segment: 0,
                ..Default::default()
            },
            ..config
        };
        assert!(bad_ckpt.validate(&[1e-6], &trace).is_err());
    }

    #[test]
    fn sweep_deterministic_per_seed() {
        let trace = adpcm_reference_trace();
        let a = sweep(&[1e-6], &trace, &quick_config()).unwrap();
        let b = sweep(&[1e-6], &trace, &quick_config()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_sweep_bit_identical_to_serial() {
        let trace = adpcm_reference_trace();
        let axis = paper_probability_axis();
        let config = SweepConfig {
            runs: 40,
            ..SweepConfig::paper()
        };
        let serial = sweep_with(&axis, &trace, &config, Parallelism::serial()).unwrap();
        let parallel = sweep_with(&axis, &trace, &config, Parallelism::new(4)).unwrap();
        // Full-struct equality: every f64 (means, stds, hit rates, cycle
        // overheads) must match bit for bit, not approximately.
        assert_eq!(serial, parallel);
        // And an uneven worker count, so points per worker don't divide
        // evenly either.
        let three = sweep_with(&axis, &trace, &config, Parallelism::new(3)).unwrap();
        assert_eq!(serial, three);
    }

    #[test]
    fn paper_config_is_the_default() {
        assert_eq!(SweepConfig::paper(), SweepConfig::default());
        assert_eq!(SweepConfig::paper().runs, 100);
        assert_eq!(SweepConfig::paper().seed, 0);
    }

    #[test]
    fn paper_axis_is_log_spaced() {
        let axis = paper_probability_axis();
        assert!(axis.len() >= 10);
        assert!(axis.first().unwrap() <= &1e-8);
        assert!(axis.last().unwrap() >= &1e-4);
        for w in axis.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
