//! The register-level error model of Sec. V-A.
//!
//! A cycle is erroneous if any pipeline register holds a wrong value; the
//! per-cycle error probability `p` is static over time. Unlike prior work,
//! the model bounds neither the number of errors nor when they strike —
//! re-computations are just as exposed as first executions.
//!
//! Eq. (1): `Pr(N_e = 0) = (1 − p)^{n_c}`
//! Eq. (2): `Pr(N_rb = n) = (1 − q)^n · q` with `q = (1 − p)^{n_c}` —
//! the number of rollbacks of a segment is geometric.

use crate::error::FtError;
use lori_core::reliability::no_error_probability;
use lori_core::units::{Cycles, Probability};
use lori_core::Rng;

/// The register-level error model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    p: Probability,
}

impl ErrorModel {
    /// Creates a model with per-cycle error probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`FtError::BadProbability`] for `p` outside `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, FtError> {
        Probability::new(p)
            .map(|p| ErrorModel { p })
            .map_err(|_| FtError::BadProbability(p))
    }

    /// The per-cycle error probability.
    #[must_use]
    pub fn p(&self) -> Probability {
        self.p
    }

    /// Eq. (1): probability that a window of `n_c` cycles is error-free.
    #[must_use]
    pub fn no_error_probability(&self, n_c: Cycles) -> Probability {
        no_error_probability(self.p, n_c)
    }

    /// Eq. (2) evaluated at `n`: probability of exactly `n` rollbacks for a
    /// segment of `n_c` cycles.
    #[must_use]
    pub fn rollback_probability(&self, n_c: Cycles, n: u64) -> Probability {
        let q = self.no_error_probability(n_c);
        #[allow(clippy::cast_precision_loss)]
        Probability::saturating(q.complement().value().powf(n as f64) * q.value())
    }

    /// Analytic mean of Eq. (2): `E[N_rb] = (1 − q)/q`. Returns infinity
    /// when a segment can never complete (`q = 0`).
    #[must_use]
    pub fn expected_rollbacks(&self, n_c: Cycles) -> f64 {
        let q = self.no_error_probability(n_c).value();
        if q <= 0.0 {
            f64::INFINITY
        } else {
            (1.0 - q) / q
        }
    }

    /// Samples the number of rollbacks for a segment of `n_c` cycles
    /// (inverse-CDF sampling of the geometric distribution — exact and O(1)
    /// even for tiny `p`).
    ///
    /// # Panics
    ///
    /// Panics if the segment can never complete (`q == 0`), which only
    /// happens for `p == 1` with non-zero `n_c`.
    #[must_use]
    pub fn sample_rollbacks(&self, n_c: Cycles, rng: &mut Rng) -> u64 {
        let q = self.no_error_probability(n_c).value();
        assert!(q > 0.0, "segment can never complete at p = 1");
        rng.geometric(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(ErrorModel::new(1e-6).is_ok());
        assert!(ErrorModel::new(0.0).is_ok());
        assert!(ErrorModel::new(1.0).is_ok());
        assert_eq!(ErrorModel::new(-0.1), Err(FtError::BadProbability(-0.1)));
        assert_eq!(ErrorModel::new(1.1), Err(FtError::BadProbability(1.1)));
    }

    #[test]
    fn eq1_matches_closed_form() {
        let m = ErrorModel::new(1e-6).unwrap();
        let q = m.no_error_probability(Cycles(100_000)).value();
        let direct = (1.0f64 - 1e-6).powi(100_000);
        assert!((q - direct).abs() < 1e-9);
    }

    #[test]
    fn eq2_normalizes() {
        let m = ErrorModel::new(5e-6).unwrap();
        let nc = Cycles(100_000);
        let total: f64 = (0..200)
            .map(|n| m.rollback_probability(nc, n).value())
            .sum();
        assert!((total - 1.0).abs() < 1e-6, "sum {total}");
    }

    #[test]
    fn eq2_mean_matches_analytic() {
        let m = ErrorModel::new(5e-6).unwrap();
        let nc = Cycles(100_000);
        let mean_series: f64 = (0..500)
            .map(|n| n as f64 * m.rollback_probability(nc, n).value())
            .sum();
        let analytic = m.expected_rollbacks(nc);
        assert!((mean_series - analytic).abs() / analytic < 1e-3);
    }

    #[test]
    fn sampled_mean_matches_analytic() {
        let m = ErrorModel::new(1e-5).unwrap();
        let nc = Cycles(150_000);
        let mut rng = Rng::from_seed(1);
        let n = 100_000;
        #[allow(clippy::cast_precision_loss)]
        let mean = (0..n)
            .map(|_| m.sample_rollbacks(nc, &mut rng) as f64)
            .sum::<f64>()
            / f64::from(n);
        let analytic = m.expected_rollbacks(nc);
        assert!(
            (mean - analytic).abs() / analytic < 0.05,
            "sampled {mean} vs analytic {analytic}"
        );
    }

    #[test]
    fn zero_p_never_rolls_back() {
        let m = ErrorModel::new(0.0).unwrap();
        let mut rng = Rng::from_seed(2);
        assert_eq!(m.expected_rollbacks(Cycles(270_000)), 0.0);
        for _ in 0..100 {
            assert_eq!(m.sample_rollbacks(Cycles(270_000), &mut rng), 0);
        }
    }

    #[test]
    fn expected_rollbacks_monotone_in_p_and_nc() {
        let lo = ErrorModel::new(1e-7).unwrap();
        let hi = ErrorModel::new(1e-5).unwrap();
        let nc = Cycles(100_000);
        assert!(hi.expected_rollbacks(nc) > lo.expected_rollbacks(nc));
        assert!(hi.expected_rollbacks(Cycles(270_000)) > hi.expected_rollbacks(Cycles(40_000)));
    }

    #[test]
    fn paper_regime_check() {
        // Paper: beyond 1e-5 the rollbacks exceed 10 per segment (for the
        // longer segments of the trace).
        let m = ErrorModel::new(1e-5).unwrap();
        assert!(m.expected_rollbacks(Cycles(270_000)) > 10.0);
        // And below 1e-6 they are well under 1.
        let m = ErrorModel::new(1e-6).unwrap();
        assert!(m.expected_rollbacks(Cycles(270_000)) < 1.0);
    }

    #[test]
    #[should_panic(expected = "segment can never complete")]
    fn p_one_panics_on_sample() {
        let m = ErrorModel::new(1.0).unwrap();
        let mut rng = Rng::from_seed(3);
        let _ = m.sample_rollbacks(Cycles(10), &mut rng);
    }
}
