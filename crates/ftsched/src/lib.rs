//! # lori-ftsched
//!
//! The paper's original Section-V evaluation: reliability analysis of a
//! fault-tolerant, timing-guaranteed system where a **checkpointing and
//! rollback-recovery** mechanism (functional correctness) collaborates with
//! a **cycle-noise mitigation** mechanism (timing guarantees).
//!
//! - [`error_model`] — the register-level error model: a cycle is erroneous
//!   with static probability `p`; Eq. (1) `Pr(N_e = 0) = (1−p)^{n_c}` and
//!   the geometric rollback distribution of Eq. (2);
//! - [`checkpoint`] — the checkpoint (100 cycles) / rollback (48 cycles)
//!   timing model with unbounded re-computation;
//! - [`workload`] — the ADPCM-like segment trace (segments of 40 k–270 k
//!   cycles, the paper's reported segmentation of the TACLeBench ADPCM
//!   lower sub-band quantization block on the Ariane core);
//! - [`mitigation`] — the four budget algorithms: DS (dynamic-scenario,
//!   most aggressive), DS 1.5×, DS 2×, and WCET (most conservative);
//! - [`montecarlo`] — the 100-runs-per-point Monte Carlo harness producing
//!   Fig. 5 (average rollbacks per segment vs p) and Fig. 6 (deadline hit
//!   rate vs p);
//! - [`analytic`] — closed-form hit-probability and overhead cross-checks
//!   for the Monte Carlo (geometric-distribution algebra);
//! - [`wall`] — error-rate-wall localisation and the parameter-sensitivity
//!   study the paper lists as future work;
//! - [`learning`] — a learned execution-time predictor that adapts DS
//!   budgets online (the paper's suggested learning-based optimisation of
//!   cycle-noise mitigation).

pub mod analytic;
pub mod checkpoint;
pub mod error;
pub mod error_model;
pub mod learning;
pub mod mitigation;
pub mod montecarlo;
pub mod wall;
pub mod workload;

pub use error::FtError;
