//! The ADPCM-like segment workload (Sec. V-D).
//!
//! The paper benchmarks the lower sub-band quantization block of the
//! TACLeBench ADPCM encoder on the Ariane RTL and segments it into pieces
//! of 40 k–270 k cycles. We do not have that RTL run; DESIGN.md documents
//! the substitution: a deterministic synthetic trace with the same reported
//! segment-length range and a periodic structure (real encoder blocks
//! alternate cheap and expensive phases), plus a generator for randomized
//! traces.

use crate::error::FtError;
use lori_core::units::Cycles;
use lori_core::Rng;

/// Smallest segment the paper reports.
pub const MIN_SEGMENT_CYCLES: u64 = 40_000;
/// Largest segment the paper reports.
pub const MAX_SEGMENT_CYCLES: u64 = 270_000;

/// The deterministic reference trace used by the figure reproductions:
/// 64 segments spanning the paper's 40 k–270 k range with an
/// encoder-like periodic structure (deterministic, seed-free).
#[must_use]
pub fn adpcm_reference_trace() -> Vec<Cycles> {
    let n = 64;
    (0..n)
        .map(|i| {
            // Two superposed periodicities + a ramp, mapped into range.
            let i_f = f64::from(i);
            let phase = (i_f * std::f64::consts::TAU / 8.0).sin() * 0.35
                + (i_f * std::f64::consts::TAU / 23.0).sin() * 0.25
                + (i_f / f64::from(n)) * 0.2;
            let t = (0.5 + phase).clamp(0.0, 1.0);
            // Cubing skews the distribution toward short segments — real
            // encoder blocks are mostly cheap with an expensive tail, which
            // is also what makes the WCET allocation genuinely conservative
            // relative to the typical segment.
            let t = t * t * t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Cycles(
                MIN_SEGMENT_CYCLES + ((MAX_SEGMENT_CYCLES - MIN_SEGMENT_CYCLES) as f64 * t) as u64,
            )
        })
        .collect()
}

/// Generates a random trace of `n` segments log-uniform in the paper's
/// range.
///
/// # Errors
///
/// Returns [`FtError::EmptyTrace`] for `n == 0`.
pub fn random_trace(n: usize, rng: &mut Rng) -> Result<Vec<Cycles>, FtError> {
    if n == 0 {
        return Err(FtError::EmptyTrace);
    }
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    Ok((0..n)
        .map(|_| {
            let lo = (MIN_SEGMENT_CYCLES as f64).ln();
            let hi = (MAX_SEGMENT_CYCLES as f64).ln();
            Cycles(rng.uniform_in(lo, hi).exp() as u64)
        })
        .collect())
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Number of segments.
    pub segments: usize,
    /// Shortest segment.
    pub min: Cycles,
    /// Longest segment.
    pub max: Cycles,
    /// Mean segment length in cycles.
    pub mean: f64,
    /// Total cycles.
    pub total: Cycles,
}

/// Computes trace statistics.
///
/// # Errors
///
/// Returns [`FtError::EmptyTrace`] for an empty trace.
pub fn trace_stats(trace: &[Cycles]) -> Result<TraceStats, FtError> {
    if trace.is_empty() {
        return Err(FtError::EmptyTrace);
    }
    let min = trace.iter().copied().min().expect("non-empty");
    let max = trace.iter().copied().max().expect("non-empty");
    let total: Cycles = trace.iter().copied().sum();
    #[allow(clippy::cast_precision_loss)]
    let mean = total.as_f64() / trace.len() as f64;
    Ok(TraceStats {
        segments: trace.len(),
        min,
        max,
        mean,
        total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_trace_matches_paper_range() {
        let trace = adpcm_reference_trace();
        let stats = trace_stats(&trace).unwrap();
        assert_eq!(stats.segments, 64);
        assert!(stats.min.value() >= MIN_SEGMENT_CYCLES);
        assert!(stats.max.value() <= MAX_SEGMENT_CYCLES);
        // The trace should actually span most of the range.
        assert!(stats.min.value() < 80_000, "min {}", stats.min);
        assert!(stats.max.value() > 200_000, "max {}", stats.max);
    }

    #[test]
    fn reference_trace_is_deterministic() {
        assert_eq!(adpcm_reference_trace(), adpcm_reference_trace());
    }

    #[test]
    fn random_trace_in_range() {
        let mut rng = Rng::from_seed(1);
        let trace = random_trace(200, &mut rng).unwrap();
        for &c in &trace {
            assert!(c.value() >= MIN_SEGMENT_CYCLES && c.value() <= MAX_SEGMENT_CYCLES);
        }
        assert!(random_trace(0, &mut rng).is_err());
    }

    #[test]
    fn stats_basic() {
        let trace = vec![Cycles(10), Cycles(20), Cycles(30)];
        let s = trace_stats(&trace).unwrap();
        assert_eq!(s.min, Cycles(10));
        assert_eq!(s.max, Cycles(30));
        assert_eq!(s.total, Cycles(60));
        assert!((s.mean - 20.0).abs() < 1e-12);
        assert!(trace_stats(&[]).is_err());
    }
}
