//! The checkpointing and rollback-recovery timing model of Sec. V-B.
//!
//! Each application segment is atomic: a 100-cycle checkpoint routine runs
//! at the end of every (re-)computation, and every error inserts a 48-cycle
//! rollback routine followed by a full re-computation of the segment. The
//! number of re-computations is unbounded (geometric, Eq. 2).

use crate::error::FtError;
use crate::error_model::ErrorModel;
use lori_core::units::Cycles;
use lori_core::Rng;

/// Checkpoint/rollback cost parameters (defaults from the paper, which takes
/// them from OCEAN \[51\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointSystem {
    /// Cycles per checkpoint routine.
    pub checkpoint_cycles: Cycles,
    /// Cycles per rollback routine.
    pub rollback_cycles: Cycles,
    /// Checkpoints per segment (1 = the paper's setup; more = finer
    /// granularity, used by the wall-sensitivity study E13).
    pub checkpoints_per_segment: u32,
}

impl Default for CheckpointSystem {
    fn default() -> Self {
        CheckpointSystem {
            checkpoint_cycles: Cycles(100),
            rollback_cycles: Cycles(48),
            checkpoints_per_segment: 1,
        }
    }
}

/// The outcome of executing one segment under checkpoint/rollback-recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentExecution {
    /// Total rollbacks across all chunks of the segment.
    pub rollbacks: u64,
    /// Total cycles consumed, including checkpoints and rollbacks.
    pub total_cycles: Cycles,
}

impl CheckpointSystem {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`FtError::NonPositive`] for zero checkpoints per segment.
    pub fn validate(&self) -> Result<(), FtError> {
        if self.checkpoints_per_segment == 0 {
            return Err(FtError::NonPositive {
                what: "checkpoints_per_segment",
                value: 0.0,
            });
        }
        Ok(())
    }

    /// Simulates the execution of a segment of `work` cycles under error
    /// model `errors`, sampling rollbacks per chunk from Eq. (2).
    ///
    /// With `checkpoints_per_segment = k`, the segment is split into `k`
    /// equal chunks, each followed by its own checkpoint; a rollback only
    /// repeats the current chunk.
    #[must_use]
    pub fn execute_segment(
        &self,
        work: Cycles,
        errors: &ErrorModel,
        rng: &mut Rng,
    ) -> SegmentExecution {
        let k = u64::from(self.checkpoints_per_segment);
        let chunk = Cycles((work.value() / k).max(1));
        let mut rollbacks = 0u64;
        let mut total = 0u64;
        for i in 0..k {
            // The last chunk absorbs the remainder.
            let this_chunk = if i == k - 1 {
                Cycles(work.value() - chunk.value() * (k - 1))
            } else {
                chunk
            };
            // A (re-)computation window includes the checkpoint routine,
            // which is just as exposed to errors as the main computation.
            let window = Cycles(this_chunk.value() + self.checkpoint_cycles.value());
            let rb = errors.sample_rollbacks(window, rng);
            rollbacks = rollbacks.saturating_add(rb);
            // Saturating: at extreme p the rollback count can be astronomical;
            // the deadline logic only needs "too many" to stay "too many".
            total = total
                .saturating_add(rb.saturating_add(1).saturating_mul(window.value()))
                .saturating_add(rb.saturating_mul(self.rollback_cycles.value()));
        }
        SegmentExecution {
            rollbacks,
            total_cycles: Cycles(total),
        }
    }

    /// Analytic expectation of total cycles for a segment of `work` cycles:
    /// per chunk, `E[C] = (E[N_rb] + 1)·window + E[N_rb]·rollback`.
    #[must_use]
    pub fn expected_cycles(&self, work: Cycles, errors: &ErrorModel) -> f64 {
        let k = u64::from(self.checkpoints_per_segment);
        let chunk = Cycles((work.value() / k).max(1));
        let mut total = 0.0;
        for i in 0..k {
            let this_chunk = if i == k - 1 {
                Cycles(work.value() - chunk.value() * (k - 1))
            } else {
                chunk
            };
            let window = Cycles(this_chunk.value() + self.checkpoint_cycles.value());
            let n = errors.expected_rollbacks(window);
            total += (n + 1.0) * window.as_f64() + n * self.rollback_cycles.as_f64();
        }
        total
    }

    /// Fault-free cycles for a segment (work + checkpoints).
    #[must_use]
    pub fn fault_free_cycles(&self, work: Cycles) -> Cycles {
        Cycles(
            work.value() + u64::from(self.checkpoints_per_segment) * self.checkpoint_cycles.value(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_is_fault_free() {
        let sys = CheckpointSystem::default();
        let errors = ErrorModel::new(0.0).unwrap();
        let mut rng = Rng::from_seed(1);
        let ex = sys.execute_segment(Cycles(100_000), &errors, &mut rng);
        assert_eq!(ex.rollbacks, 0);
        assert_eq!(ex.total_cycles, Cycles(100_100));
        assert_eq!(sys.fault_free_cycles(Cycles(100_000)), Cycles(100_100));
    }

    #[test]
    fn sampled_cycles_match_expectation() {
        let sys = CheckpointSystem::default();
        let errors = ErrorModel::new(5e-6).unwrap();
        let mut rng = Rng::from_seed(2);
        let work = Cycles(150_000);
        let n = 20_000;
        #[allow(clippy::cast_precision_loss)]
        let mean = (0..n)
            .map(|_| {
                sys.execute_segment(work, &errors, &mut rng)
                    .total_cycles
                    .as_f64()
            })
            .sum::<f64>()
            / f64::from(n);
        let expect = sys.expected_cycles(work, &errors);
        assert!(
            (mean - expect).abs() / expect < 0.02,
            "sampled {mean} vs expected {expect}"
        );
    }

    #[test]
    fn each_rollback_costs_window_plus_rollback() {
        let sys = CheckpointSystem::default();
        let errors = ErrorModel::new(3e-5).unwrap();
        let mut rng = Rng::from_seed(3);
        let work = Cycles(40_000);
        for _ in 0..200 {
            let ex = sys.execute_segment(work, &errors, &mut rng);
            let window = 40_000 + 100;
            let expect = (ex.rollbacks + 1) * window + ex.rollbacks * 48;
            assert_eq!(ex.total_cycles.value(), expect);
        }
    }

    #[test]
    fn finer_checkpointing_reduces_recovery_cost_at_high_p() {
        // At high error rates, smaller chunks waste less work per rollback.
        let coarse = CheckpointSystem::default();
        let fine = CheckpointSystem {
            checkpoints_per_segment: 8,
            ..CheckpointSystem::default()
        };
        let errors = ErrorModel::new(2e-5).unwrap();
        let work = Cycles(270_000);
        assert!(fine.expected_cycles(work, &errors) < coarse.expected_cycles(work, &errors));
    }

    #[test]
    fn coarser_checkpointing_wins_at_low_p() {
        // At negligible error rates, extra checkpoints are pure overhead.
        let coarse = CheckpointSystem::default();
        let fine = CheckpointSystem {
            checkpoints_per_segment: 8,
            ..CheckpointSystem::default()
        };
        let errors = ErrorModel::new(1e-9).unwrap();
        let work = Cycles(270_000);
        assert!(coarse.expected_cycles(work, &errors) < fine.expected_cycles(work, &errors));
    }

    #[test]
    fn chunking_preserves_total_work() {
        let sys = CheckpointSystem {
            checkpoints_per_segment: 7,
            ..CheckpointSystem::default()
        };
        let errors = ErrorModel::new(0.0).unwrap();
        let mut rng = Rng::from_seed(4);
        // 100000 not divisible by 7: remainder must not be lost.
        let ex = sys.execute_segment(Cycles(100_000), &errors, &mut rng);
        assert_eq!(ex.total_cycles.value(), 100_000 + 7 * 100);
    }

    #[test]
    fn validation() {
        let bad = CheckpointSystem {
            checkpoints_per_segment: 0,
            ..CheckpointSystem::default()
        };
        assert!(bad.validate().is_err());
        assert!(CheckpointSystem::default().validate().is_ok());
    }
}
