//! The checkpointing and rollback-recovery timing model of Sec. V-B.
//!
//! Each application segment is atomic: a 100-cycle checkpoint routine runs
//! at the end of every (re-)computation, and every error inserts a 48-cycle
//! rollback routine followed by a full re-computation of the segment. The
//! number of re-computations is unbounded (geometric, Eq. 2).

use crate::error::FtError;
use crate::error_model::ErrorModel;
use lori_core::units::Cycles;
use lori_core::Rng;

/// Checkpoint/rollback cost parameters (defaults from the paper, which takes
/// them from OCEAN \[51\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointSystem {
    /// Cycles per checkpoint routine.
    pub checkpoint_cycles: Cycles,
    /// Cycles per rollback routine.
    pub rollback_cycles: Cycles,
    /// Checkpoints per segment (1 = the paper's setup; more = finer
    /// granularity, used by the wall-sensitivity study E13).
    pub checkpoints_per_segment: u32,
}

impl Default for CheckpointSystem {
    fn default() -> Self {
        CheckpointSystem {
            checkpoint_cycles: Cycles(100),
            rollback_cycles: Cycles(48),
            checkpoints_per_segment: 1,
        }
    }
}

/// The outcome of executing one segment under checkpoint/rollback-recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentExecution {
    /// Total rollbacks across all chunks of the segment.
    pub rollbacks: u64,
    /// Total cycles consumed, including checkpoints and rollbacks.
    pub total_cycles: Cycles,
}

impl CheckpointSystem {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`FtError::NonPositive`] for zero checkpoints per segment.
    pub fn validate(&self) -> Result<(), FtError> {
        if self.checkpoints_per_segment == 0 {
            return Err(FtError::NonPositive {
                what: "checkpoints_per_segment",
                value: 0.0,
            });
        }
        Ok(())
    }

    /// The per-chunk recovery windows of a `work`-cycle segment: each of
    /// the `k` chunks plus its checkpoint routine, the last chunk absorbing
    /// the division remainder.
    fn windows(&self, work: Cycles) -> impl Iterator<Item = Cycles> + '_ {
        let k = u64::from(self.checkpoints_per_segment);
        let chunk = Cycles((work.value() / k).max(1));
        (0..k).map(move |i| {
            let this_chunk = if i == k - 1 {
                Cycles(work.value() - chunk.value() * (k - 1))
            } else {
                chunk
            };
            // A (re-)computation window includes the checkpoint routine,
            // which is just as exposed to errors as the main computation.
            Cycles(this_chunk.value() + self.checkpoint_cycles.value())
        })
    }

    /// Simulates the execution of a segment of `work` cycles under error
    /// model `errors`, sampling rollbacks per chunk from Eq. (2).
    ///
    /// With `checkpoints_per_segment = k`, the segment is split into `k`
    /// equal chunks, each followed by its own checkpoint; a rollback only
    /// repeats the current chunk.
    ///
    /// Loops that re-execute the same `(work, errors)` pair many times
    /// should precompute a [`SegmentPlan`] via
    /// [`CheckpointSystem::plan_segment`]: it hoists the Eq.-(1) `powf` out
    /// of the draw loop while consuming the RNG identically.
    #[must_use]
    pub fn execute_segment(
        &self,
        work: Cycles,
        errors: &ErrorModel,
        rng: &mut Rng,
    ) -> SegmentExecution {
        let mut rollbacks = 0u64;
        let mut total = 0u64;
        for window in self.windows(work) {
            let rb = errors.sample_rollbacks(window, rng);
            rollbacks = rollbacks.saturating_add(rb);
            // Saturating: at extreme p the rollback count can be astronomical;
            // the deadline logic only needs "too many" to stay "too many".
            total = total
                .saturating_add(rb.saturating_add(1).saturating_mul(window.value()))
                .saturating_add(rb.saturating_mul(self.rollback_cycles.value()));
        }
        SegmentExecution {
            rollbacks,
            total_cycles: Cycles(total),
        }
    }

    /// Precomputes the per-chunk windows and Eq.-(1) survival
    /// probabilities of a segment, so repeated executions skip the `powf`
    /// per draw. [`SegmentPlan::execute`] makes exactly the geometric
    /// draws [`CheckpointSystem::execute_segment`] would, in the same
    /// order, with the same parameters.
    ///
    /// # Panics
    ///
    /// Panics if a chunk can never complete (`q == 0`, i.e. `p == 1`) —
    /// the same condition `execute_segment` panics on at draw time.
    #[must_use]
    pub fn plan_segment(&self, work: Cycles, errors: &ErrorModel) -> SegmentPlan {
        let chunks = self
            .windows(work)
            .map(|window| {
                let q = errors.no_error_probability(window).value();
                assert!(q > 0.0, "segment can never complete at p = 1");
                (window, q)
            })
            .collect();
        SegmentPlan {
            chunks,
            rollback_cycles: self.rollback_cycles,
        }
    }

    /// Analytic expectation of total cycles for a segment of `work` cycles:
    /// per chunk, `E[C] = (E[N_rb] + 1)·window + E[N_rb]·rollback`.
    #[must_use]
    pub fn expected_cycles(&self, work: Cycles, errors: &ErrorModel) -> f64 {
        let k = u64::from(self.checkpoints_per_segment);
        let chunk = Cycles((work.value() / k).max(1));
        let mut total = 0.0;
        for i in 0..k {
            let this_chunk = if i == k - 1 {
                Cycles(work.value() - chunk.value() * (k - 1))
            } else {
                chunk
            };
            let window = Cycles(this_chunk.value() + self.checkpoint_cycles.value());
            let n = errors.expected_rollbacks(window);
            total += (n + 1.0) * window.as_f64() + n * self.rollback_cycles.as_f64();
        }
        total
    }

    /// Fault-free cycles for a segment (work + checkpoints).
    #[must_use]
    pub fn fault_free_cycles(&self, work: Cycles) -> Cycles {
        Cycles(
            work.value() + u64::from(self.checkpoints_per_segment) * self.checkpoint_cycles.value(),
        )
    }
}

/// A precomputed segment-execution plan: per-chunk recovery windows with
/// their Eq.-(1) survival probabilities already evaluated. Built once per
/// `(segment, error model)` pair by [`CheckpointSystem::plan_segment`];
/// Monte Carlo loops then call [`SegmentPlan::execute`] per run, paying
/// one geometric draw per chunk and no `powf`.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentPlan {
    /// Per-chunk (recovery window, no-error probability).
    chunks: Vec<(Cycles, f64)>,
    rollback_cycles: Cycles,
}

impl SegmentPlan {
    /// Executes the planned segment, drawing rollbacks per chunk —
    /// bit-identical RNG consumption and cycle accounting to
    /// [`CheckpointSystem::execute_segment`] with the plan's parameters.
    #[must_use]
    pub fn execute(&self, rng: &mut Rng) -> SegmentExecution {
        let mut rollbacks = 0u64;
        let mut total = 0u64;
        for &(window, q) in &self.chunks {
            let rb = rng.geometric(q);
            rollbacks = rollbacks.saturating_add(rb);
            total = total
                .saturating_add(rb.saturating_add(1).saturating_mul(window.value()))
                .saturating_add(rb.saturating_mul(self.rollback_cycles.value()));
        }
        SegmentExecution {
            rollbacks,
            total_cycles: Cycles(total),
        }
    }
}

/// Magic prefix of a serialized [`CheckpointState`].
const CHECKPOINT_MAGIC: &[u8; 4] = b"LCKP";

/// A serializable snapshot of execution progress — the thing the
/// 100-cycle checkpoint routine would persist. The wire format is
/// `"LCKP"` + four little-endian `u64` fields + an FNV-1a-64 checksum
/// over everything before it, so restore can tell silent corruption (a
/// radiation upset in checkpoint storage, or an injected
/// `bitflip@checkpoint.state`) from valid state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointState {
    /// Index of the segment the checkpoint was taken in.
    pub segment: u64,
    /// Cycles completed up to the checkpoint.
    pub completed_cycles: u64,
    /// Rollbacks observed so far.
    pub rollbacks: u64,
    /// RNG stream position to resume from.
    pub rng_seed: u64,
}

impl CheckpointState {
    /// Serialized size in bytes: magic + 4 fields + checksum.
    pub const WIRE_SIZE: usize = 4 + 4 * 8 + 8;

    /// Serializes the state with its checksum appended. This is the
    /// `checkpoint.state` injection site: an armed
    /// `bitflip@checkpoint.state` directive flips one seed-deterministic
    /// bit of the output, which [`CheckpointState::from_bytes`] must then
    /// detect.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(Self::WIRE_SIZE);
        bytes.extend_from_slice(CHECKPOINT_MAGIC);
        for field in [
            self.segment,
            self.completed_cycles,
            self.rollbacks,
            self.rng_seed,
        ] {
            bytes.extend_from_slice(&field.to_le_bytes());
        }
        let crc = lori_fault::fnv64(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        lori_fault::corrupt_bytes("checkpoint.state", &mut bytes);
        bytes
    }

    /// Deserializes and validates a snapshot.
    ///
    /// # Errors
    ///
    /// [`FtError::CorruptCheckpoint`] when the buffer is truncated, the
    /// magic is wrong, or the checksum does not match. Detections are
    /// counted under the `fault.detected` metric.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FtError> {
        let corrupt = |reason| {
            lori_fault::detected("checkpoint.state");
            Err(FtError::CorruptCheckpoint { reason })
        };
        if bytes.len() != Self::WIRE_SIZE {
            return corrupt("truncated");
        }
        if &bytes[..4] != CHECKPOINT_MAGIC {
            return corrupt("bad magic");
        }
        let payload = &bytes[..Self::WIRE_SIZE - 8];
        let stored = u64::from_le_bytes(bytes[Self::WIRE_SIZE - 8..].try_into().expect("8 bytes"));
        if lori_fault::fnv64(payload) != stored {
            return corrupt("checksum mismatch");
        }
        let field = |i: usize| {
            u64::from_le_bytes(
                bytes[4 + 8 * i..4 + 8 * (i + 1)]
                    .try_into()
                    .expect("8 bytes"),
            )
        };
        Ok(CheckpointState {
            segment: field(0),
            completed_cycles: field(1),
            rollbacks: field(2),
            rng_seed: field(3),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_is_fault_free() {
        let sys = CheckpointSystem::default();
        let errors = ErrorModel::new(0.0).unwrap();
        let mut rng = Rng::from_seed(1);
        let ex = sys.execute_segment(Cycles(100_000), &errors, &mut rng);
        assert_eq!(ex.rollbacks, 0);
        assert_eq!(ex.total_cycles, Cycles(100_100));
        assert_eq!(sys.fault_free_cycles(Cycles(100_000)), Cycles(100_100));
    }

    #[test]
    fn sampled_cycles_match_expectation() {
        let sys = CheckpointSystem::default();
        let errors = ErrorModel::new(5e-6).unwrap();
        let mut rng = Rng::from_seed(2);
        let work = Cycles(150_000);
        let n = 20_000;
        #[allow(clippy::cast_precision_loss)]
        let mean = (0..n)
            .map(|_| {
                sys.execute_segment(work, &errors, &mut rng)
                    .total_cycles
                    .as_f64()
            })
            .sum::<f64>()
            / f64::from(n);
        let expect = sys.expected_cycles(work, &errors);
        assert!(
            (mean - expect).abs() / expect < 0.02,
            "sampled {mean} vs expected {expect}"
        );
    }

    #[test]
    fn each_rollback_costs_window_plus_rollback() {
        let sys = CheckpointSystem::default();
        let errors = ErrorModel::new(3e-5).unwrap();
        let mut rng = Rng::from_seed(3);
        let work = Cycles(40_000);
        for _ in 0..200 {
            let ex = sys.execute_segment(work, &errors, &mut rng);
            let window = 40_000 + 100;
            let expect = (ex.rollbacks + 1) * window + ex.rollbacks * 48;
            assert_eq!(ex.total_cycles.value(), expect);
        }
    }

    #[test]
    fn finer_checkpointing_reduces_recovery_cost_at_high_p() {
        // At high error rates, smaller chunks waste less work per rollback.
        let coarse = CheckpointSystem::default();
        let fine = CheckpointSystem {
            checkpoints_per_segment: 8,
            ..CheckpointSystem::default()
        };
        let errors = ErrorModel::new(2e-5).unwrap();
        let work = Cycles(270_000);
        assert!(fine.expected_cycles(work, &errors) < coarse.expected_cycles(work, &errors));
    }

    #[test]
    fn coarser_checkpointing_wins_at_low_p() {
        // At negligible error rates, extra checkpoints are pure overhead.
        let coarse = CheckpointSystem::default();
        let fine = CheckpointSystem {
            checkpoints_per_segment: 8,
            ..CheckpointSystem::default()
        };
        let errors = ErrorModel::new(1e-9).unwrap();
        let work = Cycles(270_000);
        assert!(coarse.expected_cycles(work, &errors) < fine.expected_cycles(work, &errors));
    }

    #[test]
    fn chunking_preserves_total_work() {
        let sys = CheckpointSystem {
            checkpoints_per_segment: 7,
            ..CheckpointSystem::default()
        };
        let errors = ErrorModel::new(0.0).unwrap();
        let mut rng = Rng::from_seed(4);
        // 100000 not divisible by 7: remainder must not be lost.
        let ex = sys.execute_segment(Cycles(100_000), &errors, &mut rng);
        assert_eq!(ex.total_cycles.value(), 100_000 + 7 * 100);
    }

    #[test]
    fn plan_matches_execute_segment_draw_for_draw() {
        // The hoisted-powf plan must consume the RNG exactly like the
        // per-call path, across chunk counts and error rates (including a
        // work size not divisible by k).
        for k in [1u32, 3, 8] {
            let sys = CheckpointSystem {
                checkpoints_per_segment: k,
                ..CheckpointSystem::default()
            };
            for p in [0.0, 1e-6, 3e-5] {
                let errors = ErrorModel::new(p).unwrap();
                let work = Cycles(100_000);
                let plan = sys.plan_segment(work, &errors);
                let mut rng_a = Rng::from_seed(42);
                let mut rng_b = Rng::from_seed(42);
                for _ in 0..500 {
                    assert_eq!(
                        sys.execute_segment(work, &errors, &mut rng_a),
                        plan.execute(&mut rng_b),
                        "k={k} p={p}"
                    );
                }
                assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "k={k} p={p}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "segment can never complete")]
    fn plan_p_one_panics_at_plan_time() {
        let sys = CheckpointSystem::default();
        let errors = ErrorModel::new(1.0).unwrap();
        let _ = sys.plan_segment(Cycles(10), &errors);
    }

    #[test]
    fn validation() {
        let bad = CheckpointSystem {
            checkpoints_per_segment: 0,
            ..CheckpointSystem::default()
        };
        assert!(bad.validate().is_err());
        assert!(CheckpointSystem::default().validate().is_ok());
    }

    fn sample_state() -> CheckpointState {
        CheckpointState {
            segment: 42,
            completed_cycles: 1_234_567,
            rollbacks: 3,
            rng_seed: 0xDEAD_BEEF,
        }
    }

    /// Serialization must run clean here; holding an inert plan takes the
    /// process-wide activation lock so a concurrently running injection
    /// test cannot corrupt these bytes.
    fn inert_guard() -> lori_fault::PlanGuard {
        lori_fault::activate(&lori_fault::FaultPlan::parse("panic@checkpoint.state:0").unwrap())
    }

    #[test]
    fn checkpoint_state_round_trips() {
        let _guard = inert_guard();
        let state = sample_state();
        let bytes = state.to_bytes();
        assert_eq!(bytes.len(), CheckpointState::WIRE_SIZE);
        assert_eq!(CheckpointState::from_bytes(&bytes).unwrap(), state);
    }

    #[test]
    fn checkpoint_state_detects_any_single_bit_flip() {
        let _guard = inert_guard();
        let bytes = sample_state().to_bytes();
        for bit in 0..bytes.len() * 8 {
            let mut corrupted = bytes.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            let err = CheckpointState::from_bytes(&corrupted).expect_err("flip must be detected");
            assert!(
                matches!(err, FtError::CorruptCheckpoint { .. }),
                "bit {bit}: {err}"
            );
        }
    }

    #[test]
    fn checkpoint_state_detects_truncation() {
        let _guard = inert_guard();
        let bytes = sample_state().to_bytes();
        let err = CheckpointState::from_bytes(&bytes[..bytes.len() - 1]).unwrap_err();
        assert_eq!(
            err,
            FtError::CorruptCheckpoint {
                reason: "truncated"
            }
        );
    }

    #[test]
    fn injected_bitflip_is_detected_on_restore() {
        // An armed bitflip@checkpoint.state corrupts exactly the
        // serialization path; restore must convert it into a typed error,
        // never silently resume from bad state.
        let plan = lori_fault::FaultPlan::parse("bitflip@checkpoint.state:seed=9").unwrap();
        let _guard = lori_fault::activate(&plan);
        let bytes = sample_state().to_bytes();
        let err = CheckpointState::from_bytes(&bytes).expect_err("corruption must be caught");
        assert!(matches!(err, FtError::CorruptCheckpoint { .. }));
    }
}
