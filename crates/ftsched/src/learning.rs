//! Learning-based cycle-noise prediction (Sec. V: "cycle-noise mitigation
//! system can be optimized by learning-based approaches to improve its
//! prediction accuracy of execution time").
//!
//! [`LearnedBudget`] trains a linear regressor online: after each segment it
//! observes the actual consumed cycles and refits a model mapping
//! fault-free requirement → consumed cycles. Budgets then anticipate
//! rollback inflation instead of assuming fault-free execution, pushing the
//! DS cliff toward higher error rates without paying WCET's constant
//! pessimism (experiment E14).

use crate::checkpoint::CheckpointSystem;
use crate::error::FtError;
use crate::error_model::ErrorModel;
use crate::mitigation::MitigationSystem;
use lori_core::units::Cycles;
use lori_core::Rng;
use lori_ml::data::Dataset;
use lori_ml::linreg::LinearRegression;
use lori_ml::traits::Regressor;

/// An online-learned budget predictor.
#[derive(Debug, Clone)]
pub struct LearnedBudget {
    /// Observed (fault-free cycles, actual cycles) pairs.
    history: Vec<(f64, f64)>,
    /// Refit interval (segments).
    refit_every: usize,
    /// Current model, if enough history exists.
    model: Option<LinearRegression>,
    /// Multiplicative safety margin on predictions.
    margin: f64,
}

impl LearnedBudget {
    /// Creates a predictor with the given refit interval and margin.
    ///
    /// # Errors
    ///
    /// Returns [`FtError::NonPositive`] for a zero refit interval or a
    /// margin below 1.
    pub fn new(refit_every: usize, margin: f64) -> Result<Self, FtError> {
        if refit_every == 0 {
            return Err(FtError::NonPositive {
                what: "refit_every",
                value: 0.0,
            });
        }
        if margin < 1.0 {
            return Err(FtError::NonPositive {
                what: "margin - 1",
                value: margin - 1.0,
            });
        }
        Ok(LearnedBudget {
            history: Vec::new(),
            refit_every,
            model: None,
            margin,
        })
    }

    /// Predicted budget (in cycles) for a segment whose fault-free
    /// requirement is `fault_free`. Before the first fit this falls back to
    /// the fault-free requirement times the margin (plain DS behaviour).
    #[must_use]
    pub fn budget(&self, fault_free: Cycles) -> Cycles {
        let base = match &self.model {
            Some(m) => m.predict(&[fault_free.as_f64()]).max(fault_free.as_f64()),
            None => fault_free.as_f64(),
        };
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        Cycles((base * self.margin) as u64)
    }

    /// Records an observation and refits when due.
    pub fn observe(&mut self, fault_free: Cycles, actual: Cycles) {
        self.history.push((fault_free.as_f64(), actual.as_f64()));
        if self.history.len().is_multiple_of(self.refit_every) && self.history.len() >= 8 {
            let rows: Vec<Vec<f64>> = self.history.iter().map(|&(x, _)| vec![x]).collect();
            let ys: Vec<f64> = self.history.iter().map(|&(_, y)| y).collect();
            if let Ok(ds) = Dataset::from_rows(rows, ys) {
                if let Ok(m) = LinearRegression::fit(&ds, 1e-6) {
                    self.model = Some(m);
                }
            }
        }
    }

    /// Whether a model has been fitted yet.
    #[must_use]
    pub fn is_fitted(&self) -> bool {
        self.model.is_some()
    }
}

/// Result of comparing plain DS against learned-budget DS over a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnedComparison {
    /// Hit rate of plain DS.
    pub ds_hit_rate: f64,
    /// Hit rate of learned-budget DS.
    pub learned_hit_rate: f64,
    /// Mean budget of plain DS (cycles).
    pub ds_mean_budget: f64,
    /// Mean budget of learned DS (cycles).
    pub learned_mean_budget: f64,
}

/// Runs the comparison: the trace is repeated `laps` times so the learner
/// has history to train on; hit rates are measured over the final lap.
///
/// # Errors
///
/// Propagates validation errors.
pub fn compare_ds_vs_learned(
    trace: &[Cycles],
    p: f64,
    checkpoints: &CheckpointSystem,
    mitigation: &MitigationSystem,
    laps: usize,
    seed: u64,
) -> Result<LearnedComparison, FtError> {
    if trace.is_empty() {
        return Err(FtError::EmptyTrace);
    }
    if laps == 0 {
        return Err(FtError::EmptySweep("lap"));
    }
    checkpoints.validate()?;
    mitigation.validate()?;
    let errors = ErrorModel::new(p)?;
    let mut rng = Rng::from_seed(seed);
    let mut learner = LearnedBudget::new(8, mitigation.ds_margin)?;

    let mut ds_hits = 0u64;
    let mut learned_hits = 0u64;
    let mut measured = 0u64;
    let mut ds_budget_sum = 0.0;
    let mut learned_budget_sum = 0.0;
    let mut ds_tracker = mitigation.tracker();
    let mut learned_tracker = mitigation.tracker();

    for lap in 0..laps {
        let is_final = lap == laps - 1;
        if is_final {
            // Hit rates are measured over the final lap with fresh slack so
            // training laps cannot bank (or owe) budget.
            ds_tracker = mitigation.tracker();
            learned_tracker = mitigation.tracker();
        }
        for &work in trace {
            let fault_free = checkpoints.fault_free_cycles(work);
            let ex = checkpoints.execute_segment(work, &errors, &mut rng);
            // Plain DS budget: fault-free × margin.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let ds_budget = Cycles((fault_free.as_f64() * mitigation.ds_margin) as u64);
            let learned_budget = learner.budget(fault_free);
            let ds_hit = ds_tracker.advance_with_budget(mitigation, ds_budget, ex.total_cycles);
            let learned_hit =
                learned_tracker.advance_with_budget(mitigation, learned_budget, ex.total_cycles);
            if is_final {
                measured += 1;
                ds_budget_sum += ds_budget.as_f64();
                learned_budget_sum += learned_budget.as_f64();
                if ds_hit {
                    ds_hits += 1;
                }
                if learned_hit {
                    learned_hits += 1;
                }
            }
            learner.observe(fault_free, ex.total_cycles);
        }
    }
    #[allow(clippy::cast_precision_loss)]
    Ok(LearnedComparison {
        ds_hit_rate: ds_hits as f64 / measured as f64,
        learned_hit_rate: learned_hits as f64 / measured as f64,
        ds_mean_budget: ds_budget_sum / measured as f64,
        learned_mean_budget: learned_budget_sum / measured as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mitigation::BudgetAlgorithm;
    use crate::workload::adpcm_reference_trace;

    #[test]
    fn learner_validation() {
        assert!(LearnedBudget::new(0, 1.05).is_err());
        assert!(LearnedBudget::new(8, 0.9).is_err());
        assert!(LearnedBudget::new(8, 1.05).is_ok());
    }

    #[test]
    fn learner_fits_after_enough_observations() {
        let mut l = LearnedBudget::new(4, 1.05).unwrap();
        assert!(!l.is_fitted());
        for i in 0..16u64 {
            let ff = Cycles(40_000 + i * 10_000);
            l.observe(ff, Cycles((ff.as_f64() * 1.5) as u64));
        }
        assert!(l.is_fitted());
        // Budgets now anticipate the 1.5× inflation.
        let b = l.budget(Cycles(100_000)).as_f64();
        assert!(b > 140_000.0, "budget {b}");
    }

    #[test]
    fn unfitted_learner_acts_like_ds() {
        let l = LearnedBudget::new(8, 1.05).unwrap();
        let b = l.budget(Cycles(100_000)).as_f64();
        assert!((b - 105_000.0).abs() < 2.0);
    }

    #[test]
    fn learned_budgets_win_in_the_window() {
        // At an error rate inside the cliff window, learned budgets should
        // hit more deadlines than plain DS.
        let trace = adpcm_reference_trace();
        let cp = CheckpointSystem::default();
        let mit = MitigationSystem::new(BudgetAlgorithm::Ds);
        let cmp = compare_ds_vs_learned(&trace, 4e-6, &cp, &mit, 6, 1).unwrap();
        assert!(
            cmp.learned_hit_rate > cmp.ds_hit_rate,
            "learned {} vs ds {}",
            cmp.learned_hit_rate,
            cmp.ds_hit_rate
        );
        // The learner pays with bigger budgets — but far less than WCET's
        // constant 270k-scale budget.
        assert!(cmp.learned_mean_budget > cmp.ds_mean_budget);
    }

    #[test]
    fn comparison_validation() {
        let cp = CheckpointSystem::default();
        let mit = MitigationSystem::new(BudgetAlgorithm::Ds);
        assert!(compare_ds_vs_learned(&[], 1e-6, &cp, &mit, 3, 1).is_err());
        let trace = adpcm_reference_trace();
        assert!(compare_ds_vs_learned(&trace, 1e-6, &cp, &mit, 0, 1).is_err());
        assert!(compare_ds_vs_learned(&trace, 2.0, &cp, &mit, 3, 1).is_err());
    }

    #[test]
    fn at_negligible_p_both_hit_everything() {
        let trace = adpcm_reference_trace();
        let cp = CheckpointSystem::default();
        let mit = MitigationSystem::new(BudgetAlgorithm::Ds);
        let cmp = compare_ds_vs_learned(&trace, 1e-9, &cp, &mit, 3, 2).unwrap();
        assert!((cmp.ds_hit_rate - 1.0).abs() < 1e-9);
        assert!((cmp.learned_hit_rate - 1.0).abs() < 1e-9);
    }
}
