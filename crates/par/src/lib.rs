//! # lori-par — deterministic std-only parallelism for LORI
//!
//! The workspace's hot loops (the Sec. V-D Monte Carlo sweep, library
//! characterization, ML-characterizer training, HDC batch encoding) are
//! embarrassingly parallel: every task owns a pre-split [`lori_core::Rng`]
//! sub-stream or is a pure function of its input. This crate fans those
//! tasks out over scoped OS threads while keeping one hard contract:
//!
//! **The output of [`par_map`] is identical — bit for bit — for every
//! worker count, including the serial fast path.**
//!
//! That holds because work is partitioned by *index*, never by timing:
//! each item's closure receives exactly the same inputs it would receive
//! serially, results are written back into their input slot, and any
//! cross-task accumulation (obs counters, RNG splitting) happens either in
//! commutative atomics or serially before the fan-out.
//!
//! Worker counts resolve from the `LORI_THREADS` environment variable via
//! [`Parallelism::from_env`] (unset or `0` → all available cores; `1` →
//! serial fast path with zero thread spawns). Panics inside a task
//! propagate to the caller after all workers have stopped.

#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// How many worker threads a parallel region may use.
///
/// `Parallelism` is a plain value — cheap to copy, explicit to pass — so
/// library code can be tested at fixed worker counts regardless of the
/// process environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: NonZeroUsize,
}

impl Parallelism {
    /// Exactly one worker: the calling thread. [`par_map`] takes a
    /// zero-spawn fast path.
    #[must_use]
    pub fn serial() -> Self {
        Parallelism {
            threads: NonZeroUsize::MIN,
        }
    }

    /// A fixed worker count. `0` is clamped to `1`.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Parallelism {
            threads: NonZeroUsize::new(threads).unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// All cores the OS reports (at least one).
    #[must_use]
    pub fn available() -> Self {
        Parallelism {
            threads: std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// Resolves the worker count from `LORI_THREADS`.
    ///
    /// Unset, empty, unparsable, or `0` all mean "use every available
    /// core"; any other value is the exact thread count (`1` = serial).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("LORI_THREADS") {
            Ok(s) => match s.trim().parse::<usize>() {
                Ok(0) | Err(_) => Self::available(),
                Ok(n) => Self::new(n),
            },
            Err(_) => Self::available(),
        }
    }

    /// The worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// `true` when the region runs on the calling thread only.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.threads.get() == 1
    }
}

/// The process-wide default parallelism, resolved from `LORI_THREADS` once
/// on first use and cached for the lifetime of the process.
#[must_use]
pub fn global() -> Parallelism {
    static GLOBAL: OnceLock<Parallelism> = OnceLock::new();
    *GLOBAL.get_or_init(Parallelism::from_env)
}

/// Maps `f` over `items`, in parallel, preserving input order.
///
/// `f` receives `(index, &item)` so tasks can key into pre-split RNG
/// streams or shared lookup tables. The result vector satisfies
/// `out[i] == f(i, &items[i])` regardless of the worker count — workers
/// steal *indices* from a shared atomic cursor and write results back into
/// the slot of their index, so scheduling order never shows in the output.
///
/// Each worker opens a `par.worker` obs span (a no-op unless a recorder is
/// installed), so traces show the fan-out shape; metric counters touched
/// inside `f` are process-global atomics and stay exact under parallelism.
///
/// # Panics
///
/// If `f` panics for any item, the panic is propagated to the caller after
/// every worker has stopped (first panicking worker in spawn order wins).
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = par.threads().min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let slots_ptr = SlotWriter::new(&mut slots);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            let f = &f;
            let slots_ptr = &slots_ptr;
            handles.push(scope.spawn(move || {
                let _span = lori_obs::span("par.worker");
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let out = f(i, &items[i]);
                    // Index `i` is claimed by exactly one worker, so this
                    // write is race-free (see SlotWriter).
                    unsafe { slots_ptr.write(i, out) };
                }
            }));
        }
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            if let Err(payload) = h.join() {
                panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

/// Maps `f` over fixed-size chunks of `items`, in parallel, preserving
/// chunk order.
///
/// `f` receives `(chunk_index, chunk)` where every chunk has `chunk_size`
/// elements except possibly the last. Chunk boundaries depend only on
/// `chunk_size` — never on the worker count — so the output is
/// deterministic under any [`Parallelism`]. Use this when per-item work is
/// too small to amortize dispatch (e.g. HDC batch encoding).
///
/// # Panics
///
/// Panics if `chunk_size == 0`; propagates panics from `f` like
/// [`par_map`].
pub fn par_chunks<T, R, F>(par: Parallelism, items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
    par_map(par, &chunks, |i, chunk| f(i, chunk))
}

/// A shared writer over pre-allocated result slots.
///
/// Safety contract: [`SlotWriter::write`] may be called at most once per
/// index, with distinct indices never racing. `par_map` guarantees this by
/// handing out each index exactly once through an atomic cursor.
struct SlotWriter<R> {
    base: *mut Option<R>,
    len: usize,
}

// The raw pointer is only dereferenced under par_map's exclusive-index
// protocol; the underlying buffer outlives the thread scope.
unsafe impl<R: Send> Sync for SlotWriter<R> {}

impl<R> SlotWriter<R> {
    fn new(slots: &mut [Option<R>]) -> Self {
        SlotWriter {
            base: slots.as_mut_ptr(),
            len: slots.len(),
        }
    }

    /// # Safety
    ///
    /// `i` must be in bounds and claimed by exactly one caller, ever.
    unsafe fn write(&self, i: usize, value: R) {
        debug_assert!(i < self.len);
        *self.base.add(i) = Some(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..257).collect();
        let f = |i: usize, &x: &u64| x.wrapping_mul(31).wrapping_add(i as u64);
        let serial = par_map(Parallelism::serial(), &items, f);
        for workers in [2, 3, 4, 8] {
            let parallel = par_map(Parallelism::new(workers), &items, f);
            assert_eq!(serial, parallel, "worker count {workers}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        let out = par_map(Parallelism::new(4), &items, |_, &x| x + 1);
        assert!(out.is_empty());
        let chunked = par_chunks(Parallelism::new(4), &items, 8, |_, c| c.len());
        assert!(chunked.is_empty());
    }

    #[test]
    fn single_item_takes_serial_fast_path() {
        let out = par_map(Parallelism::new(8), &[5u32], |i, &x| (i, x * 2));
        assert_eq!(out, vec![(0, 10)]);
    }

    #[test]
    fn panic_propagates_from_worker() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(Parallelism::new(4), &items, |_, &x| {
                assert!(x != 17, "poison item");
                x
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(ToString::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("poison item"), "payload: {msg}");
    }

    #[test]
    fn panic_propagates_on_serial_path() {
        let result = std::panic::catch_unwind(|| {
            par_map(Parallelism::serial(), &[1u32], |_, _| -> u32 {
                panic!("serial poison")
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn par_chunks_boundaries_independent_of_workers() {
        let items: Vec<usize> = (0..100).collect();
        let f = |ci: usize, chunk: &[usize]| (ci, chunk.iter().sum::<usize>());
        let serial = par_chunks(Parallelism::serial(), &items, 7, f);
        let parallel = par_chunks(Parallelism::new(4), &items, 7, f);
        assert_eq!(serial, parallel);
        // 100 items in chunks of 7 → 15 chunks, last of size 2.
        assert_eq!(serial.len(), 15);
        assert_eq!(
            serial.iter().map(|&(_, s)| s).sum::<usize>(),
            (0..100).sum::<usize>()
        );
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_panics() {
        let _ = par_chunks(Parallelism::serial(), &[1u8], 0, |_, c| c.len());
    }

    #[test]
    fn parallelism_resolution() {
        assert!(Parallelism::serial().is_serial());
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert_eq!(Parallelism::new(6).threads(), 6);
        assert!(Parallelism::available().threads() >= 1);
        // from_env reads the ambient variable; whatever it is, the result
        // is at least one thread.
        assert!(Parallelism::from_env().threads() >= 1);
        assert!(global().threads() >= 1);
    }

    #[test]
    fn results_use_every_input() {
        // A map whose output encodes its index catches any slot misrouting.
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(Parallelism::new(4), &items, |i, &x| {
            assert_eq!(i, x);
            i * 2
        });
        assert_eq!(out.len(), 1000);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * 2);
        }
    }
}
