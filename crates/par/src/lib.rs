//! # lori-par — deterministic std-only parallelism for LORI
//!
//! The workspace's hot loops (the Sec. V-D Monte Carlo sweep, library
//! characterization, ML-characterizer training, HDC batch encoding) are
//! embarrassingly parallel: every task owns a pre-split [`lori_core::Rng`]
//! sub-stream or is a pure function of its input. This crate fans those
//! tasks out over scoped OS threads while keeping one hard contract:
//!
//! **The output of [`par_map`] is identical — bit for bit — for every
//! worker count, including the serial fast path.**
//!
//! That holds because work is partitioned by *index*, never by timing:
//! each item's closure receives exactly the same inputs it would receive
//! serially, results are written back into their input slot, and any
//! cross-task accumulation (obs counters, RNG splitting) happens either in
//! commutative atomics or serially before the fan-out.
//!
//! Worker counts resolve from the `LORI_THREADS` environment variable via
//! [`Parallelism::from_env`] (unset or `0` → all available cores; `1` →
//! serial fast path with zero thread spawns). Panics inside a task
//! propagate to the caller after all workers have stopped.

#![warn(missing_docs)]

pub mod procpool;

use std::num::NonZeroUsize;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// How many worker threads a parallel region may use.
///
/// `Parallelism` is a plain value — cheap to copy, explicit to pass — so
/// library code can be tested at fixed worker counts regardless of the
/// process environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: NonZeroUsize,
}

impl Parallelism {
    /// Exactly one worker: the calling thread. [`par_map`] takes a
    /// zero-spawn fast path.
    #[must_use]
    pub fn serial() -> Self {
        Parallelism {
            threads: NonZeroUsize::MIN,
        }
    }

    /// A fixed worker count. `0` is clamped to `1`.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Parallelism {
            threads: NonZeroUsize::new(threads).unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// All cores the OS reports (at least one).
    #[must_use]
    pub fn available() -> Self {
        Parallelism {
            threads: std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// Resolves the worker count from `LORI_THREADS`.
    ///
    /// Unset, empty, unparsable, or `0` all mean "use every available
    /// core"; any other value is the exact thread count (`1` = serial).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("LORI_THREADS") {
            Ok(s) => match s.trim().parse::<usize>() {
                Ok(0) | Err(_) => Self::available(),
                Ok(n) => Self::new(n),
            },
            Err(_) => Self::available(),
        }
    }

    /// The worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// `true` when the region runs on the calling thread only.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.threads.get() == 1
    }
}

/// The process-wide default parallelism, resolved from `LORI_THREADS` once
/// on first use and cached for the lifetime of the process.
#[must_use]
pub fn global() -> Parallelism {
    static GLOBAL: OnceLock<Parallelism> = OnceLock::new();
    *GLOBAL.get_or_init(Parallelism::from_env)
}

/// Maps `f` over `items`, in parallel, preserving input order.
///
/// `f` receives `(index, &item)` so tasks can key into pre-split RNG
/// streams or shared lookup tables. The result vector satisfies
/// `out[i] == f(i, &items[i])` regardless of the worker count — workers
/// steal *indices* from a shared atomic cursor and write results back into
/// the slot of their index, so scheduling order never shows in the output.
///
/// Each worker opens a `par.worker` obs span (a no-op unless a recorder is
/// installed), so traces show the fan-out shape; metric counters touched
/// inside `f` are process-global atomics and stay exact under parallelism.
/// The caller's [`lori_obs::TraceContext`] is captured before the fan-out
/// and adopted inside every worker, so worker spans are recorded as
/// children of the span enclosing the `par_map` call rather than as
/// orphan per-thread roots.
///
/// # Panics
///
/// If `f` panics for any item, the panic is propagated to the caller after
/// every worker has stopped (first panicking worker in spawn order wins).
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = par.threads().min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let slots_ptr = SlotWriter::new(&mut slots);
    // Captured once, outside the workers: every worker span becomes a
    // child of the span open at the call site.
    let ctx = lori_obs::TraceContext::current();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            let f = &f;
            let slots_ptr = &slots_ptr;
            handles.push(scope.spawn(move || {
                let _ctx = ctx.adopt();
                let _span = lori_obs::span("par.worker");
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let out = f(i, &items[i]);
                    // Index `i` is claimed by exactly one worker, so this
                    // write is race-free (see SlotWriter).
                    unsafe { slots_ptr.write(i, out) };
                }
            }));
        }
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            if let Err(payload) = h.join() {
                panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

/// Maps `f` over fixed-size chunks of `items`, in parallel, preserving
/// chunk order.
///
/// `f` receives `(chunk_index, chunk)` where every chunk has `chunk_size`
/// elements except possibly the last. Chunk boundaries depend only on
/// `chunk_size` — never on the worker count — so the output is
/// deterministic under any [`Parallelism`]. Use this when per-item work is
/// too small to amortize dispatch (e.g. HDC batch encoding).
///
/// # Panics
///
/// Panics if `chunk_size == 0`; propagates panics from `f` like
/// [`par_map`].
pub fn par_chunks<T, R, F>(par: Parallelism, items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
    par_map(par, &chunks, |i, chunk| f(i, chunk))
}

/// What to do when a task panics inside a parallel region.
///
/// The default, [`RecoveryPolicy::FailFast`], matches [`par_map`]: the
/// panic propagates to the caller after every worker has stopped. Under
/// [`RecoveryPolicy::Quarantine`] each task runs inside `catch_unwind`;
/// a panicking task is retried deterministically (same index, same
/// inputs, up to `retries` times) and, if it keeps failing, quarantined:
/// its slot is reported as failed while every other task completes
/// normally. Because tasks are pure functions of their index, retries
/// and quarantines never perturb other tasks' results — the surviving
/// outputs are bit-identical to a fault-free run at any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Propagate the first panic (the [`par_map`] contract).
    #[default]
    FailFast,
    /// Catch panics per task, retry deterministically, then quarantine.
    Quarantine {
        /// Re-executions to attempt after the first failure.
        retries: u32,
    },
}

impl RecoveryPolicy {
    /// Resolves the policy from `LORI_RECOVERY`: unset/`fail-fast` →
    /// [`RecoveryPolicy::FailFast`]; `quarantine` or `quarantine:<n>` →
    /// [`RecoveryPolicy::Quarantine`] with `n` retries (default 1).
    /// Unrecognized values fall back to fail-fast.
    #[must_use]
    pub fn from_env() -> Self {
        std::env::var("LORI_RECOVERY")
            .map(|s| Self::parse(&s))
            .unwrap_or_default()
    }

    /// Parses a `LORI_RECOVERY`-style policy string (see [`Self::from_env`]).
    #[must_use]
    pub fn parse(s: &str) -> Self {
        let s = s.trim().to_ascii_lowercase();
        if let Some(rest) = s.strip_prefix("quarantine") {
            let retries = rest
                .strip_prefix(':')
                .and_then(|n| n.parse().ok())
                .unwrap_or(1);
            RecoveryPolicy::Quarantine { retries }
        } else {
            RecoveryPolicy::FailFast
        }
    }
}

/// One task that exhausted its retries under quarantine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFailure {
    /// The input index of the failed task.
    pub index: usize,
    /// Total executions attempted (1 + retries).
    pub attempts: u32,
    /// The panic payload, when it was a string.
    pub message: String,
}

/// The outcome of [`par_map_recover`]: per-slot results plus the
/// quarantined failures in input order.
#[derive(Debug)]
pub struct RecoveredMap<R> {
    /// `results[i]` is `Some(f(i, &items[i]))`, or `None` when the task
    /// was quarantined.
    pub results: Vec<Option<R>>,
    /// Quarantined tasks, sorted by input index.
    pub failures: Vec<TaskFailure>,
}

impl<R> RecoveredMap<R> {
    /// `true` when every task completed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

/// [`par_map`] with a panic-recovery policy.
///
/// Under [`RecoveryPolicy::FailFast`] this is exactly [`par_map`] (and
/// panics propagate). Under [`RecoveryPolicy::Quarantine`] every task
/// increments the `fault.tasks` obs counter and panicking tasks are
/// retried then quarantined; every retry increments `fault.retried` and
/// every quarantined task increments `fault.quarantined`, so run
/// manifests record the blast radius (and the derived
/// `fault.quarantine_rate` = quarantined / tasks). A quarantine also
/// dumps the [`lori_obs::flight`] recorder (when armed), leaving a black
/// box of the events leading up to the failure.
///
/// # Panics
///
/// Only under [`RecoveryPolicy::FailFast`], when `f` panics.
pub fn par_map_recover<T, R, F>(
    par: Parallelism,
    policy: RecoveryPolicy,
    items: &[T],
    f: F,
) -> RecoveredMap<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let RecoveryPolicy::Quarantine { retries } = policy else {
        return RecoveredMap {
            results: par_map(par, items, f).into_iter().map(Some).collect(),
            failures: Vec::new(),
        };
    };
    let retried = lori_obs::counter("fault.retried");
    let quarantined = lori_obs::counter("fault.quarantined");
    lori_obs::counter("fault.tasks").incr(items.len() as u64);
    let failures: Mutex<Vec<TaskFailure>> = Mutex::new(Vec::new());
    let results = par_map(par, items, |i, item| {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match std::panic::catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                Ok(out) => return Some(out),
                Err(payload) => {
                    if attempts <= retries {
                        retried.incr(1);
                        continue;
                    }
                    quarantined.incr(1);
                    // Black-box the events that led here (no-op unless the
                    // flight recorder is armed with a dump path).
                    let _ = lori_obs::flight::dump("quarantine");
                    failures
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(TaskFailure {
                            index: i,
                            attempts,
                            message: panic_message(payload.as_ref()),
                        });
                    return None;
                }
            }
        }
    });
    let mut failures = failures
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // Completion order is worker-dependent; the report is input-ordered.
    failures.sort_by_key(|t| t.index);
    RecoveredMap { results, failures }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(ToString::to_string)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

/// A shared writer over pre-allocated result slots.
///
/// Safety contract: [`SlotWriter::write`] may be called at most once per
/// index, with distinct indices never racing. `par_map` guarantees this by
/// handing out each index exactly once through an atomic cursor.
struct SlotWriter<R> {
    base: *mut Option<R>,
    len: usize,
}

// The raw pointer is only dereferenced under par_map's exclusive-index
// protocol; the underlying buffer outlives the thread scope.
unsafe impl<R: Send> Sync for SlotWriter<R> {}

impl<R> SlotWriter<R> {
    fn new(slots: &mut [Option<R>]) -> Self {
        SlotWriter {
            base: slots.as_mut_ptr(),
            len: slots.len(),
        }
    }

    /// # Safety
    ///
    /// `i` must be in bounds and claimed by exactly one caller, ever.
    unsafe fn write(&self, i: usize, value: R) {
        debug_assert!(i < self.len);
        *self.base.add(i) = Some(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..257).collect();
        let f = |i: usize, &x: &u64| x.wrapping_mul(31).wrapping_add(i as u64);
        let serial = par_map(Parallelism::serial(), &items, f);
        for workers in [2, 3, 4, 8] {
            let parallel = par_map(Parallelism::new(workers), &items, f);
            assert_eq!(serial, parallel, "worker count {workers}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        let out = par_map(Parallelism::new(4), &items, |_, &x| x + 1);
        assert!(out.is_empty());
        let chunked = par_chunks(Parallelism::new(4), &items, 8, |_, c| c.len());
        assert!(chunked.is_empty());
    }

    #[test]
    fn single_item_takes_serial_fast_path() {
        let out = par_map(Parallelism::new(8), &[5u32], |i, &x| (i, x * 2));
        assert_eq!(out, vec![(0, 10)]);
    }

    #[test]
    fn panic_propagates_from_worker() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(Parallelism::new(4), &items, |_, &x| {
                assert!(x != 17, "poison item");
                x
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(ToString::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("poison item"), "payload: {msg}");
    }

    #[test]
    fn panic_propagates_on_serial_path() {
        let result = std::panic::catch_unwind(|| {
            par_map(Parallelism::serial(), &[1u32], |_, _| -> u32 {
                panic!("serial poison")
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn par_chunks_boundaries_independent_of_workers() {
        let items: Vec<usize> = (0..100).collect();
        let f = |ci: usize, chunk: &[usize]| (ci, chunk.iter().sum::<usize>());
        let serial = par_chunks(Parallelism::serial(), &items, 7, f);
        let parallel = par_chunks(Parallelism::new(4), &items, 7, f);
        assert_eq!(serial, parallel);
        // 100 items in chunks of 7 → 15 chunks, last of size 2.
        assert_eq!(serial.len(), 15);
        assert_eq!(
            serial.iter().map(|&(_, s)| s).sum::<usize>(),
            (0..100).sum::<usize>()
        );
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_panics() {
        let _ = par_chunks(Parallelism::serial(), &[1u8], 0, |_, c| c.len());
    }

    #[test]
    fn parallelism_resolution() {
        assert!(Parallelism::serial().is_serial());
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert_eq!(Parallelism::new(6).threads(), 6);
        assert!(Parallelism::available().threads() >= 1);
        // from_env reads the ambient variable; whatever it is, the result
        // is at least one thread.
        assert!(Parallelism::from_env().threads() >= 1);
        assert!(global().threads() >= 1);
    }

    #[test]
    fn results_use_every_input() {
        // A map whose output encodes its index catches any slot misrouting.
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(Parallelism::new(4), &items, |i, &x| {
            assert_eq!(i, x);
            i * 2
        });
        assert_eq!(out.len(), 1000);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * 2);
        }
    }

    #[test]
    fn quarantine_isolates_the_poisoned_task() {
        let items: Vec<usize> = (0..64).collect();
        let clean = par_map(Parallelism::new(4), &items, |_, &x| x * 3);
        for workers in [1, 2, 4, 8] {
            let out = par_map_recover(
                Parallelism::new(workers),
                RecoveryPolicy::Quarantine { retries: 1 },
                &items,
                |_, &x| {
                    assert!(x != 17, "injected failure");
                    x * 3
                },
            );
            assert_eq!(out.failures.len(), 1);
            assert_eq!(out.failures[0].index, 17);
            assert_eq!(out.failures[0].attempts, 2, "1 try + 1 retry");
            assert!(out.failures[0].message.contains("injected failure"));
            assert!(!out.is_complete());
            for (i, slot) in out.results.iter().enumerate() {
                if i == 17 {
                    assert!(slot.is_none());
                } else {
                    assert_eq!(*slot, Some(clean[i]), "survivors bit-identical");
                }
            }
        }
    }

    #[test]
    fn quarantine_retry_recovers_transient_failures() {
        use std::sync::atomic::AtomicU32;
        let items = [0usize; 4];
        let tries = AtomicU32::new(0);
        let out = par_map_recover(
            Parallelism::serial(),
            RecoveryPolicy::Quarantine { retries: 2 },
            &items,
            |i, _| {
                // Task 2 fails on its first attempt only.
                if i == 2 && tries.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("transient");
                }
                i
            },
        );
        assert!(out.is_complete());
        assert_eq!(out.results, vec![Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(tries.load(Ordering::Relaxed), 2, "one retry consumed");
    }

    #[test]
    fn fail_fast_still_propagates() {
        let items: Vec<usize> = (0..8).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map_recover(
                Parallelism::serial(),
                RecoveryPolicy::FailFast,
                &items,
                |_, &x| {
                    assert!(x != 3, "boom");
                    x
                },
            )
        });
        assert!(caught.is_err());
    }

    #[test]
    fn recovery_policy_parsing() {
        assert_eq!(RecoveryPolicy::parse("fail-fast"), RecoveryPolicy::FailFast);
        assert_eq!(
            RecoveryPolicy::parse("quarantine"),
            RecoveryPolicy::Quarantine { retries: 1 }
        );
        assert_eq!(
            RecoveryPolicy::parse("Quarantine:3"),
            RecoveryPolicy::Quarantine { retries: 3 }
        );
        assert_eq!(RecoveryPolicy::parse("nonsense"), RecoveryPolicy::FailFast);
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::FailFast);
    }
}
