//! Crash-tolerant multi-process sweep execution: supervised workers
//! claiming checksummed WAL shards through atomic lease files.
//!
//! The thread pool in [`crate::par_map`] dies with its process: one
//! kill -9, OOM, or panic storm takes the whole campaign down. This
//! module applies the rollback-recovery discipline the workload
//! *simulates* to the executor *running* it:
//!
//! - With `LORI_WORKERS=<n>` a **supervisor** re-execs the current binary
//!   `n` times in worker mode, splitting the sweep into `LORI_SHARDS`
//!   contiguous index ranges, each backed by its own checksummed WAL
//!   (`<name>.shard-<k>.wal.jsonl`, same format as the PR 3 resume log).
//! - A **worker** claims its shard through an atomic lease file
//!   (`O_EXCL` create; stale leases stolen via `rename`, which the
//!   filesystem serializes so exactly one thief wins), resumes the shard
//!   WAL, computes only the missing units, appends each durably, and
//!   heartbeats the lease from a side thread.
//! - The supervisor polls `waitpid` and the lease heartbeats: a dead or
//!   stalled worker is detected, killed if necessary, its lease
//!   reclaimed, its completed WAL entries replayed, and the remainder
//!   reassigned with bounded exponential backoff. A shard that keeps
//!   failing is **poisoned** after `LORI_WORKER_RETRIES` re-assignments —
//!   `LORI_RECOVERY`'s quarantine semantics at process granularity.
//!
//! **Determinism.** Every unit is a pure function of its index; shard
//! boundaries depend only on `(total, shards)`; merging dedups by index;
//! and a unit recomputed after a crash (or by two racing supervisors)
//! re-produces byte-identical JSON. So the merged result — and the final
//! points artifact — is bit-identical for any `LORI_WORKERS` ×
//! `LORI_THREADS` × crash schedule, including kill -9 of workers and of
//! the supervisor itself.
//!
//! The crash machinery is itself fault-injectable through
//! `LORI_FAULT_PLAN`: `kill@procpool.worker-kill:<shard>` aborts the
//! worker holding shard `<shard>`, `stall@procpool.worker-stall:<shard>`
//! freezes it (heartbeats stop, the supervisor must notice), and
//! `bitflip@procpool.lease-corrupt` corrupts lease bytes on write. The
//! index-addressed kinds take `attempts=<n>` (default 1) so a fault can
//! be scheduled to fire on the first attempt and let the retry succeed,
//! or on every attempt to force poisoning.

use lori_obs::Value;
use std::collections::HashSet;
use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Environment variable carrying trace context across the exec boundary:
/// `<epoch>:<parent_sid>`, set per dispatch by [`supervise`]. The epoch is
/// a supervisor-issued spawn sequence number (unique per worker attempt)
/// that salts the worker's span/thread ids so they cannot collide with any
/// other process in the tree; the parent sid is the supervisor's
/// `procpool.dispatch` span, under which the worker's root span parents.
pub const TRACE_PARENT_ENV: &str = "LORI_PROCPOOL_TRACE_PARENT";

/// Parses [`TRACE_PARENT_ENV`] as `(epoch, parent_sid)`. `None` outside a
/// supervised worker (or when the variable is malformed).
#[must_use]
pub fn trace_parent_from_env() -> Option<(u64, u64)> {
    let raw = std::env::var(TRACE_PARENT_ENV).ok()?;
    let (epoch, parent) = raw.trim().split_once(':')?;
    Some((epoch.parse().ok()?, parent.parse().ok()?))
}

/// Fault-plan site: abort (SIGKILL-equivalent) the worker running shard N.
pub const SITE_WORKER_KILL: &str = "procpool.worker-kill";
/// Fault-plan site: freeze the worker running shard N (heartbeats stop).
pub const SITE_WORKER_STALL: &str = "procpool.worker-stall";
/// Fault-plan site: corrupt lease bytes on write.
pub const SITE_LEASE_CORRUPT: &str = "procpool.lease-corrupt";

/// Worker exit code: shard complete (or already complete).
pub const EXIT_DONE: i32 = 0;
/// Worker exit code: another live worker holds the lease; try again later.
pub const EXIT_LEASE_BUSY: i32 = 75;
/// Worker exit code: our lease was stolen mid-run (we were presumed dead).
pub const EXIT_LEASE_LOST: i32 = 76;
/// Worker exit code: shard complete except for quarantined units, listed
/// in the shard's fail file.
pub const EXIT_QUARANTINED: i32 = 77;

/// The process-level execution mode, resolved from `LORI_WORKERS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Threads-in-one-process (the default).
    Off,
    /// Supervise this many worker processes.
    Workers(usize),
}

/// Resolves `LORI_WORKERS`: unset, empty, `off`, `0`, or unparsable mean
/// [`Mode::Off`]; any positive integer means that many worker processes.
#[must_use]
pub fn mode() -> Mode {
    match std::env::var("LORI_WORKERS") {
        Ok(s) => {
            let s = s.trim();
            if s.is_empty() || s.eq_ignore_ascii_case("off") {
                return Mode::Off;
            }
            match s.parse::<usize>() {
                Ok(0) | Err(_) => Mode::Off,
                Ok(n) => Mode::Workers(n),
            }
        }
        Err(_) => Mode::Off,
    }
}

/// The identity a supervisor hands a spawned worker via environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerRole {
    /// Worker slot id (stable across the pool, used for flight dumps).
    pub worker: usize,
    /// The shard this worker must claim and complete.
    pub shard: usize,
    /// Total shard count (so worker and supervisor agree on bounds).
    pub shards: usize,
    /// The supervisor's attempt counter for this shard (0-based).
    pub attempt: u32,
}

/// Detects worker mode from the `LORI_PROCPOOL_*` environment set by
/// [`supervise`]. `None` in ordinary (supervisor or single-process) runs.
#[must_use]
pub fn worker_role() -> Option<WorkerRole> {
    if std::env::var("LORI_PROCPOOL_ROLE").as_deref() != Ok("worker") {
        return None;
    }
    let get = |k: &str| std::env::var(k).ok()?.trim().parse::<usize>().ok();
    Some(WorkerRole {
        worker: get("LORI_PROCPOOL_WORKER")?,
        shard: get("LORI_PROCPOOL_SHARD")?,
        shards: get("LORI_PROCPOOL_SHARDS")?,
        #[allow(clippy::cast_possible_truncation)]
        attempt: get("LORI_PROCPOOL_ATTEMPT")? as u32,
    })
}

/// Supervision knobs, resolved from the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Worker processes to keep running (`LORI_WORKERS`).
    pub workers: usize,
    /// Shard count (`LORI_SHARDS`, default `workers * 2` so reassignment
    /// has slack).
    pub shards: usize,
    /// Lease heartbeat interval in ms (`LORI_HEARTBEAT_MS`, default 100).
    pub heartbeat_ms: u64,
    /// Heartbeat silence after which a worker counts as stalled and its
    /// lease as stealable (`LORI_STALL_TIMEOUT_MS`, default 5000).
    pub stall_timeout_ms: u64,
    /// Shard re-assignments before poisoning (`LORI_WORKER_RETRIES`,
    /// default 2).
    pub retries: u32,
    /// Exponential-backoff base in ms (`LORI_BACKOFF_MS`, default 50;
    /// capped at 16x the base).
    pub backoff_ms: u64,
    /// Keep shard WAL/lease/metrics files after the merge
    /// (`LORI_PROCPOOL_KEEP=1`; default: clean up).
    pub keep_files: bool,
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

impl PoolConfig {
    /// Resolves every knob from the environment for a pool of `workers`.
    #[must_use]
    pub fn from_env(workers: usize) -> Self {
        let workers = workers.max(1);
        #[allow(clippy::cast_possible_truncation)]
        let retries = env_u64("LORI_WORKER_RETRIES", 2) as u32;
        PoolConfig {
            workers,
            shards: env_u64("LORI_SHARDS", (workers * 2) as u64) as usize,
            heartbeat_ms: env_u64("LORI_HEARTBEAT_MS", 100),
            stall_timeout_ms: env_u64("LORI_STALL_TIMEOUT_MS", 5000),
            retries,
            backoff_ms: env_u64("LORI_BACKOFF_MS", 50),
            keep_files: std::env::var("LORI_PROCPOOL_KEEP").as_deref() == Ok("1"),
        }
    }

    fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u64 << attempt.saturating_sub(1).min(4);
        Duration::from_millis(self.backoff_ms.saturating_mul(factor))
    }
}

/// The half-open unit range `[lo, hi)` of shard `k` out of `shards` over
/// `total` units: contiguous, balanced, and a pure function of its inputs
/// — never of worker count or timing.
#[must_use]
pub fn shard_bounds(total: usize, shards: usize, k: usize) -> (usize, usize) {
    let shards = shards.max(1);
    let base = total / shards;
    let rem = total % shards;
    let lo = k * base + k.min(rem);
    let hi = lo + base + usize::from(k < rem);
    (lo.min(total), hi.min(total))
}

/// The checksummed WAL for shard `k` of experiment `name`.
#[must_use]
pub fn shard_wal_path(dir: &Path, name: &str, k: usize) -> PathBuf {
    dir.join(format!("{name}.shard-{k}.wal.jsonl"))
}

/// The lease file for shard `k` of experiment `name`.
#[must_use]
pub fn lease_path(dir: &Path, name: &str, k: usize) -> PathBuf {
    dir.join(format!("{name}.shard-{k}.lease.json"))
}

/// The quarantined-unit report for shard `k` (written on [`EXIT_QUARANTINED`]).
#[must_use]
pub fn fail_path(dir: &Path, name: &str, k: usize) -> PathBuf {
    dir.join(format!("{name}.shard-{k}.fail.json"))
}

/// The worker-side metrics snapshot for shard `k`, folded into the
/// supervisor's registry when the shard completes.
#[must_use]
pub fn metrics_path(dir: &Path, name: &str, k: usize) -> PathBuf {
    dir.join(format!("{name}.shard-{k}.metrics.json"))
}

/// Whether `pid` is a live process. `Some(alive)` on Linux (via
/// `/proc/<pid>`), `None` where liveness cannot be checked cheaply.
#[must_use]
pub fn pid_alive(pid: u32) -> Option<bool> {
    if cfg!(target_os = "linux") {
        Some(Path::new(&format!("/proc/{pid}")).exists())
    } else {
        None
    }
}

/// Milliseconds since the Unix epoch (the lease heartbeat clock — wall
/// time, comparable across processes).
#[must_use]
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// One parsed lease file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// The holder's process id.
    pub pid: u32,
    /// The holder's worker slot.
    pub worker: usize,
    /// The holder's attempt counter for the shard.
    pub attempt: u32,
    /// Last heartbeat, ms since the Unix epoch.
    pub beat_ms: u64,
    /// `"running"` while the shard is being computed, `"done"` after.
    pub state: String,
}

impl Lease {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("pid".to_owned(), Value::from(u64::from(self.pid))),
            ("worker".to_owned(), Value::from(self.worker as u64)),
            ("attempt".to_owned(), Value::from(u64::from(self.attempt))),
            ("beat_ms".to_owned(), Value::from(self.beat_ms)),
            ("state".to_owned(), Value::from(self.state.as_str())),
        ])
    }

    /// Parses a lease from its JSON document.
    #[must_use]
    pub fn from_value(v: &Value) -> Option<Lease> {
        let num = |k: &str| -> Option<u64> {
            let n = v.get(k)?.as_f64()?;
            (n >= 0.0 && n.fract() == 0.0).then(|| {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let n = n as u64;
                n
            })
        };
        Some(Lease {
            pid: u32::try_from(num("pid")?).ok()?,
            #[allow(clippy::cast_possible_truncation)]
            worker: num("worker")? as usize,
            attempt: u32::try_from(num("attempt")?).ok()?,
            beat_ms: num("beat_ms")?,
            state: v.get("state")?.as_str()?.to_owned(),
        })
    }
}

/// What a lease file held when read.
#[derive(Debug)]
pub enum LeaseRead {
    /// No lease file.
    Missing,
    /// A file exists but does not parse as a lease (torn write,
    /// injected corruption). Carries the file's age in ms when known.
    Corrupt(Option<u64>),
    /// A well-formed lease.
    Valid(Lease),
}

/// Reads and classifies the lease at `path`.
#[must_use]
pub fn read_lease(path: &Path) -> LeaseRead {
    let Ok(bytes) = std::fs::read(path) else {
        return LeaseRead::Missing;
    };
    let age_ms = std::fs::metadata(path)
        .ok()
        .and_then(|m| m.modified().ok())
        .and_then(|t| t.elapsed().ok())
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
    std::str::from_utf8(&bytes)
        .ok()
        .and_then(|s| Value::parse(s).ok())
        .and_then(|v| Lease::from_value(&v))
        .map_or(LeaseRead::Corrupt(age_ms), LeaseRead::Valid)
}

/// Writes `lease` to `path` atomically (temp + rename), passing the bytes
/// through the `procpool.lease-corrupt` fault site first.
fn write_lease(path: &Path, lease: &Lease) -> io::Result<()> {
    let mut bytes = lease.to_value().to_json().into_bytes();
    bytes.push(b'\n');
    let _ = lori_fault::corrupt_bytes(SITE_LEASE_CORRUPT, &mut bytes);
    lori_fault::atomic_write(path, &bytes)
}

/// Renames the lease at `path` to a claimant-unique reap name and removes
/// it. `rename` is atomic, so of any number of concurrent thieves exactly
/// one succeeds — the single-winner guarantee behind stale-lease stealing.
/// Returns `true` for the winner.
pub fn steal_lease(path: &Path) -> bool {
    let reap = path.with_extension(format!("reap.{}", std::process::id()));
    if std::fs::rename(path, &reap).is_ok() {
        let _ = std::fs::remove_file(&reap);
        lori_obs::counter("procpool.lease_steals").incr(1);
        true
    } else {
        false
    }
}

/// The result of a claim attempt.
#[derive(Debug)]
pub enum ClaimOutcome {
    /// We hold the lease; heartbeat through the handle.
    Won(LeaseHandle),
    /// A live claimant holds it — back off ([`EXIT_LEASE_BUSY`]).
    Busy,
    /// The lease says the shard is done.
    Done,
}

/// Our claim on a lease file, used to heartbeat and to mark completion.
#[derive(Debug, Clone)]
pub struct LeaseHandle {
    path: PathBuf,
    pid: u32,
    worker: usize,
    attempt: u32,
}

impl LeaseHandle {
    /// Refreshes the heartbeat (state `"running"` or `"done"`). Returns
    /// `false` when the lease is no longer ours — it was stolen because
    /// we were presumed dead — in which case the caller must stop work
    /// and exit with [`EXIT_LEASE_LOST`]. A lease that reads as corrupt
    /// (possibly our own injected corruption) is rewritten.
    #[must_use]
    pub fn beat(&self, state: &str) -> bool {
        match read_lease(&self.path) {
            LeaseRead::Valid(l) if l.pid != self.pid => return false,
            LeaseRead::Missing => return false,
            _ => {}
        }
        write_lease(
            &self.path,
            &Lease {
                pid: self.pid,
                worker: self.worker,
                attempt: self.attempt,
                beat_ms: now_ms(),
                state: state.to_owned(),
            },
        )
        .is_ok()
    }
}

/// Tries to claim the lease at `path` for `(worker, attempt)`.
///
/// Claiming is `O_EXCL` file creation, so concurrent claimants serialize
/// through the filesystem. An existing lease is honored while its holder
/// is live (fresh heartbeat and, on Linux, live pid); a stale one —
/// holder dead, heartbeat older than `stall_timeout_ms`, or unparsable
/// and older than the timeout — is stolen via [`steal_lease`] and
/// re-claimed. Corrupt leases younger than the timeout are treated as
/// busy: they are usually a concurrent claim mid-write.
#[must_use]
pub fn claim(path: &Path, worker: usize, attempt: u32, stall_timeout_ms: u64) -> ClaimOutcome {
    for _ in 0..8 {
        match OpenOptions::new().write(true).create_new(true).open(path) {
            Ok(mut file) => {
                let lease = Lease {
                    pid: std::process::id(),
                    worker,
                    attempt,
                    beat_ms: now_ms(),
                    state: "running".to_owned(),
                };
                let mut bytes = lease.to_value().to_json().into_bytes();
                bytes.push(b'\n');
                let _ = lori_fault::corrupt_bytes(SITE_LEASE_CORRUPT, &mut bytes);
                if file.write_all(&bytes).and_then(|()| file.flush()).is_err() {
                    return ClaimOutcome::Busy;
                }
                drop(file);
                return ClaimOutcome::Won(LeaseHandle {
                    path: path.to_path_buf(),
                    pid: std::process::id(),
                    worker,
                    attempt,
                });
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => match read_lease(path) {
                LeaseRead::Valid(l) => {
                    if l.state == "done" {
                        return ClaimOutcome::Done;
                    }
                    let dead = pid_alive(l.pid) == Some(false);
                    let stale = now_ms().saturating_sub(l.beat_ms) > stall_timeout_ms;
                    if dead || stale {
                        let _ = steal_lease(path);
                        continue;
                    }
                    return ClaimOutcome::Busy;
                }
                LeaseRead::Corrupt(age_ms) => {
                    if age_ms.is_some_and(|age| age > stall_timeout_ms) {
                        lori_fault::detected(SITE_LEASE_CORRUPT);
                        let _ = steal_lease(path);
                    } else {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    continue;
                }
                LeaseRead::Missing => continue,
            },
            Err(_) => return ClaimOutcome::Busy,
        }
    }
    ClaimOutcome::Busy
}

/// What a supervisor shards and merges: the experiment's identity plus
/// the WAL fingerprint header shared with the single-process resume log.
#[derive(Debug)]
pub struct ShardJob<'a> {
    /// Experiment name (`exp-fig5`, …) — the artifact filename stem.
    pub name: &'a str,
    /// The results directory holding shard WALs and leases.
    pub dir: &'a Path,
    /// The config fingerprint; shard WALs embed it so a config change
    /// invalidates them exactly like the top-level resume log.
    pub header: &'a Value,
    /// Total unit count (the sweep axis length).
    pub total: usize,
}

impl ShardJob<'_> {
    /// The header line of shard `k`'s WAL: the config fingerprint plus
    /// the shard's identity and unit range.
    #[must_use]
    pub fn shard_header(&self, k: usize, shards: usize) -> Value {
        let (lo, hi) = shard_bounds(self.total, shards, k);
        Value::Obj(vec![
            ("fp".to_owned(), self.header.clone()),
            ("shard".to_owned(), Value::from(k as u64)),
            ("lo".to_owned(), Value::from(lo as u64)),
            ("hi".to_owned(), Value::from(hi as u64)),
        ])
    }
}

/// One unit that could not be completed (its shard was poisoned, or the
/// worker quarantined it deterministically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitFailure {
    /// The unit (axis) index.
    pub index: usize,
    /// Executions attempted before giving up.
    pub attempts: u32,
    /// Human-readable cause.
    pub message: String,
}

/// The supervisor's merged result.
#[derive(Debug)]
pub struct PoolOutcome {
    /// `entries[i]` is unit `i`'s serialized result, or `None` when it
    /// failed (see `failures`).
    pub entries: Vec<Option<Value>>,
    /// Failed units in input order.
    pub failures: Vec<UnitFailure>,
    /// Units recovered from shard WALs that predate this supervisor —
    /// progress a killed run left behind.
    pub replayed: usize,
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Worker-side counters folded into the supervisor registry by name when
/// the shard completes. Metric names must be `&'static str`, so only this
/// fixed set crosses the process boundary.
const FOLDED_COUNTERS: &[&str] = &[
    "fault.injected",
    "fault.detected",
    "fault.retried",
    "fault.quarantined",
    "fault.tasks",
    "procpool.lease_steals",
    "procpool.units_computed",
    // Workload counters a sweep increments — folded so a multi-process
    // manifest reports the same aggregate health a single process would.
    "ftsched.deadline_misses",
    "ftsched.rollbacks",
    "cache.hits",
    "cache.misses",
    "cache.bytes",
    "cache.corrupt",
    "circuit.sta.instances",
    "circuit.transient.steps",
];

fn write_worker_metrics(path: &Path) {
    let mut members = Vec::new();
    for m in lori_obs::registry().snapshot() {
        if let lori_obs::MetricValue::Counter(n) = m.value {
            if n > 0 && FOLDED_COUNTERS.contains(&m.name) {
                members.push((m.name.to_owned(), Value::from(n)));
            }
        }
    }
    let _ = lori_fault::atomic_write(path, Value::Obj(members).to_json().as_bytes());
}

fn fold_worker_metrics(path: &Path) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let Ok(Value::Obj(members)) = Value::parse(&text) else {
        return;
    };
    for (name, value) in members {
        let Some(&stat) = FOLDED_COUNTERS.iter().find(|&&s| s == name) else {
            continue;
        };
        if let Some(n) = value.as_f64() {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            lori_obs::counter(stat).incr(n.max(0.0) as u64);
        }
    }
}

/// Runs the worker side of a shard job and exits the process; never
/// returns. `run_unit` computes one unit (the same closure the
/// single-process path maps over tasks), returning its serialized result
/// or a message for deterministic typed failures.
///
/// The worker claims the shard lease, resumes the shard WAL, computes
/// only the missing units (fanned out over `LORI_THREADS` like any other
/// parallel region), appends each result durably, heartbeats from a side
/// thread, and exits [`EXIT_DONE`] / [`EXIT_QUARANTINED`] /
/// [`EXIT_LEASE_BUSY`] / [`EXIT_LEASE_LOST`].
pub fn run_worker<F>(job: &ShardJob<'_>, role: WorkerRole, run_unit: F) -> !
where
    F: Fn(usize) -> Result<Value, String> + Sync,
{
    let code = run_worker_inner(job, role, run_unit);
    // `exit` skips destructors, so drop the recorder explicitly: the
    // worker's event stream is written to a temp file and renamed into
    // place when the recorder drops. Crash paths — injected kill, stall,
    // lease lost mid-run — bypass this on purpose and leave only the
    // unrenamed temp; the supervisor merges complete streams only.
    lori_obs::uninstall();
    std::process::exit(code);
}

#[allow(clippy::cast_precision_loss)]
fn run_worker_inner<F>(job: &ShardJob<'_>, role: WorkerRole, run_unit: F) -> i32
where
    F: Fn(usize) -> Result<Value, String> + Sync,
{
    // The worker's root span: parents under the supervisor's dispatch
    // span via the process parent installed from TRACE_PARENT_ENV, so
    // every attempt hangs off the supervisor tree as a sibling.
    let _root = lori_obs::span_with("procpool.worker", role.shard as f64);
    let cfg = PoolConfig::from_env(1);
    let (lo, hi) = shard_bounds(job.total, role.shards, role.shard);
    let wal_path = shard_wal_path(job.dir, job.name, role.shard);
    let lease = lease_path(job.dir, job.name, role.shard);
    let header = job.shard_header(role.shard, role.shards);

    let shard_complete = || {
        let replayed = lori_fault::replay(&wal_path);
        if replayed.header.as_ref() != Some(&header) {
            return false;
        }
        let have: HashSet<u64> = replayed.entries.iter().map(|(i, _)| *i).collect();
        (lo..hi).all(|i| have.contains(&(i as u64)))
    };

    let handle = loop {
        match claim(&lease, role.worker, role.attempt, cfg.stall_timeout_ms) {
            ClaimOutcome::Won(h) => break h,
            ClaimOutcome::Busy => return EXIT_LEASE_BUSY,
            ClaimOutcome::Done => {
                if shard_complete()
                    || std::fs::metadata(fail_path(job.dir, job.name, role.shard)).is_ok()
                {
                    return EXIT_DONE;
                }
                // A done-lease without a complete WAL (cleanup race):
                // steal it and recompute.
                let _ = steal_lease(&lease);
            }
        }
    };

    // Process-level fault injection: a scheduled kill takes the worker
    // down exactly like an external kill -9 would.
    if lori_fault::check_kill(SITE_WORKER_KILL, role.shard as u64, role.attempt) {
        std::process::abort();
    }
    let stall = lori_fault::check_stall(SITE_WORKER_STALL, role.shard as u64, role.attempt);

    // Heartbeat thread: refresh the lease until stopped; if the lease is
    // no longer ours we were presumed dead — stop computing immediately.
    let stop = Arc::new(AtomicBool::new(false));
    let hb = {
        let stop = Arc::clone(&stop);
        let handle = handle.clone();
        let interval = Duration::from_millis(cfg.heartbeat_ms);
        let mpath = metrics_path(job.dir, job.name, role.shard);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if !handle.beat("running") {
                    std::process::exit(EXIT_LEASE_LOST);
                }
                // Refresh the shard metrics snapshot with every beat so
                // the supervisor's fleet view aggregates live counters,
                // not just end-of-shard ones.
                write_worker_metrics(&mpath);
                std::thread::sleep(interval);
            }
        })
    };

    let (wal, entries) = match lori_fault::WalWriter::resume(&wal_path, &header) {
        Ok(pair) => pair,
        Err(err) => {
            eprintln!("procpool worker: cannot open shard WAL: {err}");
            return 1;
        }
    };
    let have: HashSet<usize> = entries
        .iter()
        .filter_map(|(i, _)| usize::try_from(*i).ok())
        .filter(|i| (lo..hi).contains(i))
        .collect();
    let missing: Vec<usize> = (lo..hi).filter(|i| !have.contains(i)).collect();

    let policy = crate::RecoveryPolicy::from_env();
    let wal = Mutex::new(wal);
    let stalled = AtomicBool::new(false);
    let computed = lori_obs::counter("procpool.units_computed");
    // Worker-local heartbeat over this shard's missing units. The
    // supervisor's sweep tracker lives in its own process, so without
    // this a multi-process run is silent about per-shard progress; the
    // `[w<k>]` slot prefix keeps interleaved worker stderr attributable.
    let progress = lori_obs::Progress::start("shard", missing.len() as u64);
    let out = crate::par_map_recover(crate::global(), policy, &missing, |_, &i| {
        let value = run_unit(i)?;
        {
            let mut guard = wal
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Err(err) = guard.append(i as u64, &value) {
                eprintln!("procpool worker: WAL append failed: {err}");
            }
        }
        computed.incr(1);
        progress.tick();
        // Injected stall: freeze after the first durable unit — the
        // heartbeat stops, and the supervisor must detect and kill us.
        if stall && !stalled.swap(true, Ordering::Relaxed) {
            stop.store(true, Ordering::Relaxed);
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        Ok::<(), String>(())
    });

    // Quarantined units: panics caught by the recovery policy plus typed
    // failures. Under fail-fast a typed failure crashes the worker — the
    // supervisor retries the shard and eventually poisons it.
    let mut failed: Vec<UnitFailure> = out
        .failures
        .iter()
        .map(|f| UnitFailure {
            index: missing[f.index],
            attempts: f.attempts,
            message: f.message.clone(),
        })
        .collect();
    for (slot, &i) in out.results.iter().zip(&missing) {
        if let Some(Err(message)) = slot {
            if policy == crate::RecoveryPolicy::FailFast {
                eprintln!("procpool worker: unit {i} failed: {message}");
                return 1;
            }
            lori_obs::counter("fault.quarantined").incr(1);
            failed.push(UnitFailure {
                index: i,
                attempts: 1,
                message: message.clone(),
            });
        }
    }
    failed.sort_by_key(|f| f.index);

    stop.store(true, Ordering::Relaxed);
    let _ = hb.join();

    if !failed.is_empty() {
        let doc = Value::Obj(vec![(
            "failures".to_owned(),
            Value::Arr(
                failed
                    .iter()
                    .map(|f| {
                        Value::Obj(vec![
                            ("index".to_owned(), Value::from(f.index as u64)),
                            ("attempts".to_owned(), Value::from(u64::from(f.attempts))),
                            ("message".to_owned(), Value::from(f.message.as_str())),
                        ])
                    })
                    .collect(),
            ),
        )]);
        let _ = lori_fault::atomic_write(
            fail_path(job.dir, job.name, role.shard),
            doc.to_json().as_bytes(),
        );
    }
    write_worker_metrics(&metrics_path(job.dir, job.name, role.shard));
    if !handle.beat("done") {
        return EXIT_LEASE_LOST;
    }
    if failed.is_empty() {
        EXIT_DONE
    } else {
        EXIT_QUARANTINED
    }
}

// ---------------------------------------------------------------------------
// Supervisor side
// ---------------------------------------------------------------------------

enum ShardState {
    Pending { attempt: u32, not_before: Instant },
    Running(RunningShard),
    Done,
    Poisoned,
}

struct RunningShard {
    child: Child,
    worker: usize,
    attempt: u32,
    last_progress: Instant,
}

struct Supervisor<'a, F: FnMut(usize, &Value)> {
    job: &'a ShardJob<'a>,
    shards: usize,
    entries: Vec<Option<Value>>,
    failed: Vec<Vec<UnitFailure>>,
    on_unit: F,
}

impl<F: FnMut(usize, &Value)> Supervisor<'_, F> {
    /// Replays shard `k`'s WAL and merges every new unit. Returns how
    /// many units were new.
    fn merge_shard(&mut self, k: usize) -> usize {
        let replayed = lori_fault::replay(shard_wal_path(self.job.dir, self.job.name, k));
        if replayed.header.as_ref() != Some(&self.job.shard_header(k, self.shards)) {
            return 0;
        }
        let (lo, hi) = shard_bounds(self.job.total, self.shards, k);
        let mut new = 0;
        for (i, data) in replayed.entries {
            let Ok(i) = usize::try_from(i) else { continue };
            if (lo..hi).contains(&i) && self.entries[i].is_none() {
                (self.on_unit)(i, &data);
                self.entries[i] = Some(data);
                new += 1;
            }
        }
        new
    }

    /// Reads shard `k`'s fail file (quarantined units).
    fn read_failures(&mut self, k: usize) {
        let Ok(text) = std::fs::read_to_string(fail_path(self.job.dir, self.job.name, k)) else {
            return;
        };
        let Ok(doc) = Value::parse(&text) else {
            return;
        };
        let Some(list) = doc.get("failures").and_then(Value::as_arr) else {
            return;
        };
        let mut failures = Vec::new();
        for f in list {
            let (Some(index), Some(attempts)) = (
                f.get("index").and_then(Value::as_f64),
                f.get("attempts").and_then(Value::as_f64),
            ) else {
                continue;
            };
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            failures.push(UnitFailure {
                index: index as usize,
                attempts: attempts as u32,
                message: f
                    .get("message")
                    .and_then(Value::as_str)
                    .unwrap_or("quarantined")
                    .to_owned(),
            });
        }
        self.failed[k] = failures;
    }

    /// `true` when every unit of shard `k` is merged or quarantined.
    fn shard_settled(&self, k: usize) -> bool {
        let (lo, hi) = shard_bounds(self.job.total, self.shards, k);
        let failed: HashSet<usize> = self.failed[k].iter().map(|f| f.index).collect();
        (lo..hi).all(|i| self.entries[i].is_some() || failed.contains(&i))
    }
}

fn spawn_worker(
    job: &ShardJob<'_>,
    shards: usize,
    shard: usize,
    worker: usize,
    attempt: u32,
    trace_parent: &str,
) -> io::Result<Child> {
    let exe = std::env::current_exe()?;
    let args: Vec<String> = std::env::args().skip(1).collect();
    Command::new(exe)
        .args(args)
        // Workers must not recurse into supervision or rebind telemetry
        // ports. LORI_PROGRESS is inherited: worker heartbeat lines carry
        // a `[w<k>]` slot prefix, so interleaved stderr stays attributable.
        .env_remove("LORI_WORKERS")
        .env_remove("LORI_TELEMETRY")
        .env("LORI_RESULTS_DIR", job.dir)
        .env("LORI_PROCPOOL_ROLE", "worker")
        .env("LORI_PROCPOOL_WORKER", worker.to_string())
        .env("LORI_PROCPOOL_SHARD", shard.to_string())
        .env("LORI_PROCPOOL_SHARDS", shards.to_string())
        .env("LORI_PROCPOOL_ATTEMPT", attempt.to_string())
        .env(TRACE_PARENT_ENV, trace_parent)
        .stdout(Stdio::null())
        .spawn()
}

/// Emits an instantaneous shard-lifecycle marker span on the supervisor
/// thread and returns its sid. Markers open and drop immediately — the
/// supervisor's per-thread LIFO nesting is preserved no matter how many
/// shards are in flight — and exist to be causal anchors: worker root
/// spans parent under `procpool.dispatch` markers, and `lori-report
/// timeline` reads the kill/reclaim/done/poison markers as lifecycle
/// edges.
#[allow(clippy::cast_precision_loss)]
fn marker(name: &'static str, shard: usize) -> u64 {
    lori_obs::span_with(name, shard as f64).sid()
}

/// Serializes the supervisor's fleet view for the telemetry endpoint:
/// per-shard lease state, owner, attempt, heartbeat age, and unit
/// progress, plus worker counters aggregated from the per-shard metrics
/// files (refreshed by each worker's heartbeat thread). Built only while
/// a telemetry server is live, and pushed as a pre-serialized document so
/// nothing here ever touches the metric registry — artifacts stay
/// bit-identical with the endpoint on or off.
fn fleet_json(
    job: &ShardJob<'_>,
    shards: usize,
    states: &[ShardState],
    entries: &[Option<Value>],
) -> String {
    let now = now_ms();
    let workers: Vec<Value> = (0..shards)
        .map(|k| {
            let (lo, hi) = shard_bounds(job.total, shards, k);
            let done_units = entries[lo..hi].iter().filter(|e| e.is_some()).count();
            let (state, worker, attempt) = match &states[k] {
                ShardState::Pending { attempt, .. } => ("pending", None, Some(*attempt)),
                ShardState::Running(r) => ("running", Some(r.worker), Some(r.attempt)),
                ShardState::Done => ("done", None, None),
                ShardState::Poisoned => ("poisoned", None, None),
            };
            let beat_age = match read_lease(&lease_path(job.dir, job.name, k)) {
                LeaseRead::Valid(l) => Some(now.saturating_sub(l.beat_ms)),
                _ => None,
            };
            Value::Obj(vec![
                ("shard".to_owned(), Value::from(k as u64)),
                ("state".to_owned(), Value::from(state)),
                (
                    "worker".to_owned(),
                    worker.map_or(Value::Null, |w| Value::from(w as u64)),
                ),
                (
                    "attempt".to_owned(),
                    attempt.map_or(Value::Null, |a| Value::from(u64::from(a))),
                ),
                (
                    "heartbeat_age_ms".to_owned(),
                    beat_age.map_or(Value::Null, Value::from),
                ),
                ("done".to_owned(), Value::from(done_units as u64)),
                ("want".to_owned(), Value::from((hi - lo) as u64)),
            ])
        })
        .collect();

    // Aggregate worker counters across every shard's metrics snapshot.
    let mut sums: Vec<(String, f64)> = Vec::new();
    for k in 0..shards {
        let Ok(text) = std::fs::read_to_string(metrics_path(job.dir, job.name, k)) else {
            continue;
        };
        let Ok(Value::Obj(members)) = Value::parse(&text) else {
            continue;
        };
        for (name, value) in members {
            let Some(n) = value.as_f64() else { continue };
            match sums.iter_mut().find(|(s, _)| *s == name) {
                Some((_, total)) => *total += n,
                None => sums.push((name, n)),
            }
        }
    }
    sums.sort_by(|a, b| a.0.cmp(&b.0));
    let counters = sums.into_iter().map(|(k, v)| (k, Value::from(v))).collect();

    Value::Obj(vec![
        ("run".to_owned(), Value::from(job.name)),
        ("shards".to_owned(), Value::from(shards as u64)),
        ("workers".to_owned(), Value::Arr(workers)),
        ("counters".to_owned(), Value::Obj(counters)),
    ])
    .to_json()
}

fn status_message(status: std::process::ExitStatus) -> String {
    match status.code() {
        Some(code) => format!("worker exited with code {code}"),
        None => format!("worker killed by signal ({status})"),
    }
}

/// Removes shard `k`'s WAL, lease, fail, and metrics files.
fn cleanup_shard(dir: &Path, name: &str, k: usize) {
    for path in [
        shard_wal_path(dir, name, k),
        lease_path(dir, name, k),
        fail_path(dir, name, k),
        metrics_path(dir, name, k),
    ] {
        let _ = std::fs::remove_file(path);
    }
}

/// Supervises worker processes over a sharded job until every shard is
/// done or poisoned. `on_unit(i, value)` fires exactly once per unit as
/// it becomes durable in some shard WAL — callers typically forward it
/// into the single-process resume WAL so progress survives a supervisor
/// kill too.
///
/// Crash tolerance: worker exits are observed through `waitpid`
/// (`try_wait`), stalls through lease-heartbeat age; a stalled worker is
/// killed. Failed shards are reassigned with exponential backoff and
/// poisoned after `cfg.retries` re-assignments, reporting every missing
/// unit as a failure in input order.
///
/// # Errors
///
/// Propagates spawn failures for the *first* worker only (no workers at
/// all — the caller falls back to in-process execution); later spawn
/// failures are retried like worker crashes.
pub fn supervise<F: FnMut(usize, &Value)>(
    job: &ShardJob<'_>,
    cfg: &PoolConfig,
    on_unit: F,
) -> io::Result<PoolOutcome> {
    let shards = cfg.shards.clamp(1, job.total.max(1));
    let mut sup = Supervisor {
        job,
        shards,
        entries: vec![None; job.total],
        failed: vec![Vec::new(); shards],
        on_unit,
    };

    // Recover whatever a previous (killed) run left durable.
    let mut replayed = 0;
    for k in 0..shards {
        replayed += sup.merge_shard(k);
        sup.read_failures(k);
    }

    let mut states: Vec<ShardState> = (0..shards)
        .map(|k| {
            if sup.shard_settled(k) {
                // Settled purely from a previous run's WAL — the timeline
                // distinguishes replayed shards from freshly computed ones.
                marker("procpool.replayed", k);
                ShardState::Done
            } else {
                ShardState::Pending {
                    attempt: 0,
                    not_before: Instant::now(),
                }
            }
        })
        .collect();

    let spawned = lori_obs::counter("procpool.workers_spawned");
    let crashed = lori_obs::counter("procpool.workers_crashed");
    let killed = lori_obs::counter("procpool.workers_killed");
    let reclaimed = lori_obs::counter("procpool.leases_reclaimed");
    let retries = lori_obs::counter("procpool.retries");
    let poisoned_c = lori_obs::counter("procpool.shards_poisoned");
    let mut first_spawn_err: Option<io::Error> = None;
    let mut ever_spawned = false;
    // Supervisor-issued process epochs: the supervisor keeps epoch 0;
    // every spawned worker attempt gets the next value, salting its span
    // and thread ids into a disjoint range (see lori-obs trace docs).
    let mut spawn_seq: u64 = 0;
    let poll = Duration::from_millis(cfg.heartbeat_ms.clamp(10, 250) / 2 + 5);

    loop {
        let mut live = states
            .iter()
            .filter(|s| matches!(s, ShardState::Running(_)))
            .count();
        let busy_slots: HashSet<usize> = states
            .iter()
            .filter_map(|s| match s {
                ShardState::Running(r) => Some(r.worker),
                _ => None,
            })
            .collect();
        let mut free_slots = (0..cfg.workers).filter(|w| !busy_slots.contains(w));

        // Assign pending shards to free worker slots. (Indexing is the
        // point here: `k` names the shard across states, paths, and
        // bounds, not just a slot in `states`.)
        #[allow(clippy::needless_range_loop)]
        for k in 0..shards {
            if live >= cfg.workers {
                break;
            }
            let ShardState::Pending {
                attempt,
                not_before,
            } = states[k]
            else {
                continue;
            };
            if Instant::now() < not_before {
                continue;
            }
            let Some(worker) = free_slots.next() else {
                break;
            };
            spawn_seq += 1;
            let dispatch_sid = marker("procpool.dispatch", k);
            let trace_parent = format!("{spawn_seq}:{dispatch_sid}");
            match spawn_worker(job, shards, k, worker, attempt, &trace_parent) {
                Ok(child) => {
                    spawned.incr(1);
                    ever_spawned = true;
                    states[k] = ShardState::Running(RunningShard {
                        child,
                        worker,
                        attempt,
                        last_progress: Instant::now(),
                    });
                    live += 1;
                }
                Err(err) => {
                    if first_spawn_err.is_none() {
                        first_spawn_err = Some(err);
                    }
                    states[k] = ShardState::Pending {
                        attempt,
                        not_before: Instant::now() + cfg.backoff(attempt + 1),
                    };
                }
            }
        }
        if !ever_spawned {
            if let Some(err) = first_spawn_err {
                return Err(err);
            }
        }

        // Poll running workers: reap exits, merge progress, detect stalls.
        #[allow(clippy::needless_range_loop)]
        for k in 0..shards {
            let ShardState::Running(run) = &mut states[k] else {
                continue;
            };
            let status = match run.child.try_wait() {
                Ok(Some(status)) => Some(status),
                Ok(None) => None,
                Err(_) => None,
            };
            if let Some(status) = status {
                let attempt = run.attempt;
                if sup.merge_shard(k) > 0 {
                    // Progress was made; noted for the outcome below.
                }
                if status.code() == Some(EXIT_QUARANTINED) {
                    sup.read_failures(k);
                }
                if sup.shard_settled(k) {
                    fold_worker_metrics(&metrics_path(job.dir, job.name, k));
                    marker("procpool.done", k);
                    states[k] = ShardState::Done;
                    continue;
                }
                match status.code() {
                    Some(c) if c == EXIT_LEASE_BUSY || c == EXIT_LEASE_LOST => {
                        // Someone else owns (or owned) the lease — no
                        // attempt penalty, just look again shortly.
                        states[k] = ShardState::Pending {
                            attempt,
                            not_before: Instant::now()
                                + Duration::from_millis(cfg.heartbeat_ms.max(cfg.backoff_ms)),
                        };
                    }
                    _ => {
                        crashed.incr(1);
                        reclaimed.incr(1);
                        marker("procpool.reclaim", k);
                        let next = attempt + 1;
                        if next > cfg.retries {
                            poisoned_c.incr(1);
                            marker("procpool.poison", k);
                            let (lo, hi) = shard_bounds(job.total, shards, k);
                            let message = status_message(status);
                            for i in lo..hi {
                                if sup.entries[i].is_none() {
                                    sup.failed[k].push(UnitFailure {
                                        index: i,
                                        attempts: next,
                                        message: message.clone(),
                                    });
                                }
                            }
                            states[k] = ShardState::Poisoned;
                            let _ = lori_obs::flight::dump("procpool.poisoned");
                        } else {
                            retries.incr(1);
                            states[k] = ShardState::Pending {
                                attempt: next,
                                not_before: Instant::now() + cfg.backoff(next),
                            };
                        }
                    }
                }
                continue;
            }

            // Still running: lease heartbeat fresh? WAL growing counts as
            // progress too (merging mid-run also feeds on_unit, so points
            // become durable in the caller's log before the shard ends).
            if sup.merge_shard(k) > 0 {
                if let ShardState::Running(run) = &mut states[k] {
                    run.last_progress = Instant::now();
                }
            }
            let ShardState::Running(run) = &mut states[k] else {
                continue;
            };
            if let LeaseRead::Valid(l) = read_lease(&lease_path(job.dir, job.name, k)) {
                if l.pid == run.child.id()
                    && now_ms().saturating_sub(l.beat_ms) < cfg.stall_timeout_ms
                {
                    run.last_progress = Instant::now();
                }
            }
            if run.last_progress.elapsed() > Duration::from_millis(cfg.stall_timeout_ms) {
                // Stalled: no heartbeat, no WAL growth. Kill and reclaim.
                marker("procpool.kill", k);
                let _ = run.child.kill();
                let _ = run.child.wait();
                killed.incr(1);
                reclaimed.incr(1);
                let _ = steal_lease(&lease_path(job.dir, job.name, k));
                marker("procpool.reclaim", k);
                let attempt = run.attempt;
                sup.merge_shard(k);
                if sup.shard_settled(k) {
                    marker("procpool.done", k);
                    states[k] = ShardState::Done;
                    continue;
                }
                let next = attempt + 1;
                if next > cfg.retries {
                    poisoned_c.incr(1);
                    marker("procpool.poison", k);
                    let (lo, hi) = shard_bounds(job.total, shards, k);
                    for i in lo..hi {
                        if sup.entries[i].is_none() {
                            sup.failed[k].push(UnitFailure {
                                index: i,
                                attempts: next,
                                message: "worker stalled (heartbeat timeout)".to_owned(),
                            });
                        }
                    }
                    states[k] = ShardState::Poisoned;
                } else {
                    retries.incr(1);
                    states[k] = ShardState::Pending {
                        attempt: next,
                        not_before: Instant::now() + cfg.backoff(next),
                    };
                }
            }
        }

        // Refresh the fleet view for the telemetry endpoint. Gated on a
        // live server so a headless supervisor pays no per-poll file IO.
        if lori_obs::telemetry::is_serving() {
            lori_obs::telemetry::set_fleet_json(fleet_json(job, shards, &states, &sup.entries));
        }

        if states
            .iter()
            .all(|s| matches!(s, ShardState::Done | ShardState::Poisoned))
        {
            break;
        }
        std::thread::sleep(poll);
    }

    let mut failures: Vec<UnitFailure> = sup.failed.into_iter().flatten().collect();
    failures.sort_by_key(|f| f.index);
    failures.dedup_by_key(|f| f.index);

    if !cfg.keep_files {
        for k in 0..shards {
            cleanup_shard(job.dir, job.name, k);
        }
    }

    Ok(PoolOutcome {
        entries: sup.entries,
        failures,
        replayed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lori-procpool-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn shard_bounds_partition_the_axis() {
        for total in [0usize, 1, 5, 13, 64, 100] {
            for shards in [1usize, 2, 3, 7, 8, 200] {
                let mut covered = Vec::new();
                for k in 0..shards {
                    let (lo, hi) = shard_bounds(total, shards, k);
                    assert!(lo <= hi, "lo <= hi for {total}/{shards}/{k}");
                    covered.extend(lo..hi);
                }
                let want: Vec<usize> = (0..total).collect();
                assert_eq!(covered, want, "total {total} shards {shards}");
            }
        }
    }

    #[test]
    fn shard_bounds_are_balanced() {
        for k in 0..4 {
            let (lo, hi) = shard_bounds(13, 4, k);
            assert!(hi - lo == 3 || hi - lo == 4);
        }
    }

    #[test]
    fn mode_resolution_parses_strings() {
        // Resolved from strings rather than env mutation — mode() itself
        // just wraps this parse over LORI_WORKERS.
        assert_eq!(Mode::Off, parse_mode(""));
        assert_eq!(Mode::Off, parse_mode("off"));
        assert_eq!(Mode::Off, parse_mode("0"));
        assert_eq!(Mode::Off, parse_mode("nope"));
        assert_eq!(Mode::Workers(4), parse_mode("4"));
        assert_eq!(Mode::Workers(1), parse_mode(" 1 "));
    }

    fn parse_mode(s: &str) -> Mode {
        let s = s.trim();
        if s.is_empty() || s.eq_ignore_ascii_case("off") {
            return Mode::Off;
        }
        match s.parse::<usize>() {
            Ok(0) | Err(_) => Mode::Off,
            Ok(n) => Mode::Workers(n),
        }
    }

    #[test]
    fn lease_roundtrip() {
        let lease = Lease {
            pid: 1234,
            worker: 2,
            attempt: 1,
            beat_ms: 1_700_000_000_123,
            state: "running".to_owned(),
        };
        let parsed = Lease::from_value(&lease.to_value()).unwrap();
        assert_eq!(parsed, lease);
    }

    #[test]
    fn claim_is_single_winner_across_racing_threads() {
        let dir = tmp_dir("claim-race");
        let path = dir.join("exp.shard-0.lease.json");
        let _ = std::fs::remove_file(&path);
        let winners: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|w| {
                    let path = path.clone();
                    scope.spawn(move || matches!(claim(&path, w, 0, 5000), ClaimOutcome::Won(_)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            winners.iter().filter(|&&w| w).count(),
            1,
            "exactly one claimant must win: {winners:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_lease_is_stolen_by_exactly_one_thief() {
        let dir = tmp_dir("steal-race");
        let path = dir.join("exp.shard-1.lease.json");
        // A lease whose heartbeat is ancient and (on Linux) whose pid is
        // dead: pid 1 is alive but beat_ms=1 is far past any timeout.
        let stale = Lease {
            pid: u32::MAX - 7, // almost certainly not a live pid
            worker: 0,
            attempt: 0,
            beat_ms: 1,
            state: "running".to_owned(),
        };
        std::fs::write(&path, stale.to_value().to_json()).unwrap();
        let winners: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..6)
                .map(|w| {
                    let path = path.clone();
                    scope.spawn(move || matches!(claim(&path, w, 1, 50), ClaimOutcome::Won(_)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // The steal (rename) has a single winner; claimants that lose the
        // subsequent O_EXCL race report Busy. At least one thief must get
        // through, and never more than one may hold the lease.
        let wins = winners.iter().filter(|&&w| w).count();
        assert_eq!(wins, 1, "single winner: {winners:?}");
        match read_lease(&path) {
            LeaseRead::Valid(l) => assert_eq!(l.pid, std::process::id()),
            other => panic!("lease must be held by this process: {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fresh_lease_is_busy_not_stolen() {
        let dir = tmp_dir("busy");
        let path = dir.join("exp.shard-2.lease.json");
        let fresh = Lease {
            pid: std::process::id(), // a live pid (ours)
            worker: 0,
            attempt: 0,
            beat_ms: now_ms(),
            state: "running".to_owned(),
        };
        std::fs::write(&path, fresh.to_value().to_json()).unwrap();
        assert!(matches!(claim(&path, 1, 0, 60_000), ClaimOutcome::Busy));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn done_lease_reports_done() {
        let dir = tmp_dir("done");
        let path = dir.join("exp.shard-3.lease.json");
        let done = Lease {
            pid: 1,
            worker: 0,
            attempt: 0,
            beat_ms: 1,
            state: "done".to_owned(),
        };
        std::fs::write(&path, done.to_value().to_json()).unwrap();
        assert!(matches!(claim(&path, 1, 0, 50), ClaimOutcome::Done));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn beat_detects_a_stolen_lease() {
        let dir = tmp_dir("beat");
        let path = dir.join("exp.shard-4.lease.json");
        let ClaimOutcome::Won(handle) = claim(&path, 0, 0, 5000) else {
            panic!("claim must win on a fresh path");
        };
        assert!(handle.beat("running"), "own lease refreshes");
        // A thief replaces the lease: the next beat must report loss
        // instead of clobbering the thief's claim.
        let thief = Lease {
            pid: std::process::id().wrapping_add(1),
            worker: 9,
            attempt: 3,
            beat_ms: now_ms(),
            state: "running".to_owned(),
        };
        std::fs::write(&path, thief.to_value().to_json()).unwrap();
        assert!(!handle.beat("running"), "stolen lease must not be beaten");
        match read_lease(&path) {
            LeaseRead::Valid(l) => assert_eq!(l.worker, 9, "thief's lease intact"),
            other => panic!("unexpected: {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_lease_is_stolen_only_when_old() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("exp.shard-5.lease.json");
        std::fs::write(&path, b"{definitely not a lease").unwrap();
        // Young corrupt file: treated as a claim mid-write -> Busy.
        assert!(matches!(claim(&path, 0, 0, 60_000), ClaimOutcome::Busy));
        // Same file against a 0ms timeout: aged out -> stolen and won.
        assert!(matches!(claim(&path, 0, 0, 0), ClaimOutcome::Won(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pid_alive_on_linux_sees_this_process() {
        if let Some(alive) = pid_alive(std::process::id()) {
            assert!(alive);
        }
    }
}
