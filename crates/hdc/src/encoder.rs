//! Encoders from raw data to hypervectors.
//!
//! - [`ItemMemory`]: a deterministic symbol → random-hypervector store.
//! - [`LevelEncoder`]: continuous values onto a chain of correlated level
//!   hypervectors (nearby values → similar vectors; far values →
//!   quasi-orthogonal).
//! - [`RecordEncoder`]: dense feature vectors, binding each feature's
//!   identity vector with its level vector and bundling across features —
//!   the standard "record" encoding used by HDC classifiers.

use crate::error::HdcError;
use crate::hypervector::{BinaryHv, BundleAccumulator};
use lori_core::Rng;
use lori_par::Parallelism;
use std::collections::HashMap;

/// Rows per task in [`RecordEncoder::encode_batch`]. Single-row encodes
/// are microseconds, so batching amortizes dispatch; the size is a
/// constant (never derived from the worker count) so chunk boundaries —
/// and therefore the output — are identical under any parallelism.
const ENCODE_CHUNK: usize = 32;

/// A lazy store of random hypervectors, one per symbol id, generated
/// deterministically from the memory's seed.
#[derive(Debug, Clone)]
pub struct ItemMemory {
    dim: usize,
    seed: u64,
    cache: HashMap<u64, BinaryHv>,
}

impl ItemMemory {
    /// Creates an item memory for `dim`-dimensional vectors.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ZeroDimension`] if `dim` is zero.
    pub fn new(dim: usize, seed: u64) -> Result<Self, HdcError> {
        if dim == 0 {
            return Err(HdcError::ZeroDimension);
        }
        Ok(ItemMemory {
            dim,
            seed,
            cache: HashMap::new(),
        })
    }

    /// Dimensionality of stored vectors.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The hypervector for `symbol` (created on first use, then cached).
    /// The same `(seed, symbol)` pair always yields the same vector.
    pub fn get(&mut self, symbol: u64) -> &BinaryHv {
        let dim = self.dim;
        let seed = self.seed;
        self.cache.entry(symbol).or_insert_with(|| {
            let mut rng = Rng::from_seed(seed ^ symbol.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            BinaryHv::random(dim, &mut rng)
        })
    }
}

/// Maps a continuous range onto `levels` hypervectors where adjacent levels
/// share most components: level 0 and level `L−1` are quasi-orthogonal, and
/// similarity decreases linearly in level distance.
#[derive(Debug, Clone)]
pub struct LevelEncoder {
    low: f64,
    high: f64,
    levels: Vec<BinaryHv>,
}

impl LevelEncoder {
    /// Builds the level chain by starting from a random vector and flipping a
    /// disjoint slice of `dim / (levels − 1)` components per step.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ZeroDimension`] for `dim == 0` or
    /// [`HdcError::InvalidEncoder`] if `low >= high` or `levels < 2`.
    pub fn new(
        dim: usize,
        low: f64,
        high: f64,
        levels: usize,
        rng: &mut Rng,
    ) -> Result<Self, HdcError> {
        if dim == 0 {
            return Err(HdcError::ZeroDimension);
        }
        if low.is_nan() || high.is_nan() || low >= high {
            return Err(HdcError::InvalidEncoder("low must be below high"));
        }
        if levels < 2 {
            return Err(HdcError::InvalidEncoder("at least two levels required"));
        }
        let base = BinaryHv::random(dim, rng);
        // Random permutation of component indices; flip the next slice at
        // each level so flips never overlap (similarity falls linearly).
        // A total of dim/2 components flip across the whole chain, so the
        // extreme levels end up quasi-orthogonal (similarity ≈ 0.5), as in
        // the standard HDC level-encoding construction.
        let mut order: Vec<usize> = (0..dim).collect();
        rng.shuffle(&mut order);
        let half = dim / 2;
        let per_level = half / (levels - 1);
        let mut chain = Vec::with_capacity(levels);
        let mut current = base;
        chain.push(current.clone());
        for l in 1..levels {
            let start = (l - 1) * per_level;
            let end = if l == levels - 1 { half } else { l * per_level };
            for &i in &order[start..end] {
                let b = current.bit(i);
                current.set_bit(i, !b);
            }
            chain.push(current.clone());
        }
        Ok(LevelEncoder {
            low,
            high,
            levels: chain,
        })
    }

    /// Number of levels.
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The level index for a value (clamped to the encoder's range).
    #[must_use]
    pub fn level_of(&self, value: f64) -> usize {
        let t = ((value - self.low) / (self.high - self.low)).clamp(0.0, 1.0);
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        {
            ((t * (self.levels.len() - 1) as f64).round() as usize).min(self.levels.len() - 1)
        }
    }

    /// Encodes a value as its level hypervector.
    #[must_use]
    pub fn encode(&self, value: f64) -> &BinaryHv {
        &self.levels[self.level_of(value)]
    }

    /// All level vectors, in order.
    #[must_use]
    pub fn levels(&self) -> &[BinaryHv] {
        &self.levels
    }
}

/// Encodes dense feature rows: `H(x) = majority_j( id_j ⊕ level_j(x_j) )`.
#[derive(Debug, Clone)]
pub struct RecordEncoder {
    ids: Vec<BinaryHv>,
    levels: Vec<LevelEncoder>,
    tie_break: BinaryHv,
}

impl RecordEncoder {
    /// Builds an encoder for `ranges.len()` features; each feature gets an
    /// identity vector and a level encoder over its `(low, high)` range.
    ///
    /// # Errors
    ///
    /// Propagates [`HdcError`] from the underlying encoders; fails with
    /// [`HdcError::InvalidEncoder`] for an empty range list.
    pub fn new(
        dim: usize,
        ranges: &[(f64, f64)],
        levels: usize,
        seed: u64,
    ) -> Result<Self, HdcError> {
        if ranges.is_empty() {
            return Err(HdcError::InvalidEncoder("at least one feature required"));
        }
        let mut rng = Rng::from_seed(seed);
        let ids = (0..ranges.len())
            .map(|_| BinaryHv::random(dim, &mut rng))
            .collect();
        let levels = ranges
            .iter()
            .map(|&(lo, hi)| LevelEncoder::new(dim, lo, hi, levels, &mut rng))
            .collect::<Result<Vec<_>, _>>()?;
        let tie_break = BinaryHv::random(dim, &mut rng);
        Ok(RecordEncoder {
            ids,
            levels,
            tie_break,
        })
    }

    /// Number of features the encoder expects.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.ids.len()
    }

    /// Dimensionality of produced hypervectors.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.tie_break.dim()
    }

    /// Encodes one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from [`RecordEncoder::n_features`].
    #[must_use]
    pub fn encode(&self, x: &[f64]) -> BinaryHv {
        let mut acc = BundleAccumulator::new(self.dim());
        self.encode_into(x, &mut acc)
    }

    /// Encodes one feature row into a caller-supplied scratch accumulator
    /// (reset on entry), so hot batch loops reuse one allocation per chunk
    /// instead of one per row. Output is identical to
    /// [`RecordEncoder::encode`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from [`RecordEncoder::n_features`] or on
    /// accumulator dimension mismatch.
    #[must_use]
    pub fn encode_into(&self, x: &[f64], acc: &mut BundleAccumulator) -> BinaryHv {
        assert_eq!(x.len(), self.ids.len(), "feature count mismatch");
        acc.reset();
        for ((id, lvl), &v) in self.ids.iter().zip(&self.levels).zip(x) {
            acc.add(&id.bind(lvl.encode(v)));
        }
        let mut hv = acc.majority(&self.tie_break);
        // `bitflip@hdc.encoder` models an upset in the encoded
        // hypervector. HDC's holographic redundancy is the recovery story
        // here: downstream similarity queries tolerate flipped bits, which
        // exp-hdc-robustness quantifies.
        if let Some(bit) = lori_fault::flip_bit("hdc.encoder", hv.dim()) {
            hv.flip_bit(bit);
        }
        hv
    }

    /// Encodes a batch of feature rows, fanning fixed-size row chunks out
    /// over `par`. Encoding is a pure function of `(self, row)`, so
    /// `encode_batch(rows, par)[i] == encode(&rows[i])` for every worker
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from
    /// [`RecordEncoder::n_features`].
    #[must_use]
    pub fn encode_batch(&self, rows: &[Vec<f64>], par: Parallelism) -> Vec<BinaryHv> {
        let progress = lori_obs::Progress::start("hdc.encode", rows.len() as u64);
        let chunks = lori_par::par_chunks(par, rows, ENCODE_CHUNK, |_, chunk| {
            // One scratch accumulator per chunk, reset per row.
            let mut acc = BundleAccumulator::new(self.dim());
            let out = chunk
                .iter()
                .map(|row| self.encode_into(row, &mut acc))
                .collect::<Vec<_>>();
            progress.add(chunk.len() as u64);
            out
        });
        chunks.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIM: usize = 2048;

    #[test]
    fn item_memory_deterministic() {
        let mut a = ItemMemory::new(DIM, 42).unwrap();
        let mut b = ItemMemory::new(DIM, 42).unwrap();
        assert_eq!(a.get(7).clone(), b.get(7).clone());
        let v7 = a.get(7).clone();
        let v8 = a.get(8).clone();
        assert!((v7.similarity(&v8) - 0.5).abs() < 0.05);
        // Cached: same reference content on second call.
        assert_eq!(a.get(7).clone(), v7);
    }

    #[test]
    fn item_memory_zero_dim_rejected() {
        assert_eq!(ItemMemory::new(0, 1).unwrap_err(), HdcError::ZeroDimension);
    }

    #[test]
    fn level_similarity_decreases_with_distance() {
        let mut rng = Rng::from_seed(1);
        let enc = LevelEncoder::new(DIM, 0.0, 1.0, 16, &mut rng).unwrap();
        let l0 = enc.encode(0.0);
        let mut prev = 1.0;
        for i in 1..16 {
            #[allow(clippy::cast_precision_loss)]
            let v = i as f64 / 15.0;
            let s = l0.similarity(enc.encode(v));
            assert!(s < prev + 1e-9, "level {i}: {s} !< {prev}");
            prev = s;
        }
        // Extremes are quasi-orthogonal.
        let s_ends = l0.similarity(enc.encode(1.0));
        assert!((s_ends - 0.5).abs() < 0.05, "ends similarity {s_ends}");
    }

    #[test]
    fn level_encoder_clamps() {
        let mut rng = Rng::from_seed(2);
        let enc = LevelEncoder::new(DIM, 0.0, 1.0, 8, &mut rng).unwrap();
        assert_eq!(enc.level_of(-5.0), 0);
        assert_eq!(enc.level_of(10.0), 7);
        assert_eq!(enc.level_count(), 8);
    }

    #[test]
    fn level_encoder_validation() {
        let mut rng = Rng::from_seed(3);
        assert!(LevelEncoder::new(0, 0.0, 1.0, 4, &mut rng).is_err());
        assert!(LevelEncoder::new(DIM, 1.0, 1.0, 4, &mut rng).is_err());
        assert!(LevelEncoder::new(DIM, 0.0, 1.0, 1, &mut rng).is_err());
    }

    #[test]
    fn record_encoder_similar_inputs_similar_codes() {
        let enc = RecordEncoder::new(DIM, &[(0.0, 1.0), (0.0, 1.0)], 16, 4).unwrap();
        let a = enc.encode(&[0.2, 0.8]);
        let near = enc.encode(&[0.22, 0.81]);
        let far = enc.encode(&[0.9, 0.1]);
        assert!(a.similarity(&near) > a.similarity(&far));
    }

    #[test]
    fn record_encoder_deterministic() {
        let e1 = RecordEncoder::new(DIM, &[(0.0, 1.0)], 8, 9).unwrap();
        let e2 = RecordEncoder::new(DIM, &[(0.0, 1.0)], 8, 9).unwrap();
        assert_eq!(e1.encode(&[0.5]), e2.encode(&[0.5]));
    }

    #[test]
    fn record_encoder_validation() {
        assert!(RecordEncoder::new(DIM, &[], 8, 0).is_err());
        assert!(RecordEncoder::new(DIM, &[(1.0, 0.0)], 8, 0).is_err());
    }

    #[test]
    fn encode_batch_matches_serial_encode() {
        let enc = RecordEncoder::new(DIM, &[(0.0, 1.0), (-1.0, 1.0)], 16, 7).unwrap();
        let mut rng = Rng::from_seed(21);
        // More rows than one chunk, not a multiple of the chunk size.
        let rows: Vec<Vec<f64>> = (0..77)
            .map(|_| vec![rng.uniform(), rng.uniform_in(-1.0, 1.0)])
            .collect();
        let expected: Vec<BinaryHv> = rows.iter().map(|r| enc.encode(r)).collect();
        for workers in [1, 3, 4] {
            let batch = enc.encode_batch(&rows, Parallelism::new(workers));
            assert_eq!(batch, expected, "worker count {workers}");
        }
        assert!(enc.encode_batch(&[], Parallelism::new(4)).is_empty());
    }

    #[test]
    fn encode_into_reused_accumulator_matches_encode() {
        let enc = RecordEncoder::new(DIM, &[(0.0, 1.0), (-2.0, 2.0)], 12, 5).unwrap();
        let mut rng = Rng::from_seed(33);
        let mut acc = BundleAccumulator::new(enc.dim());
        for _ in 0..20 {
            let row = vec![rng.uniform(), rng.uniform_in(-2.0, 2.0)];
            assert_eq!(enc.encode_into(&row, &mut acc), enc.encode(&row));
        }
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn record_encoder_wrong_arity_panics() {
        let enc = RecordEncoder::new(DIM, &[(0.0, 1.0)], 8, 0).unwrap();
        let _ = enc.encode(&[0.5, 0.5]);
    }
}
