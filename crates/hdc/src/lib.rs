//! # lori-hdc
//!
//! Hyperdimensional computing (HDC) for the LORI workspace.
//!
//! Sec. II of the paper presents HDC as a brain-inspired algorithm that keeps
//! working on unreliable hardware: instead of fault-sensitive matrix
//! multiplications, inference is a similarity comparison between hypervectors
//! with thousands of i.i.d. components, so even ~40 % component error rates
//! cost only a fraction of a percent of accuracy. The paper also describes
//! HDC models that *mimic confidential physics-based aging models*
//! (waveform → ΔVth) so foundries can share predictive power without sharing
//! physics (ref \[18\]).
//!
//! This crate provides:
//!
//! - [`hypervector`] — bit-packed binary hypervectors (XOR bind, majority
//!   bundle, rotation permute, Hamming similarity) and bipolar hypervectors
//!   (sign algebra, cosine similarity);
//! - [`encoder`] — item memories, level (thermometer) encoding for continuous
//!   values, and record-based encoding of feature vectors;
//! - [`classifier`] — a prototype-bundling classifier with perceptron-style
//!   retraining;
//! - [`regressor`] — similarity-weighted regression used to mimic aging
//!   models;
//! - [`noise`] — component-error injection for robustness experiments (E5).
//!
//! ```
//! use lori_hdc::hypervector::BinaryHv;
//! use lori_core::Rng;
//!
//! let mut rng = Rng::from_seed(1);
//! let a = BinaryHv::random(4096, &mut rng);
//! let b = BinaryHv::random(4096, &mut rng);
//! // Random hypervectors are quasi-orthogonal: similarity ~ 0.5.
//! assert!((a.similarity(&b) - 0.5).abs() < 0.05);
//! // Binding is self-inverse.
//! assert_eq!(a.bind(&b).bind(&b), a);
//! ```

pub mod classifier;
pub mod encoder;
pub mod error;
pub mod hypervector;
pub mod noise;
pub mod regressor;
pub mod sequence;

pub use error::HdcError;
