//! Sequence encoding with permutation n-grams.
//!
//! The HDC literature the paper cites (refs \[13\]\[15\]) classifies languages
//! and bio-signals by encoding symbol *sequences*: an n-gram
//! `s₁ s₂ … sₙ` becomes `ρⁿ⁻¹(H(s₁)) ⊕ … ⊕ ρ(H(sₙ₋₁)) ⊕ H(sₙ)` (permute
//! encodes position, XOR binds), and a sequence is the bundle of its
//! n-grams. Useful in LORI for encoding instruction streams and workload
//! phases.

use crate::encoder::ItemMemory;
use crate::error::HdcError;
use crate::hypervector::{BinaryHv, BundleAccumulator};
use lori_core::Rng;

/// An n-gram sequence encoder over symbol ids.
#[derive(Debug, Clone)]
pub struct NgramEncoder {
    memory: ItemMemory,
    n: usize,
    tie_break: BinaryHv,
}

impl NgramEncoder {
    /// Creates an encoder producing `dim`-dimensional codes from `n`-grams.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ZeroDimension`] for `dim == 0` or
    /// [`HdcError::InvalidEncoder`] for `n == 0`.
    pub fn new(dim: usize, n: usize, seed: u64) -> Result<Self, HdcError> {
        if n == 0 {
            return Err(HdcError::InvalidEncoder("n must be positive"));
        }
        let memory = ItemMemory::new(dim, seed)?;
        let mut rng = Rng::from_seed(seed ^ 0x5E9_0BEF);
        let tie_break = BinaryHv::random(dim, &mut rng);
        Ok(NgramEncoder {
            memory,
            n,
            tie_break,
        })
    }

    /// The n-gram order.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Encodes one n-gram window (`window.len() == n`).
    ///
    /// # Panics
    ///
    /// Panics if the window length differs from `n`.
    pub fn encode_ngram(&mut self, window: &[u64]) -> BinaryHv {
        assert_eq!(window.len(), self.n, "window length must equal n");
        let mut acc: Option<BinaryHv> = None;
        for (i, &symbol) in window.iter().enumerate() {
            let shift = self.n - 1 - i;
            let hv = self.memory.get(symbol).permute(shift);
            acc = Some(match acc {
                Some(a) => a.bind(&hv),
                None => hv,
            });
        }
        acc.expect("n >= 1")
    }

    /// Encodes a whole sequence as the bundle of its sliding n-grams.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyTrainingSet`] if the sequence is shorter
    /// than `n`.
    pub fn encode_sequence(&mut self, symbols: &[u64]) -> Result<BinaryHv, HdcError> {
        if symbols.len() < self.n {
            return Err(HdcError::EmptyTrainingSet);
        }
        let mut acc = BundleAccumulator::new(self.memory.dim());
        for window in symbols.windows(self.n) {
            acc.add(&self.encode_ngram(window));
        }
        Ok(acc.majority(&self.tie_break))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIM: usize = 2048;

    #[test]
    fn construction_validates() {
        assert!(NgramEncoder::new(DIM, 3, 1).is_ok());
        assert!(NgramEncoder::new(DIM, 0, 1).is_err());
        assert!(NgramEncoder::new(0, 3, 1).is_err());
    }

    #[test]
    fn order_matters() {
        let mut enc = NgramEncoder::new(DIM, 3, 2).unwrap();
        let abc = enc.encode_ngram(&[1, 2, 3]);
        let cba = enc.encode_ngram(&[3, 2, 1]);
        assert!((abc.similarity(&cba) - 0.5).abs() < 0.06, "order ignored");
        // Same window encodes identically.
        assert_eq!(abc, enc.encode_ngram(&[1, 2, 3]));
    }

    #[test]
    fn similar_sequences_have_similar_codes() {
        let mut enc = NgramEncoder::new(DIM, 3, 3).unwrap();
        let base: Vec<u64> = (0..40).map(|i| i % 7).collect();
        let mut near = base.clone();
        near[20] = 99; // one substitution
        let far: Vec<u64> = (0..40).map(|i| (i * 13 + 5) % 11 + 100).collect();
        let h_base = enc.encode_sequence(&base).unwrap();
        let h_near = enc.encode_sequence(&near).unwrap();
        let h_far = enc.encode_sequence(&far).unwrap();
        assert!(
            h_base.similarity(&h_near) > h_base.similarity(&h_far) + 0.1,
            "near {} vs far {}",
            h_base.similarity(&h_near),
            h_base.similarity(&h_far)
        );
    }

    #[test]
    fn short_sequence_rejected() {
        let mut enc = NgramEncoder::new(DIM, 4, 4).unwrap();
        assert!(enc.encode_sequence(&[1, 2, 3]).is_err());
        assert!(enc.encode_sequence(&[1, 2, 3, 4]).is_ok());
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn wrong_window_panics() {
        let mut enc = NgramEncoder::new(DIM, 3, 5).unwrap();
        let _ = enc.encode_ngram(&[1, 2]);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = NgramEncoder::new(DIM, 2, 9).unwrap();
        let mut b = NgramEncoder::new(DIM, 2, 9).unwrap();
        let seq = [4u64, 5, 6, 7];
        assert_eq!(
            a.encode_sequence(&seq).unwrap(),
            b.encode_sequence(&seq).unwrap()
        );
    }
}
