//! Similarity-weighted HDC regression.
//!
//! Ref \[18\] of the paper trains an HDC model to mimic a confidential
//! physics-based aging model: gate-voltage waveform features in, predicted
//! threshold-voltage degradation ΔVth out. Because the learned model lives
//! in hypervector space, it abstracts away the proprietary physics while
//! keeping the predictive relationship — the foundry can ship the model.
//!
//! The regressor quantizes the target range into prototype buckets, bundles
//! the encodings of all training samples that fall in each bucket, and
//! predicts by similarity-weighted averaging over bucket centers.

use crate::encoder::RecordEncoder;
use crate::error::HdcError;
use crate::hypervector::{BinaryHv, BundleAccumulator};
use lori_core::Rng;

/// Configuration for HDC regression.
#[derive(Debug, Clone, PartialEq)]
pub struct HdcRegressorConfig {
    /// Hypervector dimensionality.
    pub dim: usize,
    /// Quantization levels per input feature.
    pub levels: usize,
    /// Number of target buckets (prototypes).
    pub buckets: usize,
    /// Softmax sharpness for similarity weighting; higher = closer to
    /// nearest-bucket readout.
    pub sharpness: f64,
    /// Seed for encoder construction.
    pub seed: u64,
}

impl Default for HdcRegressorConfig {
    fn default() -> Self {
        HdcRegressorConfig {
            dim: 4096,
            levels: 32,
            buckets: 24,
            sharpness: 60.0,
            seed: 0,
        }
    }
}

/// A trained HDC regressor.
#[derive(Debug, Clone)]
pub struct HdcRegressor {
    encoder: RecordEncoder,
    prototypes: Vec<BinaryHv>,
    bucket_centers: Vec<f64>,
    sharpness: f64,
}

impl HdcRegressor {
    /// Trains on feature rows and continuous targets.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyTrainingSet`] for empty/mismatched input or
    /// [`HdcError::InvalidEncoder`] for degenerate configurations (zero
    /// buckets, constant targets are handled by widening the range).
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], config: &HdcRegressorConfig) -> Result<Self, HdcError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(HdcError::EmptyTrainingSet);
        }
        if config.buckets == 0 || config.sharpness.is_nan() || config.sharpness <= 0.0 {
            return Err(HdcError::InvalidEncoder("buckets/sharpness"));
        }
        let d = xs[0].len();
        let mut ranges = vec![(f64::INFINITY, f64::NEG_INFINITY); d];
        for row in xs {
            for (r, &v) in ranges.iter_mut().zip(row) {
                r.0 = r.0.min(v);
                r.1 = r.1.max(v);
            }
        }
        for r in &mut ranges {
            if r.1 - r.0 < 1e-12 {
                r.0 -= 0.5;
                r.1 += 0.5;
            }
        }
        let encoder = RecordEncoder::new(config.dim, &ranges, config.levels, config.seed)?;
        let mut rng = Rng::from_seed(config.seed ^ 0x4E67_BEEF);
        let tie = BinaryHv::random(config.dim, &mut rng);

        let (mut y_lo, mut y_hi) = ys
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &y| {
                (lo.min(y), hi.max(y))
            });
        if y_hi - y_lo < 1e-12 {
            y_lo -= 0.5;
            y_hi += 0.5;
        }
        let b = config.buckets;
        let mut accs: Vec<BundleAccumulator> =
            (0..b).map(|_| BundleAccumulator::new(config.dim)).collect();
        let mut sums = vec![0.0f64; b];
        let mut counts = vec![0usize; b];
        for (row, &y) in xs.iter().zip(ys) {
            #[allow(
                clippy::cast_precision_loss,
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss
            )]
            let bucket = (((y - y_lo) / (y_hi - y_lo) * b as f64).floor() as usize).min(b - 1);
            accs[bucket].add(&encoder.encode(row));
            sums[bucket] += y;
            counts[bucket] += 1;
        }
        let mut prototypes = Vec::new();
        let mut bucket_centers = Vec::new();
        for ((acc, &sum), &count) in accs.iter().zip(&sums).zip(&counts) {
            if count > 0 {
                prototypes.push(acc.majority(&tie));
                #[allow(clippy::cast_precision_loss)]
                bucket_centers.push(sum / count as f64);
            }
        }
        if prototypes.is_empty() {
            return Err(HdcError::EmptyTrainingSet);
        }
        Ok(HdcRegressor {
            encoder,
            prototypes,
            bucket_centers,
            sharpness: config.sharpness,
        })
    }

    /// Encodes a sample (exposed for noise-injection experiments).
    #[must_use]
    pub fn encode(&self, x: &[f64]) -> BinaryHv {
        self.encoder.encode(x)
    }

    /// Predicts from an already-encoded hypervector.
    #[must_use]
    pub fn predict_encoded(&self, hv: &BinaryHv) -> f64 {
        // Softmax over similarities, weighted sum of bucket centers.
        let sims: Vec<f64> = self.prototypes.iter().map(|p| p.similarity(hv)).collect();
        let max = sims.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut wsum = 0.0;
        let mut total = 0.0;
        for (&s, &c) in sims.iter().zip(&self.bucket_centers) {
            let w = ((s - max) * self.sharpness).exp();
            wsum += w * c;
            total += w;
        }
        wsum / total
    }

    /// Predicts the target for a raw feature row.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.predict_encoded(&self.encode(x))
    }

    /// Number of non-empty prototype buckets.
    #[must_use]
    pub fn prototype_count(&self) -> usize {
        self.prototypes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monotone_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = Rng::from_seed(seed);
        let xs: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.uniform_in(0.0, 1.0)]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 2.0 * r[0] + 0.5).collect();
        (xs, ys)
    }

    #[test]
    fn fits_monotone_function() {
        let (xs, ys) = monotone_data(500, 1);
        let reg = HdcRegressor::fit(&xs, &ys, &HdcRegressorConfig::default()).unwrap();
        let mut max_err: f64 = 0.0;
        for q in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let pred = reg.predict(&[q]);
            let truth = 2.0 * q + 0.5;
            max_err = max_err.max((pred - truth).abs());
        }
        assert!(max_err < 0.25, "max error {max_err}");
    }

    #[test]
    fn prediction_within_target_range() {
        let (xs, ys) = monotone_data(200, 2);
        let reg = HdcRegressor::fit(&xs, &ys, &HdcRegressorConfig::default()).unwrap();
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            let p = reg.predict(&[q]);
            assert!(
                p >= lo - 1e-9 && p <= hi + 1e-9,
                "prediction {p} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn validation() {
        assert!(matches!(
            HdcRegressor::fit(&[], &[], &HdcRegressorConfig::default()),
            Err(HdcError::EmptyTrainingSet)
        ));
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![0.0, 1.0];
        let bad = HdcRegressorConfig {
            buckets: 0,
            ..HdcRegressorConfig::default()
        };
        assert!(HdcRegressor::fit(&xs, &ys, &bad).is_err());
    }

    #[test]
    fn constant_targets_handled() {
        let xs = vec![vec![0.0], vec![0.5], vec![1.0]];
        let ys = vec![3.0, 3.0, 3.0];
        let reg = HdcRegressor::fit(&xs, &ys, &HdcRegressorConfig::default()).unwrap();
        assert!((reg.predict(&[0.25]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn robust_to_component_noise() {
        // The aging-model-mimicry claim: moderate component errors should
        // barely move the prediction.
        let (xs, ys) = monotone_data(500, 3);
        let reg = HdcRegressor::fit(&xs, &ys, &HdcRegressorConfig::default()).unwrap();
        let mut rng = Rng::from_seed(4);
        let hv = reg.encode(&[0.5]);
        let clean = reg.predict_encoded(&hv);
        let noisy_hv = crate::noise::flip_components(&hv, 0.2, &mut rng);
        let noisy = reg.predict_encoded(&noisy_hv);
        assert!((clean - noisy).abs() < 0.3, "clean {clean} noisy {noisy}");
    }
}
