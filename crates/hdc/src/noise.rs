//! Component-error injection for HDC robustness experiments.
//!
//! The paper's headline HDC claim (Sec. II): "Despite an error rate of about
//! 40 % on average, the inference accuracy with HDC drops only by 0.5 %".
//! Experiment E5 reproduces the shape of this claim by flipping a controlled
//! fraction of hypervector components before classification.

use crate::hypervector::BinaryHv;
use lori_core::Rng;

/// Returns a copy of `hv` with each component independently flipped with
/// probability `error_rate` (clamped to `[0, 1]`).
///
/// This models unreliable hardware corrupting individual components of the
/// in-memory hypervector representation.
#[must_use]
pub fn flip_components(hv: &BinaryHv, error_rate: f64, rng: &mut Rng) -> BinaryHv {
    let p = error_rate.clamp(0.0, 1.0);
    let dim = hv.dim();
    let mut out = hv.clone();
    // Draw one Bernoulli per component in ascending index order — the same
    // RNG stream a per-bit loop would consume — but accumulate the flips
    // into a per-word mask applied with a single XOR on the packed
    // representation.
    for (w, word) in out.words_mut().iter_mut().enumerate() {
        let bits = 64.min(dim - w * 64);
        let mut mask = 0u64;
        for b in 0..bits {
            if rng.bernoulli(p) {
                mask |= 1u64 << b;
            }
        }
        *word ^= mask;
    }
    out
}

/// Returns a copy of `hv` with exactly `count` distinct components flipped.
///
/// # Panics
///
/// Panics if `count > hv.dim()`.
#[must_use]
pub fn flip_exact(hv: &BinaryHv, count: usize, rng: &mut Rng) -> BinaryHv {
    assert!(count <= hv.dim(), "cannot flip more components than exist");
    let mut out = hv.clone();
    // Same index sample, but batched: sampled indices fold into per-word
    // XOR masks instead of one read-modify-write per flipped bit. Indices
    // are distinct, so no flip cancels another.
    let mut masks = vec![0u64; out.words_mut().len()];
    for i in rng.sample_indices(hv.dim(), count) {
        masks[i / 64] |= 1u64 << (i % 64);
    }
    for (word, mask) in out.words_mut().iter_mut().zip(masks) {
        *word ^= mask;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_noise_is_identity() {
        let mut rng = Rng::from_seed(1);
        let hv = BinaryHv::random(1024, &mut rng);
        assert_eq!(flip_components(&hv, 0.0, &mut rng), hv);
        assert_eq!(flip_exact(&hv, 0, &mut rng), hv);
    }

    #[test]
    fn full_noise_is_complement() {
        let mut rng = Rng::from_seed(2);
        let hv = BinaryHv::random(1024, &mut rng);
        let flipped = flip_components(&hv, 1.0, &mut rng);
        assert!((hv.similarity(&flipped)).abs() < 1e-12);
    }

    #[test]
    fn flip_exact_changes_exact_count() {
        let mut rng = Rng::from_seed(3);
        let hv = BinaryHv::random(1024, &mut rng);
        let flipped = flip_exact(&hv, 100, &mut rng);
        // similarity = 1 - 100/1024
        let expect = 1.0 - 100.0 / 1024.0;
        assert!((hv.similarity(&flipped) - expect).abs() < 1e-12);
    }

    #[test]
    fn noise_rate_matches_similarity_drop() {
        let mut rng = Rng::from_seed(4);
        let hv = BinaryHv::random(8192, &mut rng);
        let noisy = flip_components(&hv, 0.3, &mut rng);
        let s = hv.similarity(&noisy);
        assert!((s - 0.7).abs() < 0.03, "similarity {s}");
    }

    #[test]
    fn word_mask_flip_matches_per_bit_reference() {
        // Guards the RNG draw order: the word-mask fast path must consume
        // the Bernoulli stream exactly like a naive per-bit loop, including
        // over a partial tail word (1000 % 64 != 0).
        let mut seed_rng = Rng::from_seed(77);
        let hv = BinaryHv::random(1000, &mut seed_rng);
        let mut rng_fast = Rng::from_seed(123);
        let mut rng_ref = Rng::from_seed(123);
        let fast = flip_components(&hv, 0.25, &mut rng_fast);
        let mut reference = hv.clone();
        for i in 0..hv.dim() {
            if rng_ref.bernoulli(0.25) {
                let b = reference.bit(i);
                reference.set_bit(i, !b);
            }
        }
        assert_eq!(fast, reference);
        // And the two RNGs must end in the same position.
        assert_eq!(rng_fast.next_u64(), rng_ref.next_u64());
    }

    #[test]
    fn flip_exact_word_mask_matches_per_bit_reference() {
        // Same draw-order guard for the exact-count path, including a
        // partial tail word.
        let mut seed_rng = Rng::from_seed(78);
        let hv = BinaryHv::random(1000, &mut seed_rng);
        let mut rng_fast = Rng::from_seed(321);
        let mut rng_ref = Rng::from_seed(321);
        let fast = flip_exact(&hv, 137, &mut rng_fast);
        let mut reference = hv.clone();
        for i in rng_ref.sample_indices(hv.dim(), 137) {
            let b = reference.bit(i);
            reference.set_bit(i, !b);
        }
        assert_eq!(fast, reference);
        assert_eq!(rng_fast.next_u64(), rng_ref.next_u64());
    }

    #[test]
    #[should_panic(expected = "cannot flip more components")]
    fn flip_exact_overflow_panics() {
        let mut rng = Rng::from_seed(5);
        let hv = BinaryHv::random(64, &mut rng);
        let _ = flip_exact(&hv, 65, &mut rng);
    }
}
