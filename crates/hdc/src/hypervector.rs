//! Hypervector types and algebra.
//!
//! Two representations are provided, matching the two families used in the
//! HDC literature the paper builds on:
//!
//! - [`BinaryHv`]: bit-packed `{0,1}` components. Bind = XOR, similarity =
//!   1 − normalized Hamming distance, bundling via a majority vote
//!   accumulated in a [`BundleAccumulator`]. This is the memory- and
//!   throughput-efficient representation (64 components per word, popcount
//!   similarity).
//! - [`BipolarHv`]: `{−1,+1}` components stored as `i8`. Bind =
//!   component-wise product, similarity = cosine, bundling = component sum +
//!   sign. Easier math, 8× the memory.
//!
//! Both keep components i.i.d. by construction — the property the paper
//! credits for HDC's robustness to hardware errors.

use crate::error::HdcError;
use lori_core::Rng;

/// A bit-packed binary hypervector.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BinaryHv {
    dim: usize,
    words: Vec<u64>,
}

impl BinaryHv {
    /// An all-zeros hypervector.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    #[must_use]
    pub fn zeros(dim: usize) -> Self {
        assert!(dim > 0, "hypervector dimension must be positive");
        BinaryHv {
            dim,
            words: vec![0; dim.div_ceil(64)],
        }
    }

    /// A uniformly random hypervector (each component i.i.d. Bernoulli(½)).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    #[must_use]
    pub fn random(dim: usize, rng: &mut Rng) -> Self {
        let mut hv = BinaryHv::zeros(dim);
        for w in &mut hv.words {
            *w = rng.next_u64();
        }
        hv.mask_tail();
        hv
    }

    /// Dimensionality (number of components).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The component at `i` as a bool.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim`.
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.dim, "component index out of range");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the component at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim`.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        assert!(i < self.dim, "component index out of range");
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Toggles the component at `i` with a single XOR on its word — the
    /// in-place fast path for noise injection and fault flips.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim`.
    pub fn flip_bit(&mut self, i: usize) {
        assert!(i < self.dim, "component index out of range");
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Mutable access to the packed words, for crate-internal bulk bit
    /// operations. Callers must not set bits at or above `dim` in the last
    /// word (the tail is kept zero as an invariant).
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// XOR binding: associates two hypervectors. Self-inverse:
    /// `a.bind(b).bind(b) == a`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn bind(&self, other: &BinaryHv) -> BinaryHv {
        assert_eq!(self.dim, other.dim, "hypervector dimensions differ");
        BinaryHv {
            dim: self.dim,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a ^ b)
                .collect(),
        }
    }

    /// Cyclic permutation by `k` component positions (used to encode
    /// sequence order). Bijective; `permute(k)` then `permute(dim - k)` is
    /// the identity.
    #[must_use]
    pub fn permute(&self, k: usize) -> BinaryHv {
        let k = k % self.dim;
        let mut out = BinaryHv::zeros(self.dim);
        for i in 0..self.dim {
            if self.bit(i) {
                out.set_bit((i + k) % self.dim, true);
            }
        }
        out
    }

    /// Normalized similarity in `[0, 1]`: `1 − hamming/dim`. Equal vectors
    /// score 1; complementary vectors score 0; random pairs ≈ 0.5.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn similarity(&self, other: &BinaryHv) -> f64 {
        assert_eq!(self.dim, other.dim, "hypervector dimensions differ");
        let hamming: u32 = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        #[allow(clippy::cast_precision_loss)]
        {
            1.0 - f64::from(hamming) / self.dim as f64
        }
    }

    /// Number of set components.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears any bits beyond `dim` in the last word.
    fn mask_tail(&mut self) {
        let rem = self.dim % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// An accumulator for majority-vote bundling of binary hypervectors.
///
/// Bundling `n` vectors takes each component to the majority value; ties
/// (even `n`) are broken by a caller-supplied tie-break vector so the result
/// stays deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleAccumulator {
    dim: usize,
    counts: Vec<i32>,
    n: usize,
}

impl BundleAccumulator {
    /// An empty accumulator for `dim`-dimensional vectors.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "hypervector dimension must be positive");
        BundleAccumulator {
            dim,
            counts: vec![0; dim],
            n: 0,
        }
    }

    /// Adds a hypervector to the bundle.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add(&mut self, hv: &BinaryHv) {
        assert_eq!(self.dim, hv.dim(), "hypervector dimensions differ");
        for (i, c) in self.counts.iter_mut().enumerate() {
            *c += if hv.bit(i) { 1 } else { -1 };
        }
        self.n += 1;
    }

    /// Removes a previously-added hypervector (for online retraining).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if the accumulator is empty.
    pub fn subtract(&mut self, hv: &BinaryHv) {
        assert_eq!(self.dim, hv.dim(), "hypervector dimensions differ");
        assert!(self.n > 0, "cannot subtract from an empty bundle");
        for (i, c) in self.counts.iter_mut().enumerate() {
            *c -= if hv.bit(i) { 1 } else { -1 };
        }
        self.n -= 1;
    }

    /// Number of vectors currently bundled.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the accumulator is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Empties the accumulator in place, keeping its allocation, so batch
    /// encoders can reuse one scratch accumulator across rows.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.n = 0;
    }

    /// Majority-vote readout. Zero counts (ties) take the corresponding bit
    /// of `tie_break`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch with `tie_break`.
    #[must_use]
    pub fn majority(&self, tie_break: &BinaryHv) -> BinaryHv {
        assert_eq!(self.dim, tie_break.dim(), "hypervector dimensions differ");
        let mut out = BinaryHv::zeros(self.dim);
        for (i, &c) in self.counts.iter().enumerate() {
            let bit = match c.cmp(&0) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => tie_break.bit(i),
            };
            out.set_bit(i, bit);
        }
        out
    }
}

/// A bipolar (`{−1,+1}`) hypervector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipolarHv {
    components: Vec<i8>,
}

impl BipolarHv {
    /// A uniformly random bipolar hypervector.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    #[must_use]
    pub fn random(dim: usize, rng: &mut Rng) -> Self {
        assert!(dim > 0, "hypervector dimension must be positive");
        BipolarHv {
            components: (0..dim)
                .map(|_| if rng.bernoulli(0.5) { 1 } else { -1 })
                .collect(),
        }
    }

    /// Builds from raw `{−1,+1}` components.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ZeroDimension`] for empty input or
    /// [`HdcError::InvalidEncoder`] if any component is not ±1.
    pub fn from_components(components: Vec<i8>) -> Result<Self, HdcError> {
        if components.is_empty() {
            return Err(HdcError::ZeroDimension);
        }
        if components.iter().any(|&c| c != 1 && c != -1) {
            return Err(HdcError::InvalidEncoder("components must be ±1"));
        }
        Ok(BipolarHv { components })
    }

    /// Dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.components.len()
    }

    /// The raw components.
    #[must_use]
    pub fn components(&self) -> &[i8] {
        &self.components
    }

    /// Component-wise product binding (self-inverse, like XOR).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn bind(&self, other: &BipolarHv) -> BipolarHv {
        assert_eq!(self.dim(), other.dim(), "hypervector dimensions differ");
        BipolarHv {
            components: self
                .components
                .iter()
                .zip(&other.components)
                .map(|(a, b)| a * b)
                .collect(),
        }
    }

    /// Cosine similarity in `[−1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn similarity(&self, other: &BipolarHv) -> f64 {
        assert_eq!(self.dim(), other.dim(), "hypervector dimensions differ");
        let dot: i64 = self
            .components
            .iter()
            .zip(&other.components)
            .map(|(&a, &b)| i64::from(a) * i64::from(b))
            .sum();
        #[allow(clippy::cast_precision_loss)]
        {
            dot as f64 / self.dim() as f64
        }
    }

    /// Bundles several vectors by component-wise sum + sign; ties fall back
    /// to the first vector's component.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyTrainingSet`] on an empty input or
    /// [`HdcError::DimensionMismatch`] if dimensions differ.
    pub fn bundle(vectors: &[BipolarHv]) -> Result<BipolarHv, HdcError> {
        let first = vectors.first().ok_or(HdcError::EmptyTrainingSet)?;
        let dim = first.dim();
        let mut sums = vec![0i32; dim];
        for v in vectors {
            if v.dim() != dim {
                return Err(HdcError::DimensionMismatch {
                    left: dim,
                    right: v.dim(),
                });
            }
            for (s, &c) in sums.iter_mut().zip(&v.components) {
                *s += i32::from(c);
            }
        }
        let components = sums
            .iter()
            .enumerate()
            .map(|(i, &s)| match s.cmp(&0) {
                std::cmp::Ordering::Greater => 1,
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => first.components[i],
            })
            .collect();
        Ok(BipolarHv { components })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIM: usize = 2048;

    #[test]
    fn random_vectors_quasi_orthogonal() {
        let mut rng = Rng::from_seed(1);
        let a = BinaryHv::random(DIM, &mut rng);
        let b = BinaryHv::random(DIM, &mut rng);
        let s = a.similarity(&b);
        assert!((s - 0.5).abs() < 0.05, "similarity {s}");
        assert!((a.similarity(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bind_is_self_inverse() {
        let mut rng = Rng::from_seed(2);
        let a = BinaryHv::random(DIM, &mut rng);
        let b = BinaryHv::random(DIM, &mut rng);
        assert_eq!(a.bind(&b).bind(&b), a);
    }

    #[test]
    fn bind_preserves_distance_structure() {
        // Binding with the same key preserves similarity between operands.
        let mut rng = Rng::from_seed(3);
        let a = BinaryHv::random(DIM, &mut rng);
        let b = BinaryHv::random(DIM, &mut rng);
        let key = BinaryHv::random(DIM, &mut rng);
        let s_before = a.similarity(&b);
        let s_after = a.bind(&key).similarity(&b.bind(&key));
        assert!((s_before - s_after).abs() < 1e-12);
    }

    #[test]
    fn bind_result_dissimilar_to_operands() {
        let mut rng = Rng::from_seed(4);
        let a = BinaryHv::random(DIM, &mut rng);
        let b = BinaryHv::random(DIM, &mut rng);
        let bound = a.bind(&b);
        assert!((bound.similarity(&a) - 0.5).abs() < 0.05);
        assert!((bound.similarity(&b) - 0.5).abs() < 0.05);
    }

    #[test]
    fn permute_is_bijective() {
        let mut rng = Rng::from_seed(5);
        let a = BinaryHv::random(DIM, &mut rng);
        let p = a.permute(7);
        assert_eq!(p.count_ones(), a.count_ones());
        assert_eq!(p.permute(DIM - 7), a);
        assert_eq!(a.permute(0), a);
        assert_eq!(a.permute(DIM), a);
    }

    #[test]
    fn permuted_vector_dissimilar() {
        let mut rng = Rng::from_seed(6);
        let a = BinaryHv::random(DIM, &mut rng);
        assert!((a.permute(1).similarity(&a) - 0.5).abs() < 0.05);
    }

    #[test]
    fn non_multiple_of_64_dims_work() {
        let mut rng = Rng::from_seed(7);
        let a = BinaryHv::random(100, &mut rng);
        let b = BinaryHv::random(100, &mut rng);
        assert_eq!(a.dim(), 100);
        assert!(a.count_ones() <= 100);
        let s = a.similarity(&b);
        assert!((0.0..=1.0).contains(&s));
        assert_eq!(a.bind(&b).bind(&b), a);
        // Permutation must stay within 100 components.
        assert_eq!(a.permute(40).permute(60), a);
    }

    #[test]
    fn bit_set_get_roundtrip() {
        let mut hv = BinaryHv::zeros(130);
        hv.set_bit(0, true);
        hv.set_bit(64, true);
        hv.set_bit(129, true);
        assert!(hv.bit(0) && hv.bit(64) && hv.bit(129));
        assert!(!hv.bit(1));
        assert_eq!(hv.count_ones(), 3);
        hv.set_bit(64, false);
        assert_eq!(hv.count_ones(), 2);
    }

    #[test]
    fn bundle_majority_is_similar_to_members() {
        let mut rng = Rng::from_seed(8);
        let members: Vec<BinaryHv> = (0..5).map(|_| BinaryHv::random(DIM, &mut rng)).collect();
        let outsider = BinaryHv::random(DIM, &mut rng);
        let tie = BinaryHv::random(DIM, &mut rng);
        let mut acc = BundleAccumulator::new(DIM);
        for m in &members {
            acc.add(m);
        }
        let proto = acc.majority(&tie);
        for m in &members {
            let sm = proto.similarity(m);
            let so = proto.similarity(&outsider);
            assert!(sm > so + 0.05, "member {sm} vs outsider {so}");
        }
    }

    #[test]
    fn bundle_subtract_undoes_add() {
        let mut rng = Rng::from_seed(9);
        let a = BinaryHv::random(DIM, &mut rng);
        let b = BinaryHv::random(DIM, &mut rng);
        let tie = BinaryHv::random(DIM, &mut rng);
        let mut acc = BundleAccumulator::new(DIM);
        acc.add(&a);
        let before = acc.majority(&tie);
        acc.add(&b);
        acc.subtract(&b);
        assert_eq!(acc.len(), 1);
        assert_eq!(acc.majority(&tie), before);
    }

    #[test]
    #[should_panic(expected = "cannot subtract from an empty bundle")]
    fn bundle_subtract_empty_panics() {
        let mut rng = Rng::from_seed(10);
        let a = BinaryHv::random(64, &mut rng);
        let mut acc = BundleAccumulator::new(64);
        acc.subtract(&a);
    }

    #[test]
    fn bipolar_roundtrip_and_similarity() {
        let mut rng = Rng::from_seed(11);
        let a = BipolarHv::random(DIM, &mut rng);
        let b = BipolarHv::random(DIM, &mut rng);
        assert!((a.similarity(&a) - 1.0).abs() < 1e-12);
        assert!(a.similarity(&b).abs() < 0.1);
        assert_eq!(a.bind(&b).bind(&b), a);
    }

    #[test]
    fn bipolar_bundle_similarity() {
        let mut rng = Rng::from_seed(12);
        let members: Vec<BipolarHv> = (0..7).map(|_| BipolarHv::random(DIM, &mut rng)).collect();
        let outsider = BipolarHv::random(DIM, &mut rng);
        let proto = BipolarHv::bundle(&members).unwrap();
        for m in &members {
            assert!(proto.similarity(m) > proto.similarity(&outsider) + 0.05);
        }
    }

    #[test]
    fn bipolar_validation() {
        assert_eq!(
            BipolarHv::from_components(vec![]),
            Err(HdcError::ZeroDimension)
        );
        assert!(BipolarHv::from_components(vec![1, -1, 0]).is_err());
        assert!(BipolarHv::from_components(vec![1, -1, 1]).is_ok());
        assert_eq!(BipolarHv::bundle(&[]), Err(HdcError::EmptyTrainingSet));
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        let _ = BinaryHv::zeros(0);
    }
}
