//! Error type for `lori-hdc`.

use std::fmt;

/// Errors produced by hypervector operations and HDC model training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HdcError {
    /// Hypervector dimensionality must be positive.
    ZeroDimension,
    /// Two hypervectors had different dimensionalities.
    DimensionMismatch {
        /// Dimension of the left operand.
        left: usize,
        /// Dimension of the right operand.
        right: usize,
    },
    /// A training set was empty or otherwise unusable.
    EmptyTrainingSet,
    /// An encoder was configured with an invalid range or level count.
    InvalidEncoder(&'static str),
    /// Fewer than two classes were provided to a classifier.
    SingleClass,
}

impl fmt::Display for HdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdcError::ZeroDimension => write!(f, "hypervector dimension must be positive"),
            HdcError::DimensionMismatch { left, right } => {
                write!(f, "hypervector dimensions differ: {left} vs {right}")
            }
            HdcError::EmptyTrainingSet => write!(f, "training set must not be empty"),
            HdcError::InvalidEncoder(what) => write!(f, "invalid encoder configuration: {what}"),
            HdcError::SingleClass => write!(f, "at least two classes are required"),
        }
    }
}

impl std::error::Error for HdcError {}
