//! A prototype-bundling HDC classifier with perceptron-style retraining.
//!
//! Training bundles all encoded samples of a class into a class prototype;
//! retraining epochs then move misclassified samples from the wrong
//! prototype to the right one (the standard "retraining" refinement from the
//! HDC classification literature the paper surveys, e.g. refs \[13\]\[15\]).

use crate::encoder::RecordEncoder;
use crate::error::HdcError;
use crate::hypervector::{BinaryHv, BundleAccumulator};
use lori_core::Rng;

/// Configuration for HDC classifier training.
#[derive(Debug, Clone, PartialEq)]
pub struct HdcClassifierConfig {
    /// Hypervector dimensionality.
    pub dim: usize,
    /// Quantization levels per feature.
    pub levels: usize,
    /// Retraining epochs after the initial bundling.
    pub retrain_epochs: usize,
    /// Seed for encoder construction and tie-breaking.
    pub seed: u64,
}

impl Default for HdcClassifierConfig {
    fn default() -> Self {
        HdcClassifierConfig {
            dim: 4096,
            levels: 32,
            retrain_epochs: 10,
            seed: 0,
        }
    }
}

/// A trained HDC classifier: one prototype hypervector per class.
#[derive(Debug, Clone)]
pub struct HdcClassifier {
    encoder: RecordEncoder,
    prototypes: Vec<BinaryHv>,
    n_classes: usize,
}

impl HdcClassifier {
    /// Trains on feature rows and class labels. Feature ranges for the level
    /// encoders are taken from the training data (min/max per feature).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyTrainingSet`] for empty input,
    /// [`HdcError::SingleClass`] if fewer than two classes appear, or
    /// encoder-configuration errors.
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[usize],
        config: &HdcClassifierConfig,
    ) -> Result<Self, HdcError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(HdcError::EmptyTrainingSet);
        }
        let n_classes = ys.iter().max().map_or(0, |m| m + 1);
        if n_classes < 2 {
            return Err(HdcError::SingleClass);
        }
        let d = xs[0].len();
        // Per-feature ranges with a little head-room so unseen values clamp
        // gracefully instead of saturating at training extremes.
        let mut ranges = vec![(f64::INFINITY, f64::NEG_INFINITY); d];
        for row in xs {
            for (r, &v) in ranges.iter_mut().zip(row) {
                r.0 = r.0.min(v);
                r.1 = r.1.max(v);
            }
        }
        for r in &mut ranges {
            if r.1 - r.0 < 1e-12 {
                r.0 -= 0.5;
                r.1 += 0.5;
            }
            let pad = (r.1 - r.0) * 0.05;
            r.0 -= pad;
            r.1 += pad;
        }
        let encoder = RecordEncoder::new(config.dim, &ranges, config.levels, config.seed)?;
        let mut rng = Rng::from_seed(config.seed ^ 0xC1A5_51F1);
        let tie = BinaryHv::random(config.dim, &mut rng);

        // Encode once (fanned out over LORI_THREADS workers; the encoding
        // is pure, so the result is worker-count independent), bundle per
        // class.
        let encoded: Vec<BinaryHv> = encoder.encode_batch(xs, lori_par::global());
        let mut accs: Vec<BundleAccumulator> = (0..n_classes)
            .map(|_| BundleAccumulator::new(config.dim))
            .collect();
        for (hv, &y) in encoded.iter().zip(ys) {
            accs[y].add(hv);
        }
        // Empty classes get a random prototype (never matched in practice).
        let mut prototypes: Vec<BinaryHv> = accs
            .iter()
            .map(|a| {
                if a.is_empty() {
                    BinaryHv::random(config.dim, &mut rng)
                } else {
                    a.majority(&tie)
                }
            })
            .collect();

        // Retraining: move misclassified samples between accumulators.
        for _ in 0..config.retrain_epochs {
            let mut changed = false;
            for (hv, &y) in encoded.iter().zip(ys) {
                let pred = nearest(&prototypes, hv);
                if pred != y {
                    accs[y].add(hv);
                    if !accs[pred].is_empty() {
                        accs[pred].subtract(hv);
                    }
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            for (p, a) in prototypes.iter_mut().zip(&accs) {
                if !a.is_empty() {
                    *p = a.majority(&tie);
                }
            }
        }

        Ok(HdcClassifier {
            encoder,
            prototypes,
            n_classes,
        })
    }

    /// Number of classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Hypervector dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.encoder.dim()
    }

    /// Encodes a sample into hyperspace (exposed so noise-injection
    /// experiments can corrupt the query vector before matching).
    #[must_use]
    pub fn encode(&self, x: &[f64]) -> BinaryHv {
        self.encoder.encode(x)
    }

    /// Classifies an already-encoded hypervector.
    #[must_use]
    pub fn classify_encoded(&self, hv: &BinaryHv) -> usize {
        nearest(&self.prototypes, hv)
    }

    /// Classifies a raw feature row.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> usize {
        self.classify_encoded(&self.encode(x))
    }

    /// Per-class similarities of an encoded query.
    #[must_use]
    pub fn similarities(&self, hv: &BinaryHv) -> Vec<f64> {
        self.prototypes.iter().map(|p| p.similarity(hv)).collect()
    }
}

fn nearest(prototypes: &[BinaryHv], hv: &BinaryHv) -> usize {
    let mut best = 0;
    let mut best_sim = f64::NEG_INFINITY;
    for (i, p) in prototypes.iter().enumerate() {
        let s = p.similarity(hv);
        if s > best_sim {
            best_sim = s;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = Rng::from_seed(seed);
        let centers = [(0.0, 0.0), (4.0, 4.0), (0.0, 4.0)];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let c = rng.below(3) as usize;
            let (cx, cy) = centers[c];
            xs.push(vec![rng.normal_with(cx, 0.5), rng.normal_with(cy, 0.5)]);
            ys.push(c);
        }
        (xs, ys)
    }

    #[test]
    fn classifies_blobs() {
        let (xs, ys) = blobs(300, 1);
        let clf = HdcClassifier::fit(&xs, &ys, &HdcClassifierConfig::default()).unwrap();
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| clf.predict(x) == y)
            .count();
        #[allow(clippy::cast_precision_loss)]
        let acc = correct as f64 / xs.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn generalizes_to_unseen() {
        let (xs, ys) = blobs(300, 2);
        let clf = HdcClassifier::fit(&xs, &ys, &HdcClassifierConfig::default()).unwrap();
        let (txs, tys) = blobs(100, 3);
        let correct = txs
            .iter()
            .zip(&tys)
            .filter(|(x, &y)| clf.predict(x) == y)
            .count();
        #[allow(clippy::cast_precision_loss)]
        let acc = correct as f64 / txs.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn similarities_have_class_structure() {
        let (xs, ys) = blobs(300, 4);
        let clf = HdcClassifier::fit(&xs, &ys, &HdcClassifierConfig::default()).unwrap();
        let hv = clf.encode(&[0.0, 0.0]);
        let sims = clf.similarities(&hv);
        assert_eq!(sims.len(), 3);
        assert!(sims[0] > sims[1]);
    }

    #[test]
    fn validation() {
        assert!(matches!(
            HdcClassifier::fit(&[], &[], &HdcClassifierConfig::default()),
            Err(HdcError::EmptyTrainingSet)
        ));
        let xs = vec![vec![0.0], vec![1.0]];
        assert!(matches!(
            HdcClassifier::fit(&xs, &[0, 0], &HdcClassifierConfig::default()),
            Err(HdcError::SingleClass)
        ));
    }

    #[test]
    fn constant_feature_handled() {
        let xs = vec![
            vec![1.0, 0.0],
            vec![1.0, 0.1],
            vec![1.0, 5.0],
            vec![1.0, 5.1],
        ];
        let ys = vec![0, 0, 1, 1];
        let clf = HdcClassifier::fit(&xs, &ys, &HdcClassifierConfig::default()).unwrap();
        assert_eq!(clf.predict(&[1.0, 0.05]), 0);
        assert_eq!(clf.predict(&[1.0, 5.05]), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let (xs, ys) = blobs(100, 5);
        let a = HdcClassifier::fit(&xs, &ys, &HdcClassifierConfig::default()).unwrap();
        let b = HdcClassifier::fit(&xs, &ys, &HdcClassifierConfig::default()).unwrap();
        for x in &xs {
            assert_eq!(a.predict(x), b.predict(x));
        }
    }
}
