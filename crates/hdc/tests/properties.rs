//! Property-based tests for hypervector algebra.

use lori_core::Rng;
use lori_hdc::hypervector::{BinaryHv, BipolarHv, BundleAccumulator};
use lori_hdc::noise::flip_exact;
use proptest::prelude::*;

proptest! {
    /// XOR binding is self-inverse for any seed/dimension.
    #[test]
    fn bind_self_inverse(seed in 0u64..500, dim in 1usize..300) {
        let mut rng = Rng::from_seed(seed);
        let a = BinaryHv::random(dim, &mut rng);
        let b = BinaryHv::random(dim, &mut rng);
        prop_assert_eq!(a.bind(&b).bind(&b), a);
    }

    /// Binding is commutative and associative.
    #[test]
    fn bind_commutative_associative(seed in 0u64..500, dim in 1usize..300) {
        let mut rng = Rng::from_seed(seed);
        let a = BinaryHv::random(dim, &mut rng);
        let b = BinaryHv::random(dim, &mut rng);
        let c = BinaryHv::random(dim, &mut rng);
        prop_assert_eq!(a.bind(&b), b.bind(&a));
        prop_assert_eq!(a.bind(&b).bind(&c), a.bind(&b.bind(&c)));
    }

    /// Similarity is symmetric, bounded, and 1 on identical vectors.
    #[test]
    fn similarity_axioms(seed in 0u64..500, dim in 1usize..300) {
        let mut rng = Rng::from_seed(seed);
        let a = BinaryHv::random(dim, &mut rng);
        let b = BinaryHv::random(dim, &mut rng);
        let s = a.similarity(&b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - b.similarity(&a)).abs() < 1e-15);
        prop_assert!((a.similarity(&a) - 1.0).abs() < 1e-15);
    }

    /// Permutation is a bijection: popcount preserved, full cycle restores.
    #[test]
    fn permute_bijection(seed in 0u64..500, dim in 2usize..200, k in 0usize..400) {
        let mut rng = Rng::from_seed(seed);
        let a = BinaryHv::random(dim, &mut rng);
        let p = a.permute(k);
        prop_assert_eq!(p.count_ones(), a.count_ones());
        let back = p.permute(dim - (k % dim));
        prop_assert_eq!(back, a);
    }

    /// Binding with a key preserves pairwise similarity exactly.
    #[test]
    fn bind_is_isometry(seed in 0u64..500, dim in 1usize..300) {
        let mut rng = Rng::from_seed(seed);
        let a = BinaryHv::random(dim, &mut rng);
        let b = BinaryHv::random(dim, &mut rng);
        let key = BinaryHv::random(dim, &mut rng);
        let before = a.similarity(&b);
        let after = a.bind(&key).similarity(&b.bind(&key));
        prop_assert!((before - after).abs() < 1e-15);
    }

    /// Flipping exactly k components moves similarity to exactly 1 - k/dim.
    #[test]
    fn flip_exact_similarity(seed in 0u64..500, dim in 8usize..300, frac in 0.0f64..1.0) {
        let mut rng = Rng::from_seed(seed);
        let a = BinaryHv::random(dim, &mut rng);
        let k = ((dim as f64) * frac) as usize;
        let flipped = flip_exact(&a, k, &mut rng);
        let expect = 1.0 - k as f64 / dim as f64;
        prop_assert!((a.similarity(&flipped) - expect).abs() < 1e-12);
    }

    /// Bundle add/subtract round-trips to the same majority readout.
    #[test]
    fn bundle_roundtrip(seed in 0u64..200, dim in 1usize..200, extra in 1usize..5) {
        let mut rng = Rng::from_seed(seed);
        let keep = BinaryHv::random(dim, &mut rng);
        let tie = BinaryHv::random(dim, &mut rng);
        let mut acc = BundleAccumulator::new(dim);
        acc.add(&keep);
        let before = acc.majority(&tie);
        let extras: Vec<BinaryHv> =
            (0..extra).map(|_| BinaryHv::random(dim, &mut rng)).collect();
        for e in &extras {
            acc.add(e);
        }
        for e in &extras {
            acc.subtract(e);
        }
        prop_assert_eq!(acc.majority(&tie), before);
        prop_assert_eq!(acc.len(), 1);
    }

    /// Bipolar bind/similarity mirror the binary laws.
    #[test]
    fn bipolar_axioms(seed in 0u64..500, dim in 1usize..300) {
        let mut rng = Rng::from_seed(seed);
        let a = BipolarHv::random(dim, &mut rng);
        let b = BipolarHv::random(dim, &mut rng);
        prop_assert_eq!(a.bind(&b).bind(&b), a.clone());
        let s = a.similarity(&b);
        prop_assert!((-1.0..=1.0).contains(&s));
        prop_assert!((a.similarity(&a) - 1.0).abs() < 1e-15);
    }
}
