//! Fault-injection tests for the HDC layer. Own process: fault plans are
//! process-global.

use lori_hdc::encoder::RecordEncoder;

const DIM: usize = 1024;

/// Holds the activation lock with a directive for a site this crate never
/// reaches, so clean encodes cannot race an armed plan from another test.
fn inert_guard() -> lori_fault::PlanGuard {
    lori_fault::activate(&lori_fault::FaultPlan::parse("panic@sweep.point:0").unwrap())
}

#[test]
fn injected_bitflip_flips_exactly_one_encoder_bit() {
    let enc = RecordEncoder::new(DIM, &[(0.0, 1.0), (0.0, 1.0)], 16, 4).unwrap();
    let x = [0.25, 0.75];
    let clean = {
        let _guard = inert_guard();
        enc.encode(&x)
    };
    let plan = lori_fault::FaultPlan::parse("bitflip@hdc.encoder:seed=9").unwrap();
    let _guard = lori_fault::activate(&plan);
    let flipped = enc.encode(&x);
    let differing = (0..DIM).filter(|&i| clean.bit(i) != flipped.bit(i)).count();
    assert_eq!(differing, 1, "exactly one upset bit");
    // The holographic representation absorbs the upset: similarity to the
    // clean encoding stays near 1, which is the HDC robustness story.
    assert!(clean.similarity(&flipped) > 0.99);
}

#[test]
fn flip_site_is_seed_deterministic() {
    let enc = RecordEncoder::new(DIM, &[(0.0, 1.0)], 8, 7).unwrap();
    let x = [0.5];
    let encode_once = || {
        let plan = lori_fault::FaultPlan::parse("bitflip@hdc.encoder:seed=11").unwrap();
        let _guard = lori_fault::activate(&plan);
        enc.encode(&x)
    };
    assert_eq!(encode_once(), encode_once(), "same seed, same flipped bit");
}
